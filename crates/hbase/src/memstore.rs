//! The MemStore: a region's in-memory write buffer.
//!
//! Sorted by the canonical cell order so a flush is a straight dump into
//! an HFile; size-accounted so the region knows when to flush.

use std::collections::BTreeMap;

use crate::cell::Cell;

type Key = (String, String, std::cmp::Reverse<u64>, bool);

/// The in-memory sorted buffer.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    cells: BTreeMap<Key, Option<Vec<u8>>>,
    bytes: usize,
}

fn key_of(c: &Cell) -> Key {
    (c.row.clone(), c.column.clone(), std::cmp::Reverse(c.ts), !c.is_tombstone())
}

impl MemStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a cell (put or tombstone).
    pub fn insert(&mut self, cell: Cell) {
        self.bytes +=
            cell.row.len() + cell.column.len() + 16 + cell.value.as_ref().map_or(0, Vec::len);
        self.cells.insert(key_of(&cell), cell.value);
    }

    /// The winning cell for `(row, column)` among buffered versions, if any.
    /// Returns `Some(None)` when the winner is a tombstone.
    pub fn get(&self, row: &str, column: &str) -> Option<Option<&[u8]>> {
        let lo = (row.to_string(), column.to_string(), std::cmp::Reverse(u64::MAX), false);
        let hi = (row.to_string(), column.to_string(), std::cmp::Reverse(0), true);
        self.cells.range(lo..=hi).next().map(|(_, v)| v.as_deref())
    }

    /// Approximate resident bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of buffered cell versions.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Drain everything in canonical order (for a flush).
    pub fn drain_sorted(&mut self) -> Vec<Cell> {
        let cells = std::mem::take(&mut self.cells);
        self.bytes = 0;
        cells
            .into_iter()
            .map(|((row, column, std::cmp::Reverse(ts), _), value)| Cell { row, column, ts, value })
            .collect()
    }

    /// Iterate buffered cells in canonical order without draining.
    pub fn iter_sorted(&self) -> impl Iterator<Item = Cell> + '_ {
        self.cells.iter().map(|((row, column, std::cmp::Reverse(ts), _), value)| Cell {
            row: row.clone(),
            column: column.clone(),
            ts: *ts,
            value: value.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newest_version_wins() {
        let mut m = MemStore::new();
        m.insert(Cell::put("r", "c", 1, b"v1".to_vec()));
        m.insert(Cell::put("r", "c", 3, b"v3".to_vec()));
        m.insert(Cell::put("r", "c", 2, b"v2".to_vec()));
        assert_eq!(m.get("r", "c"), Some(Some(b"v3".as_slice())));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn tombstone_masks_and_wins_ties() {
        let mut m = MemStore::new();
        m.insert(Cell::put("r", "c", 5, b"v".to_vec()));
        m.insert(Cell::tombstone("r", "c", 5));
        assert_eq!(m.get("r", "c"), Some(None), "tombstone wins the tie");
        m.insert(Cell::put("r", "c", 6, b"revived".to_vec()));
        assert_eq!(m.get("r", "c"), Some(Some(b"revived".as_slice())));
    }

    #[test]
    fn get_misses_are_none() {
        let m = MemStore::new();
        assert_eq!(m.get("nope", "c"), None);
    }

    #[test]
    fn drain_is_sorted_and_resets() {
        let mut m = MemStore::new();
        m.insert(Cell::put("b", "x", 1, b"1".to_vec()));
        m.insert(Cell::put("a", "y", 2, b"2".to_vec()));
        m.insert(Cell::put("a", "x", 3, b"3".to_vec()));
        assert!(m.bytes() > 0);
        let cells = m.drain_sorted();
        let keys: Vec<(String, String)> =
            cells.iter().map(|c| (c.row.clone(), c.column.clone())).collect();
        assert_eq!(
            keys,
            vec![("a".into(), "x".into()), ("a".into(), "y".into()), ("b".into(), "x".into())]
        );
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn bytes_accounting_grows_with_payload() {
        let mut m = MemStore::new();
        m.insert(Cell::put("r", "c", 1, vec![0u8; 100]));
        let one = m.bytes();
        m.insert(Cell::put("r", "c", 2, vec![0u8; 1000]));
        assert!(m.bytes() > one + 900);
    }
}
