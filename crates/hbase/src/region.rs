//! A region: the unit of serving and splitting.
//!
//! Owns one [`MemStore`] and a stack of [`HFile`]s in HDFS. Reads merge
//! memstore → newest HFile → older HFiles and stop at the first hit
//! (canonical order makes the first hit the winner); flushes and
//! compactions run through the charged DFS write path.

use hl_cluster::network::ClusterNet;
use hl_common::prelude::*;
use hl_dfs::client::Dfs;

use crate::cell::{sort_canonical, Cell};
use crate::hfile::HFile;
use crate::memstore::MemStore;

/// One region of a table.
#[derive(Debug, Clone)]
pub struct Region {
    /// First row served (inclusive). Empty = open start.
    pub start_row: String,
    /// DFS directory for this region's HFiles.
    pub dir: String,
    /// The write buffer.
    pub memstore: MemStore,
    /// HFiles, oldest first (reads scan newest first).
    pub hfiles: Vec<HFile>,
    /// Flush when the memstore exceeds this many bytes.
    pub flush_threshold: usize,
    next_hfile: u32,
}

impl Region {
    /// A fresh region starting at `start_row`, storing files under `dir`.
    pub fn new(start_row: &str, dir: &str, flush_threshold: usize) -> Self {
        Region {
            start_row: start_row.to_string(),
            dir: dir.to_string(),
            memstore: MemStore::new(),
            hfiles: Vec::new(),
            flush_threshold: flush_threshold.max(64),
            next_hfile: 0,
        }
    }

    /// Buffer a cell; flushes to HDFS when the memstore is full. Returns
    /// the time the operation (including any flush) completed.
    pub fn insert(
        &mut self,
        dfs: &mut Dfs,
        net: &mut ClusterNet,
        now: SimTime,
        cell: Cell,
    ) -> Result<SimTime> {
        self.memstore.insert(cell);
        if self.memstore.bytes() >= self.flush_threshold {
            return self.flush(dfs, net, now);
        }
        Ok(now)
    }

    /// Force-flush the memstore into a new HFile on HDFS.
    pub fn flush(&mut self, dfs: &mut Dfs, net: &mut ClusterNet, now: SimTime) -> Result<SimTime> {
        if self.memstore.is_empty() {
            return Ok(now);
        }
        let cells = self.memstore.drain_sorted();
        let path = format!("{}/hf{:05}", self.dir, self.next_hfile);
        self.next_hfile += 1;
        dfs.namenode.mkdirs(&self.dir)?;
        let (hfile, done) = HFile::create(dfs, net, now, &path, cells)?;
        self.hfiles.push(hfile);
        Ok(done)
    }

    /// Point lookup: newest version of `(row, column)`, tombstones masking.
    pub fn get(&self, row: &str, column: &str) -> Option<Vec<u8>> {
        // The memstore always holds the newest versions... except it
        // doesn't have to: timestamps are caller-supplied, so an old-ts put
        // can arrive after a flush. Correctness requires comparing winners
        // across all sources by (ts, tombstone-wins).
        let mut best: Option<Cell> = None;
        let mut consider = |c: Cell| {
            let better = match &best {
                None => true,
                Some(b) => (c.ts, c.is_tombstone()) > (b.ts, b.is_tombstone()),
            };
            if better {
                best = Some(c);
            }
        };
        for c in self.memstore.iter_sorted() {
            if c.row == row && c.column == column {
                consider(c);
            }
        }
        for hf in &self.hfiles {
            if let Some(c) = hf.get(row, column) {
                consider(c.clone());
            }
        }
        best.and_then(|c| c.value)
    }

    /// All live `(row, column, value)` triples in `[from, to)` row range,
    /// row-then-column order.
    pub fn scan(&self, from: &str, to: Option<&str>) -> Vec<(String, String, Vec<u8>)> {
        // Merge every source, canonical order; first version of each
        // (row, column) wins.
        let mut all: Vec<Cell> = self.memstore.iter_sorted().collect();
        for hf in &self.hfiles {
            all.extend(hf.cells.iter().cloned());
        }
        sort_canonical(&mut all);
        let mut out = Vec::new();
        let mut last: Option<(String, String)> = None;
        for c in all {
            if c.row.as_str() < from {
                continue;
            }
            if let Some(t) = to {
                if c.row.as_str() >= t {
                    continue;
                }
            }
            let key = (c.row.clone(), c.column.clone());
            if last.as_ref() == Some(&key) {
                continue; // shadowed older version
            }
            last = Some(key);
            if let Some(v) = c.value {
                out.push((c.row, c.column, v));
            }
        }
        out
    }

    /// Major compaction: merge all HFiles + memstore into one HFile,
    /// dropping shadowed versions and tombstones, and delete the old files
    /// from HDFS.
    pub fn compact(
        &mut self,
        dfs: &mut Dfs,
        net: &mut ClusterNet,
        now: SimTime,
    ) -> Result<SimTime> {
        let mut all: Vec<Cell> = self.memstore.drain_sorted();
        for hf in &self.hfiles {
            all.extend(hf.cells.iter().cloned());
        }
        sort_canonical(&mut all);
        // Keep only each (row, column)'s winner, and drop it too if it is
        // a tombstone (major compaction reclaims deletes).
        let mut kept: Vec<Cell> = Vec::new();
        let mut last: Option<(String, String)> = None;
        for c in all {
            let key = (c.row.clone(), c.column.clone());
            if last.as_ref() == Some(&key) {
                continue;
            }
            last = Some(key);
            if !c.is_tombstone() {
                kept.push(c);
            }
        }
        // Remove old files.
        let mut t = now;
        for hf in self.hfiles.drain(..) {
            let cmds = dfs.namenode.delete(&hf.path, false)?;
            dfs.apply_commands(net, t, &cmds);
        }
        if !kept.is_empty() {
            let path = format!("{}/hf{:05}", self.dir, self.next_hfile);
            self.next_hfile += 1;
            dfs.namenode.mkdirs(&self.dir)?;
            let (hfile, done) = HFile::create(dfs, net, t, &path, kept)?;
            self.hfiles.push(hfile);
            t = done;
        }
        Ok(t)
    }

    /// Total cell versions across memstore and HFiles (split heuristic).
    pub fn total_cells(&self) -> usize {
        self.memstore.len() + self.hfiles.iter().map(|h| h.cells.len()).sum::<usize>()
    }

    /// The median row key currently stored (the split point), if the
    /// region holds at least two distinct rows.
    pub fn split_point(&self) -> Option<String> {
        let mut rows: Vec<String> = self
            .memstore
            .iter_sorted()
            .map(|c| c.row)
            .chain(self.hfiles.iter().flat_map(|h| h.cells.iter().map(|c| c.row.clone())))
            .collect();
        rows.sort();
        rows.dedup();
        if rows.len() < 2 {
            return None;
        }
        Some(rows[rows.len() / 2].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_cluster::node::ClusterSpec;
    use hl_common::config::{keys, Configuration};

    fn setup() -> (Dfs, ClusterNet) {
        let spec = ClusterSpec::course_hadoop(4);
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_BLOCK_SIZE, 2048u64);
        (Dfs::format(&config, &spec).unwrap(), ClusterNet::new(&spec))
    }

    #[test]
    fn put_flush_get_across_sources() {
        let (mut dfs, mut net) = setup();
        let mut r = Region::new("", "/hbase/t/r0", 200);
        let mut t = SimTime::ZERO;
        for i in 0..20 {
            t = r
                .insert(
                    &mut dfs,
                    &mut net,
                    t,
                    Cell::put(&format!("row{i:02}"), "c", i, vec![i as u8]),
                )
                .unwrap();
        }
        assert!(!r.hfiles.is_empty(), "small threshold must have flushed");
        assert!(r.get("row00", "c").is_some(), "flushed data readable");
        assert!(r.get("row19", "c").is_some(), "memstore data readable");
        assert_eq!(r.get("row20", "c"), None);
    }

    #[test]
    fn old_timestamp_after_flush_does_not_shadow_newer() {
        let (mut dfs, mut net) = setup();
        let mut r = Region::new("", "/hbase/t/r0", 1 << 20);
        let mut t = SimTime::ZERO;
        t = r.insert(&mut dfs, &mut net, t, Cell::put("r", "c", 10, b"newer".to_vec())).unwrap();
        t = r.flush(&mut dfs, &mut net, t).unwrap();
        // A late write with an OLDER timestamp lands in the memstore...
        r.insert(&mut dfs, &mut net, t, Cell::put("r", "c", 5, b"older".to_vec())).unwrap();
        // ...but the HFile's newer version must still win.
        assert_eq!(r.get("r", "c").as_deref(), Some(b"newer".as_slice()));
    }

    #[test]
    fn tombstones_mask_until_compaction_reclaims() {
        let (mut dfs, mut net) = setup();
        let mut r = Region::new("", "/hbase/t/r0", 1 << 20);
        let mut t = SimTime::ZERO;
        t = r.insert(&mut dfs, &mut net, t, Cell::put("r", "c", 1, b"v".to_vec())).unwrap();
        t = r.flush(&mut dfs, &mut net, t).unwrap();
        t = r.insert(&mut dfs, &mut net, t, Cell::tombstone("r", "c", 2)).unwrap();
        assert_eq!(r.get("r", "c"), None, "tombstone masks the flushed put");
        assert!(r.scan("", None).is_empty());

        let before_files = r.hfiles.len();
        r.compact(&mut dfs, &mut net, t).unwrap();
        assert!(r.hfiles.len() <= 1);
        assert!(r.hfiles.len() < before_files + 1 || before_files == 0);
        assert_eq!(r.get("r", "c"), None, "still deleted after compaction");
        assert_eq!(r.total_cells(), 0, "major compaction reclaimed everything");
    }

    #[test]
    fn compaction_preserves_live_data_and_removes_old_files() {
        let (mut dfs, mut net) = setup();
        let mut r = Region::new("", "/hbase/t/r0", 300);
        let mut t = SimTime::ZERO;
        for i in 0..30u8 {
            t = r
                .insert(&mut dfs, &mut net, t, Cell::put(&format!("row{i:02}"), "c", 1, vec![i]))
                .unwrap();
        }
        t = r.flush(&mut dfs, &mut net, t).unwrap();
        let files_before = r.hfiles.len();
        assert!(files_before >= 2);
        let old_paths: Vec<String> = r.hfiles.iter().map(|h| h.path.clone()).collect();
        r.compact(&mut dfs, &mut net, t).unwrap();
        assert_eq!(r.hfiles.len(), 1);
        for p in &old_paths {
            assert!(!dfs.namenode.namespace().exists(p), "{p} deleted from HDFS");
        }
        for i in 0..30u8 {
            assert_eq!(r.get(&format!("row{i:02}"), "c"), Some(vec![i]));
        }
        assert_eq!(r.scan("", None).len(), 30);
    }

    #[test]
    fn scan_respects_row_ranges() {
        let (mut dfs, mut net) = setup();
        let mut r = Region::new("", "/hbase/t/r0", 1 << 20);
        let mut t = SimTime::ZERO;
        for row in ["a", "b", "c", "d"] {
            t = r
                .insert(&mut dfs, &mut net, t, Cell::put(row, "x", 1, row.as_bytes().to_vec()))
                .unwrap();
        }
        let mid = r.scan("b", Some("d"));
        assert_eq!(mid.iter().map(|(r, _, _)| r.as_str()).collect::<Vec<_>>(), vec!["b", "c"]);
        assert_eq!(r.scan("", None).len(), 4);
        assert!(r.scan("x", None).is_empty());
    }

    #[test]
    fn split_point_is_a_median_row() {
        let (mut dfs, mut net) = setup();
        let mut r = Region::new("", "/hbase/t/r0", 1 << 20);
        assert_eq!(r.split_point(), None);
        let mut t = SimTime::ZERO;
        for i in 0..10 {
            t = r
                .insert(&mut dfs, &mut net, t, Cell::put(&format!("row{i}"), "c", 1, vec![1]))
                .unwrap();
        }
        let sp = r.split_point().unwrap();
        assert!(sp.as_str() > "row0" && sp.as_str() <= "row9");
    }
}
