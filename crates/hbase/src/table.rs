//! `HTable`: range-partitioned regions with automatic splits.
//!
//! Rows route to the region whose start key is the greatest one ≤ the row;
//! a region that grows past `split_threshold` cell versions splits at its
//! median row — the mechanism that lets HBase tables grow without a
//! central bottleneck, and the reason its design pairs so naturally with
//! HDFS underneath.

use hl_cluster::network::ClusterNet;
use hl_common::prelude::*;
use hl_dfs::client::Dfs;

use crate::cell::Cell;
use crate::region::Region;

/// A table: ordered regions plus split policy.
#[derive(Debug, Clone)]
pub struct HTable {
    /// Table name (DFS directory: `/hbase/<name>`).
    pub name: String,
    /// Regions ordered by `start_row`; `regions[0].start_row` is `""`.
    pub regions: Vec<Region>,
    /// Split a region past this many cell versions.
    pub split_threshold: usize,
    /// Memstore flush threshold handed to new regions.
    pub flush_threshold: usize,
    /// Monotonic timestamp source for callers that don't supply one.
    next_ts: u64,
    next_region: u32,
}

impl HTable {
    /// Create a table with one open-ended region.
    pub fn create(dfs: &mut Dfs, name: &str) -> Result<Self> {
        let dir = format!("/hbase/{name}");
        dfs.namenode.mkdirs(&dir)?;
        Ok(HTable {
            name: name.to_string(),
            regions: vec![Region::new("", &format!("{dir}/region00000"), 64 * 1024)],
            split_threshold: 4096,
            flush_threshold: 64 * 1024,
            next_ts: 1,
            next_region: 1,
        })
    }

    /// Next auto-assigned timestamp.
    pub fn next_timestamp(&mut self) -> u64 {
        let ts = self.next_ts;
        self.next_ts += 1;
        ts
    }

    fn region_index(&self, row: &str) -> usize {
        // Last region whose start_row <= row.
        match self.regions.binary_search_by(|r| r.start_row.as_str().cmp(row)) {
            Ok(i) => i,
            Err(0) => 0, // defensive: regions[0].start_row == ""
            Err(i) => i - 1,
        }
    }

    /// Put a value (auto-timestamped).
    pub fn put(
        &mut self,
        dfs: &mut Dfs,
        net: &mut ClusterNet,
        now: SimTime,
        row: &str,
        column: &str,
        value: impl Into<Vec<u8>>,
    ) -> Result<SimTime> {
        let ts = self.next_timestamp();
        self.apply(dfs, net, now, Cell::put(row, column, ts, value))
    }

    /// Delete a cell (auto-timestamped tombstone).
    pub fn delete(
        &mut self,
        dfs: &mut Dfs,
        net: &mut ClusterNet,
        now: SimTime,
        row: &str,
        column: &str,
    ) -> Result<SimTime> {
        let ts = self.next_timestamp();
        self.apply(dfs, net, now, Cell::tombstone(row, column, ts))
    }

    /// Apply an explicit cell (caller-controlled timestamp).
    pub fn apply(
        &mut self,
        dfs: &mut Dfs,
        net: &mut ClusterNet,
        now: SimTime,
        cell: Cell,
    ) -> Result<SimTime> {
        self.next_ts = self.next_ts.max(cell.ts + 1);
        let idx = self.region_index(&cell.row);
        let done = self.regions[idx].insert(dfs, net, now, cell)?;
        let done = self.maybe_split(dfs, net, done, idx)?;
        Ok(done)
    }

    /// Point lookup.
    pub fn get(&self, row: &str, column: &str) -> Option<Vec<u8>> {
        self.regions[self.region_index(row)].get(row, column)
    }

    /// Scan `[from, to)` across regions, row order.
    pub fn scan(&self, from: &str, to: Option<&str>) -> Vec<(String, String, Vec<u8>)> {
        let mut out = Vec::new();
        for r in &self.regions {
            // Skip regions entirely outside the range.
            if let Some(t) = to {
                if r.start_row.as_str() >= t && !r.start_row.is_empty() {
                    continue;
                }
            }
            out.extend(r.scan(from, to));
        }
        out
    }

    /// Flush every region.
    pub fn flush_all(
        &mut self,
        dfs: &mut Dfs,
        net: &mut ClusterNet,
        now: SimTime,
    ) -> Result<SimTime> {
        let mut t = now;
        for r in &mut self.regions {
            t = r.flush(dfs, net, t)?;
        }
        Ok(t)
    }

    /// Major-compact every region.
    pub fn compact_all(
        &mut self,
        dfs: &mut Dfs,
        net: &mut ClusterNet,
        now: SimTime,
    ) -> Result<SimTime> {
        let mut t = now;
        for r in &mut self.regions {
            t = r.compact(dfs, net, t)?;
        }
        Ok(t)
    }

    fn maybe_split(
        &mut self,
        dfs: &mut Dfs,
        net: &mut ClusterNet,
        now: SimTime,
        idx: usize,
    ) -> Result<SimTime> {
        if self.regions[idx].total_cells() <= self.split_threshold {
            return Ok(now);
        }
        let Some(split_row) = self.regions[idx].split_point() else {
            return Ok(now);
        };
        // Compact first so all cells are in one place, then repartition by
        // the split row into two fresh regions.
        let mut t = self.regions[idx].compact(dfs, net, now)?;
        let old = self.regions.remove(idx);
        let dir_base = format!("/hbase/{}", self.name);
        let mut left = Region::new(
            &old.start_row,
            &format!("{dir_base}/region{:05}", self.next_region),
            self.flush_threshold,
        );
        let mut right = Region::new(
            &split_row,
            &format!("{dir_base}/region{:05}", self.next_region + 1),
            self.flush_threshold,
        );
        self.next_region += 2;
        for hf in &old.hfiles {
            for c in &hf.cells {
                let target =
                    if c.row.as_str() < split_row.as_str() { &mut left } else { &mut right };
                t = target.insert(dfs, net, t, c.clone())?;
            }
        }
        // Old region's files are garbage now.
        for hf in old.hfiles {
            let cmds = dfs.namenode.delete(&hf.path, false)?;
            dfs.apply_commands(net, t, &cmds);
        }
        left.flush_threshold = self.flush_threshold;
        self.regions.insert(idx, right);
        self.regions.insert(idx, left);
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_cluster::node::ClusterSpec;
    use hl_common::config::{keys, Configuration};

    fn setup() -> (Dfs, ClusterNet) {
        let spec = ClusterSpec::course_hadoop(4);
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_BLOCK_SIZE, 4096u64);
        (Dfs::format(&config, &spec).unwrap(), ClusterNet::new(&spec))
    }

    #[test]
    fn put_get_delete_lifecycle() {
        let (mut dfs, mut net) = setup();
        let mut t = HTable::create(&mut dfs, "movies").unwrap();
        let mut now = SimTime::ZERO;
        now = t.put(&mut dfs, &mut net, now, "m001", "title", b"Alien".to_vec()).unwrap();
        now = t.put(&mut dfs, &mut net, now, "m001", "year", b"1979".to_vec()).unwrap();
        now = t.put(&mut dfs, &mut net, now, "m002", "title", b"Brazil".to_vec()).unwrap();
        assert_eq!(t.get("m001", "title").as_deref(), Some(b"Alien".as_slice()));
        assert_eq!(t.get("m002", "title").as_deref(), Some(b"Brazil".as_slice()));
        // Overwrite and delete.
        now = t.put(&mut dfs, &mut net, now, "m001", "title", b"Alien (1979)".to_vec()).unwrap();
        assert_eq!(t.get("m001", "title").as_deref(), Some(b"Alien (1979)".as_slice()));
        t.delete(&mut dfs, &mut net, now, "m002", "title").unwrap();
        assert_eq!(t.get("m002", "title"), None);
        assert_eq!(t.get("m003", "title"), None);
    }

    #[test]
    fn splits_keep_every_row_reachable() {
        let (mut dfs, mut net) = setup();
        let mut table = HTable::create(&mut dfs, "t").unwrap();
        table.split_threshold = 50;
        table.flush_threshold = 512;
        for r in &mut table.regions {
            r.flush_threshold = 512;
        }
        let mut now = SimTime::ZERO;
        for i in 0..200u32 {
            now = table
                .put(&mut dfs, &mut net, now, &format!("row{i:04}"), "c", vec![(i % 251) as u8])
                .unwrap();
        }
        assert!(table.regions.len() > 1, "growth must split: {}", table.regions.len());
        // Region boundaries are ordered and start with "".
        assert_eq!(table.regions[0].start_row, "");
        for w in table.regions.windows(2) {
            assert!(w[0].start_row < w[1].start_row);
        }
        for i in 0..200u32 {
            assert_eq!(
                table.get(&format!("row{i:04}"), "c"),
                Some(vec![(i % 251) as u8]),
                "row{i:04}"
            );
        }
        // Scan sees everything exactly once, in row order.
        let all = table.scan("", None);
        assert_eq!(all.len(), 200);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn scan_ranges_cross_region_boundaries() {
        let (mut dfs, mut net) = setup();
        let mut table = HTable::create(&mut dfs, "t").unwrap();
        table.split_threshold = 20;
        let mut now = SimTime::ZERO;
        for i in 0..60u32 {
            now = table.put(&mut dfs, &mut net, now, &format!("k{i:03}"), "c", vec![1]).unwrap();
        }
        assert!(table.regions.len() > 1);
        let mid = table.scan("k010", Some("k030"));
        assert_eq!(mid.len(), 20);
        assert_eq!(mid.first().unwrap().0, "k010");
        assert_eq!(mid.last().unwrap().0, "k029");
    }

    #[test]
    fn flush_and_compact_survive_a_dfs_restart() {
        let (mut dfs, mut net) = setup();
        let mut table = HTable::create(&mut dfs, "t").unwrap();
        let mut now = SimTime::ZERO;
        for i in 0..30u32 {
            now = table
                .put(&mut dfs, &mut net, now, &format!("r{i:02}"), "c", vec![i as u8])
                .unwrap();
        }
        now = table.flush_all(&mut dfs, &mut net, now).unwrap();
        now = table.compact_all(&mut dfs, &mut net, now).unwrap();

        // Restart the DFS underneath; HFiles must still be readable (their
        // blocks are replicated HDFS blocks).
        let r = dfs.restart_all(&mut net, now).unwrap();
        let path = table.regions[0].hfiles[0].path.clone();
        let (reopened, _) =
            crate::hfile::HFile::open(&mut dfs, &mut net, r.completed_at, &path).unwrap();
        assert_eq!(reopened.cells.len(), 30);
    }

    #[test]
    fn auto_timestamps_stay_monotonic_past_explicit_ones() {
        let (mut dfs, mut net) = setup();
        let mut table = HTable::create(&mut dfs, "t").unwrap();
        let now = SimTime::ZERO;
        table
            .apply(&mut dfs, &mut net, now, Cell::put("r", "c", 1000, b"explicit".to_vec()))
            .unwrap();
        // The next auto put must land above ts 1000, not shadow-under it.
        table.put(&mut dfs, &mut net, now, "r", "c", b"auto".to_vec()).unwrap();
        assert_eq!(table.get("r", "c").as_deref(), Some(b"auto".as_slice()));
    }
}
