//! Cells: the atomic unit of an HBase table.
//!
//! A cell is `(row, column, timestamp) → value-or-tombstone`. Newest
//! timestamp wins; at equal timestamps a tombstone wins (a deterministic
//! tiebreak the property tests rely on).

use hl_common::error::Result;
use hl_common::writable::{read_vu64, write_vu64, Writable};

/// One versioned cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Row key.
    pub row: String,
    /// Column name (we collapse HBase's family:qualifier to one string).
    pub column: String,
    /// Version timestamp (larger = newer).
    pub ts: u64,
    /// `None` is a delete tombstone.
    pub value: Option<Vec<u8>>,
}

impl Cell {
    /// A put cell.
    pub fn put(row: &str, column: &str, ts: u64, value: impl Into<Vec<u8>>) -> Self {
        Cell { row: row.into(), column: column.into(), ts, value: Some(value.into()) }
    }

    /// A delete tombstone.
    pub fn tombstone(row: &str, column: &str, ts: u64) -> Self {
        Cell { row: row.into(), column: column.into(), ts, value: None }
    }

    /// True for tombstones.
    pub fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }

    /// The storage sort key: `(row, column, ts desc, tombstone-first)`.
    /// Scanning in this order visits the winning version of each
    /// `(row, column)` first.
    pub fn sort_key(&self) -> (&str, &str, std::cmp::Reverse<u64>, bool) {
        // `false < true`, so tombstone (value=None → !is_tombstone = false)
        // sorts before a put at the same timestamp — the delete wins ties.
        (&self.row, &self.column, std::cmp::Reverse(self.ts), !self.is_tombstone())
    }
}

impl Writable for Cell {
    fn write(&self, buf: &mut Vec<u8>) {
        self.row.write(buf);
        self.column.write(buf);
        write_vu64(self.ts, buf);
        match &self.value {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                write_vu64(v.len() as u64, buf);
                buf.extend_from_slice(v);
            }
        }
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        let row = String::read(buf)?;
        let column = String::read(buf)?;
        let ts = read_vu64(buf)?;
        let tag = u8::read(buf)?;
        let value = match tag {
            0 => None,
            _ => {
                let len = read_vu64(buf)? as usize;
                let mut v = vec![0u8; len.min(buf.len())];
                let take = v.len();
                v.copy_from_slice(&buf[..take]);
                *buf = &buf[take..];
                if take != len {
                    return Err(hl_common::error::HlError::Codec("truncated cell value".into()));
                }
                Some(v)
            }
        };
        Ok(Cell { row, column, ts, value })
    }
}

/// Sort cells into canonical storage order and resolve the winner per
/// `(row, column)`: the first cell of each group under [`Cell::sort_key`].
pub fn sort_canonical(cells: &mut [Cell]) {
    cells.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writable_round_trip() {
        for cell in [
            Cell::put("row1", "colA", 42, b"hello".to_vec()),
            Cell::tombstone("row1", "colA", 43),
            Cell::put("", "", 0, Vec::new()),
        ] {
            assert_eq!(Cell::from_bytes(&cell.to_bytes()).unwrap(), cell);
        }
    }

    #[test]
    fn truncated_cell_is_codec_error() {
        let bytes = Cell::put("r", "c", 1, vec![1, 2, 3]).to_bytes();
        assert!(Cell::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn canonical_order_puts_winner_first() {
        let mut cells = vec![
            Cell::put("r", "c", 1, b"old".to_vec()),
            Cell::put("r", "c", 3, b"new".to_vec()),
            Cell::tombstone("r", "c", 2),
            Cell::put("r", "b", 9, b"other-col".to_vec()),
        ];
        sort_canonical(&mut cells);
        assert_eq!(cells[0].column, "b");
        assert_eq!(cells[1].ts, 3, "newest version of (r,c) first");
        assert!(cells[2].is_tombstone());
        assert_eq!(cells[3].ts, 1);
    }

    #[test]
    fn tombstone_wins_timestamp_ties() {
        let mut cells = vec![Cell::put("r", "c", 5, b"v".to_vec()), Cell::tombstone("r", "c", 5)];
        sort_canonical(&mut cells);
        assert!(cells[0].is_tombstone());
    }
}
