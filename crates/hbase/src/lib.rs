//! # hl-hbase
//!
//! A minimal HBase-flavored distributed table store built **on top of
//! [`hl_dfs`]** — the runnable version of the course's ecosystem lecture
//! ("we also spent one lecture introducing HBase/Hive to the students to
//! provide a more comprehensive view of the Hadoop ecosystem") and of the
//! paper's stated future work ("developing the myHadoop scripts to
//! continue to support these new components of the Hadoop ecosystem …
//! distributed data store [27: Apache HBase]").
//!
//! The architecture is the real one, scaled down:
//!
//! * writes land in a per-region, in-memory, sorted [`memstore`];
//! * when the memstore exceeds its threshold it **flushes** to an
//!   immutable, sorted [`hfile`] persisted as a replicated file *in HDFS*
//!   (so HBase durability inherits HDFS's replication story — Figure 2's
//!   stack, one level up);
//! * reads merge the memstore with the region's HFiles, newest timestamp
//!   first, with delete tombstones masking older cells;
//! * **compaction** merges a region's HFiles into one, dropping shadowed
//!   cells and expired tombstones;
//! * a [`table::HTable`] routes rows to [`region`]s by start-key ranges
//!   and **splits** regions that grow past a threshold — the same
//!   range-partitioned design the MapReduce lectures' range partitioner
//!   foreshadows.
//!
//! Semantics are model-checked: property tests drive random
//! put/delete/flush/compact/split sequences against a flat reference map.

#![warn(missing_docs)]

pub mod cell;
pub mod hfile;
pub mod memstore;
pub mod region;
pub mod table;

pub use cell::Cell;
pub use table::HTable;
