//! HFiles: immutable sorted cell files persisted in HDFS.
//!
//! Layout: magic + cell count + cells in canonical order. The file is
//! written through the normal DFS pipeline (replicated, checksummed,
//! charged), which is the lecture's point: HBase's durability *is* HDFS.

use hl_cluster::network::ClusterNet;
use hl_common::error::{HlError, Result};
use hl_common::prelude::*;
use hl_common::writable::{read_vu64, write_vu64, Writable};
use hl_dfs::client::Dfs;

use crate::cell::Cell;

const MAGIC: &[u8; 6] = b"HFILE1";

/// An HFile's in-memory handle: its DFS path and (cached) sorted cells.
#[derive(Debug, Clone)]
pub struct HFile {
    /// Where the file lives in HDFS.
    pub path: String,
    /// Cached cells, canonical order (the region keeps them warm; a cold
    /// open re-reads from DFS).
    pub cells: Vec<Cell>,
}

/// Serialize cells (must already be in canonical order).
pub fn encode(cells: &[Cell]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    write_vu64(cells.len() as u64, &mut buf);
    for c in cells {
        c.write(&mut buf);
    }
    buf
}

/// Parse an HFile image.
pub fn decode(mut bytes: &[u8]) -> Result<Vec<Cell>> {
    let buf = &mut bytes;
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(HlError::Codec("not an HFile (bad magic)".into()));
    }
    *buf = &buf[MAGIC.len()..];
    let n = read_vu64(buf)? as usize;
    let mut cells = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        cells.push(Cell::read(buf)?);
    }
    if !buf.is_empty() {
        return Err(HlError::Codec("trailing bytes after HFile".into()));
    }
    Ok(cells)
}

impl HFile {
    /// Write `cells` to `path` in HDFS (replicated, charged) and return the
    /// warm handle plus the completion time.
    pub fn create(
        dfs: &mut Dfs,
        net: &mut ClusterNet,
        now: SimTime,
        path: &str,
        cells: Vec<Cell>,
    ) -> Result<(HFile, SimTime)> {
        let bytes = encode(&cells);
        let put = dfs.put(net, now, path, &bytes, None)?;
        Ok((HFile { path: path.to_string(), cells }, put.completed_at))
    }

    /// Cold-open an HFile from HDFS (charged read + parse).
    pub fn open(
        dfs: &mut Dfs,
        net: &mut ClusterNet,
        now: SimTime,
        path: &str,
    ) -> Result<(HFile, SimTime)> {
        let got = dfs.read(net, now, path, None)?;
        let cells = decode(&got.value)?;
        Ok((HFile { path: path.to_string(), cells }, got.completed_at))
    }

    /// The winning cell for `(row, column)` in this file, if present.
    /// Cells are canonical-sorted, so the first hit is the winner.
    pub fn get(&self, row: &str, column: &str) -> Option<&Cell> {
        // Binary search for the group start, then check the first entry.
        let idx =
            self.cells.partition_point(|c| (c.row.as_str(), c.column.as_str()) < (row, column));
        let c = self.cells.get(idx)?;
        (c.row == row && c.column == column).then_some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::sort_canonical;
    use hl_cluster::node::ClusterSpec;
    use hl_common::config::{keys, Configuration};

    fn sample_cells() -> Vec<Cell> {
        let mut cells = vec![
            Cell::put("r1", "a", 2, b"v2".to_vec()),
            Cell::put("r1", "a", 1, b"v1".to_vec()),
            Cell::tombstone("r1", "b", 9),
            Cell::put("r2", "a", 5, b"x".to_vec()),
        ];
        sort_canonical(&mut cells);
        cells
    }

    #[test]
    fn encode_decode_round_trip() {
        let cells = sample_cells();
        assert_eq!(decode(&encode(&cells)).unwrap(), cells);
        assert!(decode(b"not an hfile").is_err());
        let mut bad = encode(&cells);
        bad.push(0);
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn get_finds_winners_via_binary_search() {
        let hfile = HFile { path: "/t/hf0".into(), cells: sample_cells() };
        assert_eq!(hfile.get("r1", "a").unwrap().value.as_deref(), Some(b"v2".as_slice()));
        assert!(hfile.get("r1", "b").unwrap().is_tombstone());
        assert_eq!(hfile.get("r1", "zz"), None);
        assert_eq!(hfile.get("r0", "a"), None);
    }

    #[test]
    fn create_and_cold_open_through_hdfs() {
        let spec = ClusterSpec::course_hadoop(4);
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_BLOCK_SIZE, 1024u64);
        let mut dfs = Dfs::format(&config, &spec).unwrap();
        let mut net = ClusterNet::new(&spec);
        dfs.namenode.mkdirs("/hbase/t/r0").unwrap();

        let (warm, t1) =
            HFile::create(&mut dfs, &mut net, SimTime::ZERO, "/hbase/t/r0/hf0", sample_cells())
                .unwrap();
        assert!(t1 >= SimTime::ZERO);
        // The file is a real replicated HDFS file.
        let located = dfs.file_blocks("/hbase/t/r0/hf0").unwrap();
        assert!(!located.is_empty());
        assert!(located.iter().all(|(_, _, h)| h.len() == 3));

        let (cold, _) = HFile::open(&mut dfs, &mut net, t1, "/hbase/t/r0/hf0").unwrap();
        assert_eq!(cold.cells, warm.cells);
    }
}
