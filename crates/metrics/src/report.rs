//! Text rendering of a metrics snapshot, styled after `dfsadmin -report`
//! and the Hadoop 1.x NameNode/JobTracker metrics pages: one section per
//! daemon, one aligned line per instrument, histograms summarized with
//! count/mean/quantile bounds.

use std::fmt;

use crate::histogram::Histogram;
use crate::registry::{MetricValue, MetricsSnapshot};

/// Renders a [`MetricsSnapshot`] as the operator-facing report.
pub struct MetricsReport<'a>(pub &'a MetricsSnapshot);

fn fmt_histogram(f: &mut fmt::Formatter<'_>, h: &Histogram) -> fmt::Result {
    match (h.mean(), h.quantile_bound(500), h.quantile_bound(950), h.max()) {
        (Some(mean), Some(p50), Some(p95), Some(max)) => {
            write!(f, "count={} mean={mean} p50<={p50} p95<={p95} max={max}", h.count())
        }
        _ => write!(f, "count=0"),
    }
}

impl fmt::Display for MetricsReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.0;
        writeln!(
            f,
            "Metrics report at {}.{:06}s (virtual)",
            snap.at_micros / 1_000_000,
            snap.at_micros % 1_000_000
        )?;
        writeln!(f, "Instruments: {}", snap.samples.len())?;
        let mut current_daemon: Option<&str> = None;
        for s in &snap.samples {
            if current_daemon != Some(s.daemon.as_str()) {
                writeln!(f, "\nName: {}", s.daemon)?;
                writeln!(f, "{}", "-".repeat(6 + s.daemon.len()))?;
                current_daemon = Some(s.daemon.as_str());
            }
            write!(f, "  {:<42} ", s.name)?;
            match &s.value {
                MetricValue::Counter(v) => writeln!(f, "= {v}")?,
                MetricValue::Gauge(v) => writeln!(f, "~ {v}")?,
                MetricValue::Histogram(h) => {
                    fmt_histogram(f, h)?;
                    writeln!(f)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use hl_common::SimTime;

    #[test]
    fn report_groups_by_daemon_and_marks_kinds() {
        let mut r = MetricsRegistry::new();
        r.incr("namenode", "rpc.mkdirs", 3);
        r.set_gauge("namenode", "safemode.on", 1);
        r.observe("jobtracker", "map.duration_ms", 100);
        r.observe("jobtracker", "map.duration_ms", 5000);
        let snap = r.snapshot(SimTime(2_500_000));
        let text = MetricsReport(&snap).to_string();
        assert!(text.starts_with("Metrics report at 2.500000s (virtual)\n"));
        assert!(text.contains("Instruments: 3\n"));
        assert!(text.contains("\nName: namenode\n"));
        assert!(text.contains("\nName: jobtracker\n"));
        assert!(text.contains("rpc.mkdirs"));
        assert!(text.contains("= 3"));
        assert!(text.contains("~ 1"));
        assert!(text.contains("count=2"));
        assert!(text.contains("p95<=8191"));
    }

    #[test]
    fn empty_snapshot_renders_header_only() {
        let snap = MetricsSnapshot::default();
        let text = MetricsReport(&snap).to_string();
        assert!(text.contains("Instruments: 0"));
        assert!(!text.contains("Name:"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let mut r = MetricsRegistry::new();
        r.incr("b", "x", 1);
        r.incr("a", "y", 2);
        let s1 = MetricsReport(&r.snapshot(SimTime(7))).to_string();
        let s2 = MetricsReport(&r.snapshot(SimTime(7))).to_string();
        assert_eq!(s1, s2);
        // Daemons appear in sorted order.
        assert!(s1.find("Name: a").unwrap() < s1.find("Name: b").unwrap());
    }
}
