//! The metrics registry and its deterministic snapshots.
//!
//! Instruments are keyed `(daemon, name)` — `("namenode",
//! "rpc.add_block")`, `("datanode.node003", "bytes.read")` — and come in
//! the three classic kinds: monotonic [`MetricValue::Counter`]s,
//! point-in-time [`MetricValue::Gauge`]s, and log2
//! [`MetricValue::Histogram`]s. Storage is a `BTreeMap`, so iteration,
//! snapshots, and serialization are deterministic by construction.

use std::collections::BTreeMap;

use hl_common::writable::{read_vu64, write_vu64, Writable};
use hl_common::{HlError, Result, SimTime};

use crate::histogram::Histogram;

/// One instrument's current value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic count — survives a daemon restart.
    Counter(u64),
    /// Point-in-time level — reset to 0 by a daemon restart.
    Gauge(i64),
    /// Log2-bucketed sample distribution — survives a daemon restart.
    Histogram(Box<Histogram>),
}

impl MetricValue {
    /// Kind name for reports ("counter", "gauge", "histogram").
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

const TAG_COUNTER: u8 = 0;
const TAG_GAUGE: u8 = 1;
const TAG_HISTOGRAM: u8 = 2;

impl Writable for MetricValue {
    fn write(&self, buf: &mut Vec<u8>) {
        match self {
            MetricValue::Counter(v) => {
                buf.push(TAG_COUNTER);
                write_vu64(*v, buf);
            }
            MetricValue::Gauge(v) => {
                buf.push(TAG_GAUGE);
                // ZigZag so small negatives stay small.
                write_vu64(((*v << 1) ^ (*v >> 63)) as u64, buf);
            }
            MetricValue::Histogram(h) => {
                buf.push(TAG_HISTOGRAM);
                h.write(buf);
            }
        }
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        let tag = u8::read(buf)?;
        match tag {
            TAG_COUNTER => Ok(MetricValue::Counter(read_vu64(buf)?)),
            TAG_GAUGE => {
                let z = read_vu64(buf)?;
                Ok(MetricValue::Gauge(((z >> 1) as i64) ^ -((z & 1) as i64)))
            }
            TAG_HISTOGRAM => Ok(MetricValue::Histogram(Box::new(Histogram::read(buf)?))),
            other => Err(HlError::Codec(format!("bad MetricValue tag {other}"))),
        }
    }
}

/// One `(daemon, name, value)` row of a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// Owning daemon ("namenode", "datanode.node003", "jobtracker", ...).
    pub daemon: String,
    /// Instrument name within the daemon ("rpc.add_block", ...).
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

impl Writable for MetricSample {
    fn write(&self, buf: &mut Vec<u8>) {
        self.daemon.write(buf);
        self.name.write(buf);
        self.value.write(buf);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(MetricSample {
            daemon: String::read(buf)?,
            name: String::read(buf)?,
            value: MetricValue::read(buf)?,
        })
    }
}

/// A point-in-time, virtual-time-stamped copy of every instrument,
/// sorted by `(daemon, name)`. Serialization via [`Writable`] is
/// canonical: equal snapshots encode to equal bytes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Virtual timestamp of the snapshot, in micros since sim start.
    pub at_micros: u64,
    /// Every instrument, in `(daemon, name)` order.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Look up one sample.
    pub fn get(&self, daemon: &str, name: &str) -> Option<&MetricValue> {
        self.samples
            .binary_search_by(|s| (s.daemon.as_str(), s.name.as_str()).cmp(&(daemon, name)))
            .ok()
            .map(|i| &self.samples[i].value)
    }

    /// Counter value (0 when absent or not a counter).
    pub fn counter(&self, daemon: &str, name: &str) -> u64 {
        match self.get(daemon, name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value (0 when absent or not a gauge).
    pub fn gauge(&self, daemon: &str, name: &str) -> i64 {
        match self.get(daemon, name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Sum of every counter named `name` across all daemons (fleet-wide
    /// roll-up, e.g. total `bytes.read` over every DataNode).
    pub fn counter_across_daemons(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match &s.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    /// Merge another snapshot into this one: counters add, gauges add,
    /// histograms merge, disjoint keys union. The timestamp takes the
    /// later of the two. Used to aggregate per-subsystem registries
    /// (DFS + engine + network) into one cluster-wide snapshot.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.at_micros = self.at_micros.max(other.at_micros);
        let mut map: BTreeMap<(String, String), MetricValue> =
            self.samples.drain(..).map(|s| ((s.daemon, s.name), s.value)).collect();
        for s in &other.samples {
            let key = (s.daemon.clone(), s.name.clone());
            match map.get_mut(&key) {
                None => {
                    map.insert(key, s.value.clone());
                }
                Some(MetricValue::Counter(a)) => {
                    if let MetricValue::Counter(b) = &s.value {
                        *a = a.saturating_add(*b);
                    }
                }
                Some(MetricValue::Gauge(a)) => {
                    if let MetricValue::Gauge(b) = &s.value {
                        *a = a.saturating_add(*b);
                    }
                }
                Some(MetricValue::Histogram(a)) => {
                    if let MetricValue::Histogram(b) = &s.value {
                        a.merge(b);
                    }
                }
            }
        }
        self.samples = map
            .into_iter()
            .map(|((daemon, name), value)| MetricSample { daemon, name, value })
            .collect();
    }
}

impl Writable for MetricsSnapshot {
    fn write(&self, buf: &mut Vec<u8>) {
        write_vu64(self.at_micros, buf);
        self.samples.write(buf);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(MetricsSnapshot { at_micros: read_vu64(buf)?, samples: Vec::read(buf)? })
    }
}

/// The live instrument store one subsystem owns.
///
/// Zero-dependency and wall-clock-free: `SimTime` enters only at
/// [`MetricsRegistry::snapshot`] time, stamped by the caller's virtual
/// clock. Kind mismatches (a counter name later used as a gauge) never
/// panic — the instrument is deterministically re-created at the new
/// kind, which keeps daemon code panic-free (lint rule R1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsRegistry {
    entries: BTreeMap<(String, String), MetricValue>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a monotonic counter, creating it at 0 first.
    pub fn incr(&mut self, daemon: &str, name: &str, delta: u64) {
        let e = self
            .entries
            .entry((daemon.to_string(), name.to_string()))
            .or_insert(MetricValue::Counter(0));
        match e {
            MetricValue::Counter(v) => *v = v.saturating_add(delta),
            _ => *e = MetricValue::Counter(delta),
        }
    }

    /// Set a gauge to an absolute level.
    pub fn set_gauge(&mut self, daemon: &str, name: &str, level: i64) {
        self.entries.insert((daemon.to_string(), name.to_string()), MetricValue::Gauge(level));
    }

    /// Add (possibly negative) `delta` to a gauge, creating it at 0 first.
    pub fn add_gauge(&mut self, daemon: &str, name: &str, delta: i64) {
        let e = self
            .entries
            .entry((daemon.to_string(), name.to_string()))
            .or_insert(MetricValue::Gauge(0));
        match e {
            MetricValue::Gauge(v) => *v = v.saturating_add(delta),
            _ => *e = MetricValue::Gauge(delta),
        }
    }

    /// Record one sample into a histogram, creating it empty first.
    pub fn observe(&mut self, daemon: &str, name: &str, sample: u64) {
        let e = self
            .entries
            .entry((daemon.to_string(), name.to_string()))
            .or_insert_with(|| MetricValue::Histogram(Box::new(Histogram::new())));
        if !matches!(e, MetricValue::Histogram(_)) {
            *e = MetricValue::Histogram(Box::new(Histogram::new()));
        }
        if let MetricValue::Histogram(h) = e {
            h.record(sample);
        }
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, daemon: &str, name: &str) -> u64 {
        match self.entries.get(&(daemon.to_string(), name.to_string())) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Read a gauge (0 when absent).
    pub fn gauge(&self, daemon: &str, name: &str) -> i64 {
        match self.entries.get(&(daemon.to_string(), name.to_string())) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Read a histogram, if present.
    pub fn histogram(&self, daemon: &str, name: &str) -> Option<&Histogram> {
        match self.entries.get(&(daemon.to_string(), name.to_string())) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The restart contract: a restarting daemon's **gauges** reset to 0
    /// (the level died with the process) while its **counters** and
    /// **histograms** carry across — restarting must never double- or
    /// re-count history. Other daemons' instruments are untouched.
    pub fn restart_daemon(&mut self, daemon: &str) {
        for ((d, _), v) in self.entries.iter_mut() {
            if d == daemon {
                if let MetricValue::Gauge(level) = v {
                    *level = 0;
                }
            }
        }
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Snapshot every instrument at virtual time `at`.
    pub fn snapshot(&self, at: SimTime) -> MetricsSnapshot {
        MetricsSnapshot {
            at_micros: at.as_micros(),
            samples: self
                .entries
                .iter()
                .map(|((daemon, name), value)| MetricSample {
                    daemon: daemon.clone(),
                    name: name.clone(),
                    value: value.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_coexist_per_daemon() {
        let mut r = MetricsRegistry::new();
        r.incr("namenode", "rpc.mkdirs", 2);
        r.incr("namenode", "rpc.mkdirs", 1);
        r.set_gauge("namenode", "safemode.on", 1);
        r.add_gauge("namenode", "leases.open", 3);
        r.add_gauge("namenode", "leases.open", -1);
        r.observe("jobtracker", "map.duration_ms", 900);
        assert_eq!(r.counter("namenode", "rpc.mkdirs"), 3);
        assert_eq!(r.gauge("namenode", "safemode.on"), 1);
        assert_eq!(r.gauge("namenode", "leases.open"), 2);
        assert_eq!(r.histogram("jobtracker", "map.duration_ms").unwrap().count(), 1);
        // Same name under a different daemon is a different instrument.
        r.incr("datanode.node000", "rpc.mkdirs", 7);
        assert_eq!(r.counter("namenode", "rpc.mkdirs"), 3);
        assert_eq!(r.counter("datanode.node000", "rpc.mkdirs"), 7);
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn restart_resets_gauges_but_preserves_monotonic_counters() {
        let mut r = MetricsRegistry::new();
        r.incr("namenode", "rpc.add_block", 11);
        r.set_gauge("namenode", "blocks.under_replicated", 4);
        r.observe("namenode", "report.size", 80);
        r.incr("datanode.node001", "bytes.read", 4096);
        r.set_gauge("datanode.node001", "blocks.held", 9);

        r.restart_daemon("namenode");
        // The restarted daemon: counters and histograms intact, gauges 0.
        assert_eq!(r.counter("namenode", "rpc.add_block"), 11);
        assert_eq!(r.histogram("namenode", "report.size").unwrap().count(), 1);
        assert_eq!(r.gauge("namenode", "blocks.under_replicated"), 0);
        // Unrelated daemons: fully untouched.
        assert_eq!(r.counter("datanode.node001", "bytes.read"), 4096);
        assert_eq!(r.gauge("datanode.node001", "blocks.held"), 9);
        // A second restart must not double-count anything.
        r.restart_daemon("namenode");
        assert_eq!(r.counter("namenode", "rpc.add_block"), 11);
    }

    #[test]
    fn kind_mismatch_recreates_instead_of_panicking() {
        let mut r = MetricsRegistry::new();
        r.incr("d", "x", 5);
        r.set_gauge("d", "x", -2);
        assert_eq!(r.gauge("d", "x"), -2);
        r.observe("d", "x", 1);
        assert_eq!(r.histogram("d", "x").unwrap().count(), 1);
        r.incr("d", "x", 9);
        assert_eq!(r.counter("d", "x"), 9);
    }

    #[test]
    fn snapshot_is_sorted_and_looks_up() {
        let mut r = MetricsRegistry::new();
        r.incr("z-daemon", "a", 1);
        r.incr("a-daemon", "z", 2);
        r.set_gauge("a-daemon", "a", -3);
        let snap = r.snapshot(SimTime(42));
        assert_eq!(snap.at_micros, 42);
        let keys: Vec<(&str, &str)> =
            snap.samples.iter().map(|s| (s.daemon.as_str(), s.name.as_str())).collect();
        assert_eq!(keys, vec![("a-daemon", "a"), ("a-daemon", "z"), ("z-daemon", "a")]);
        assert_eq!(snap.counter("a-daemon", "z"), 2);
        assert_eq!(snap.gauge("a-daemon", "a"), -3);
        assert_eq!(snap.counter("missing", "nope"), 0);
    }

    #[test]
    fn snapshot_merge_adds_and_unions() {
        let mut a = MetricsRegistry::new();
        a.incr("dn", "bytes.read", 100);
        a.set_gauge("dn", "blocks", 5);
        a.observe("jt", "ms", 10);
        let mut b = MetricsRegistry::new();
        b.incr("dn", "bytes.read", 50);
        b.set_gauge("dn", "blocks", 2);
        b.observe("jt", "ms", 20);
        b.incr("nn", "ops", 1);

        let mut snap = a.snapshot(SimTime(10));
        snap.merge(&b.snapshot(SimTime(7)));
        assert_eq!(snap.at_micros, 10);
        assert_eq!(snap.counter("dn", "bytes.read"), 150);
        assert_eq!(snap.gauge("dn", "blocks"), 7);
        assert_eq!(snap.counter("nn", "ops"), 1);
        match snap.get("jt", "ms").unwrap() {
            MetricValue::Histogram(h) => assert_eq!(h.count(), 2),
            other => panic!("expected histogram, got {other:?}"),
        }
        assert_eq!(snap.counter_across_daemons("bytes.read"), 150);
    }

    #[test]
    fn metrics_snapshot_round_trips() {
        let mut r = MetricsRegistry::new();
        r.incr("namenode", "rpc.mkdirs", 3);
        r.set_gauge("namenode", "delta", -7);
        r.set_gauge("namenode", "big", i64::MIN);
        r.observe("jobtracker", "map.duration_ms", 512);
        r.observe("jobtracker", "map.duration_ms", 0);
        let snap = r.snapshot(SimTime(1_000_000));
        let bytes = snap.to_bytes();
        assert_eq!(MetricsSnapshot::from_bytes(&bytes).unwrap(), snap);
        // Canonical: same registry, same bytes.
        assert_eq!(r.snapshot(SimTime(1_000_000)).to_bytes(), bytes);
        let empty = MetricsSnapshot::default();
        assert_eq!(MetricsSnapshot::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn metric_sample_and_value_round_trip() {
        for value in [
            MetricValue::Counter(u64::MAX),
            MetricValue::Counter(0),
            MetricValue::Gauge(-1),
            MetricValue::Gauge(i64::MAX),
            MetricValue::Gauge(i64::MIN),
            MetricValue::Histogram(Box::new(Histogram::new())),
        ] {
            let s = MetricSample { daemon: "d".into(), name: "n".into(), value };
            assert_eq!(MetricSample::from_bytes(&s.to_bytes()).unwrap(), s);
            assert_eq!(MetricValue::from_bytes(&s.value.to_bytes()).unwrap(), s.value);
        }
        assert!(MetricValue::from_bytes(&[9]).is_err());
    }
}
