//! Log2-bucketed histograms.
//!
//! The bucketing scheme is the classic power-of-two latency histogram:
//! bucket 0 counts exact zeros, bucket `i` (1..=64) counts values in
//! `[2^(i-1), 2^i)`. Fixed bucket boundaries make merges exact — merging
//! two histograms is bucket-wise addition, so merge is associative and
//! commutative (property-tested), which is what lets per-task histograms
//! aggregate up to per-job and per-cluster ones in any order.

use hl_common::writable::{read_vu64, write_vu64, Writable};
use hl_common::{HlError, Result};

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const NUM_BUCKETS: usize = 65;

/// A log2-bucketed histogram over `u64` samples.
///
/// Tracks exact `count`, saturating `sum`, exact `min`/`max`, and the
/// per-bucket counts. Quantiles are bucket upper bounds (within 2x of the
/// true value), the resolution the 1.x web UIs worked at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// Bucket index for a sample: 0 for 0, else `bit_length(v)`.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample, rounded down (`None` when empty).
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// Upper bound of the bucket holding the `q`-quantile (`q` in
    /// per-mille, e.g. 500 = median, 950 = p95). `None` when empty.
    pub fn quantile_bound(&self, q_per_mille: u64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q_per_mille.min(1000);
        // Rank of the target sample, 1-based, rounding up.
        let rank = ((self.count * q).div_ceil(1000)).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(bucket_upper_bound(NUM_BUCKETS - 1))
    }

    /// Merge another histogram into this one (bucket-wise addition;
    /// associative and commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(bucket index, count)` in index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c))
    }
}

/// Inclusive upper bound of bucket `i` (0 for the zero bucket).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Writable for Histogram {
    /// Sparse encoding: count, sum, min, max, then `(index, count)` pairs
    /// for the non-empty buckets — compact and canonical (index order).
    fn write(&self, buf: &mut Vec<u8>) {
        write_vu64(self.count, buf);
        write_vu64(self.sum, buf);
        write_vu64(self.min, buf);
        write_vu64(self.max, buf);
        let nonzero = self.buckets.iter().filter(|&&c| c > 0).count() as u64;
        write_vu64(nonzero, buf);
        for (i, c) in self.nonzero_buckets() {
            write_vu64(i as u64, buf);
            write_vu64(c, buf);
        }
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        let count = read_vu64(buf)?;
        let sum = read_vu64(buf)?;
        let min = read_vu64(buf)?;
        let max = read_vu64(buf)?;
        let nonzero = read_vu64(buf)?;
        let mut buckets = [0u64; NUM_BUCKETS];
        for _ in 0..nonzero {
            let i = read_vu64(buf)?;
            let c = read_vu64(buf)?;
            let slot =
                buckets.get_mut(usize::try_from(i).unwrap_or(usize::MAX)).ok_or_else(|| {
                    HlError::Codec(format!("histogram bucket index {i} out of range"))
                })?;
            *slot = c;
        }
        Ok(Histogram { buckets, count, sum, min, max })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucketing_follows_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        let got: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        // 0→b0, 1→b1, {2,3}→b2, {4,7}→b3, 8→b4, 1023→b10, 1024→b11, MAX→b64.
        assert_eq!(got, vec![(0, 1), (1, 1), (2, 2), (3, 2), (4, 1), (10, 1), (11, 1), (64, 1)]);
    }

    #[test]
    fn quantiles_return_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(100); // bucket 7, bound 127
        }
        for _ in 0..10 {
            h.record(5000); // bucket 13, bound 8191
        }
        assert_eq!(h.quantile_bound(500), Some(127));
        assert_eq!(h.quantile_bound(900), Some(127));
        assert_eq!(h.quantile_bound(950), Some(8191));
        assert_eq!(h.quantile_bound(1000), Some(8191));
        assert_eq!(Histogram::new().quantile_bound(500), None);
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::new();
        a.record(3);
        a.record(100);
        let mut b = Histogram::new();
        b.record(3);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 106);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(100));
        let got: Vec<(usize, u64)> = a.nonzero_buckets().collect();
        assert_eq!(got, vec![(0, 1), (2, 2), (7, 1)]);
    }

    #[test]
    fn histogram_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 5, 900, u64::MAX, 42] {
            h.record(v);
        }
        let bytes = h.to_bytes();
        assert_eq!(Histogram::from_bytes(&bytes).unwrap(), h);
        let empty = Histogram::new();
        assert_eq!(Histogram::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn bad_bucket_index_is_a_codec_error() {
        let mut h = Histogram::new();
        h.record(7);
        let mut bytes = h.to_bytes();
        // The encoding ends with (index, count); index 3 sits two varint
        // bytes from the end. Corrupt it past NUM_BUCKETS.
        let n = bytes.len();
        bytes[n - 2] = 80;
        assert!(Histogram::from_bytes(&bytes).is_err());
    }

    fn arb_histogram() -> impl Strategy<Value = Histogram> {
        proptest::collection::vec(any::<u64>(), 0..40).prop_map(|vs| {
            let mut h = Histogram::new();
            for v in vs {
                h.record(v);
            }
            h
        })
    }

    proptest! {
        #[test]
        fn prop_merge_is_associative(a in arb_histogram(), b in arb_histogram(), c in arb_histogram()) {
            // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn prop_merge_is_commutative(a in arb_histogram(), b in arb_histogram()) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn prop_round_trip(h in arb_histogram()) {
            prop_assert_eq!(Histogram::from_bytes(&h.to_bytes()).unwrap(), h);
        }
    }
}
