//! # hl-metrics
//!
//! The observability layer real Hadoop 1.x exposed through the NameNode
//! and JobTracker metrics pages and that the paper's Section IV stories
//! (safe-mode restarts, under-replicated blocks, ghost daemons) are told
//! through. Every daemon in the workspace registers typed instruments —
//! [`registry::MetricsRegistry`] keyed by `(daemon, name)` — and renders
//! them into a `dfsadmin -report`-style [`report::MetricsReport`].
//!
//! Three invariants distinguish this from an ordinary metrics crate:
//!
//! * **Virtual time only.** Snapshots are stamped with [`SimTime`]
//!   micros; nothing here reads a wall clock, so a metrics snapshot is a
//!   pure function of the simulated history that produced it.
//! * **Deterministic serialization.** [`registry::MetricsSnapshot`]
//!   serializes via the workspace [`Writable`] protocol with samples in
//!   `(daemon, name)` order; two runs of the same seeded scenario must
//!   produce byte-identical snapshots (the chaos harness's seventh
//!   oracle holds them to that).
//! * **Restart semantics.** A daemon restart resets that daemon's
//!   *gauges* (point-in-time state died with the process) but preserves
//!   its monotonic *counters* and histograms — the accounting that must
//!   not double- or under-count across the chaos restart sweep.
//!
//! [`SimTime`]: hl_common::SimTime
//! [`Writable`]: hl_common::writable::Writable

#![warn(missing_docs)]

pub mod histogram;
pub mod registry;
pub mod report;

pub use histogram::Histogram;
pub use registry::{MetricSample, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use report::MetricsReport;
