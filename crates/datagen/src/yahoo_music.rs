//! Yahoo! Music ratings — assignment 2's dataset.
//!
//! Two files: `song_ratings.txt` (`user \t song \t rating`, 0–100 scale
//! like the real Webscope R1 set) and `songs.txt`
//! (`song \t album \t artist`). The assignment: "identify the album that
//! has the highest average rating", which again needs the song→album side
//! file. Albums are given distinct quality offsets so the answer is
//! stable and checkable.

use std::collections::BTreeMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Ground truth.
#[derive(Debug, Clone, Default)]
pub struct YahooTruth {
    /// `album → (ratings, sum)`.
    pub per_album: BTreeMap<u32, (u64, u64)>,
}

impl YahooTruth {
    /// Album average.
    pub fn avg(&self, album: u32) -> Option<f64> {
        self.per_album.get(&album).map(|&(n, s)| s as f64 / n as f64)
    }

    /// `(album, average)` with the highest average (ties by lowest id).
    pub fn best_album(&self) -> Option<(u32, f64)> {
        self.per_album
            .iter()
            .map(|(&a, &(n, s))| (a, s as f64 / n as f64))
            .max_by(|x, y| x.1.total_cmp(&y.1).then(y.0.cmp(&x.0)))
    }
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct YahooData {
    /// `songs.txt`: song → album/artist side file.
    pub songs: String,
    /// `song_ratings.txt`: the big ratings table.
    pub ratings: String,
    /// Exact answers.
    pub truth: YahooTruth,
}

/// The generator.
#[derive(Debug, Clone)]
pub struct YahooMusicGen {
    /// Songs in the catalog.
    pub num_songs: u32,
    /// Albums (songs are striped over them).
    pub num_albums: u32,
    /// Users.
    pub num_users: u32,
    seed: u64,
}

impl YahooMusicGen {
    /// Test-scaled defaults.
    pub fn new(seed: u64) -> Self {
        YahooMusicGen { num_songs: 1000, num_albums: 100, num_users: 500, seed }
    }

    /// Resize.
    pub fn with_sizes(mut self, songs: u32, albums: u32, users: u32) -> Self {
        self.num_songs = songs.max(1);
        self.num_albums = albums.max(1).min(songs.max(1));
        self.num_users = users.max(1);
        self
    }

    /// Generate `num_ratings` ratings plus the song catalog and truth.
    pub fn generate(&self, num_ratings: usize) -> YahooData {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        // Album quality offsets: 30..=70 base mean, distinct-ish.
        let quality: Vec<f64> = (0..self.num_albums).map(|_| rng.gen_range(30.0..70.0)).collect();

        let mut songs = String::new();
        let album_of = |song: u32| song % self.num_albums;
        for s in 0..self.num_songs {
            let album = album_of(s);
            songs.push_str(&format!("{s}\t{album}\tartist{:03}\n", album % 200));
        }

        let mut ratings = String::with_capacity(num_ratings * 14);
        let mut truth = YahooTruth::default();
        for _ in 0..num_ratings {
            let user = rng.gen_range(0..self.num_users);
            let song = rng.gen_range(0..self.num_songs);
            let album = album_of(song);
            let base = quality[album as usize];
            let r = (base + rng.gen_range(-25.0..25.0)).clamp(0.0, 100.0).round() as u64;
            ratings.push_str(&format!("{user}\t{song}\t{r}\n"));
            let e = truth.per_album.entry(album).or_insert((0, 0));
            e.0 += 1;
            e.1 += r;
        }

        YahooData { songs, ratings, truth }
    }
}

/// Parse a ratings line into `(user, song, rating)`.
pub fn parse_rating(line: &str) -> Option<(u32, u32, u64)> {
    let mut f = line.split('\t');
    Some((f.next()?.parse().ok()?, f.next()?.parse().ok()?, f.next()?.parse().ok()?))
}

/// Parse a songs line into `(song, album)`.
pub fn parse_song(line: &str) -> Option<(u32, u32)> {
    let mut f = line.split('\t');
    Some((f.next()?.parse().ok()?, f.next()?.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_matches_reparse() {
        let data = YahooMusicGen::new(17).generate(30_000);
        let mut album_of: BTreeMap<u32, u32> = BTreeMap::new();
        for line in data.songs.lines() {
            let (s, a) = parse_song(line).unwrap();
            album_of.insert(s, a);
        }
        let mut recount: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
        for line in data.ratings.lines() {
            let (_, song, r) = parse_rating(line).unwrap();
            let e = recount.entry(album_of[&song]).or_insert((0, 0));
            e.0 += 1;
            e.1 += r;
        }
        assert_eq!(recount, data.truth.per_album);
    }

    #[test]
    fn best_album_is_stable_and_high() {
        let data = YahooMusicGen::new(2).generate(50_000);
        let (album, avg) = data.truth.best_album().unwrap();
        assert!(avg > 55.0, "best album avg {avg:.1}");
        // Deterministic across regenerations.
        let again = YahooMusicGen::new(2).generate(50_000);
        assert_eq!(again.truth.best_album().unwrap().0, album);
    }

    #[test]
    fn catalog_shape() {
        let gen = YahooMusicGen::new(1).with_sizes(100, 10, 50);
        let data = gen.generate(1000);
        assert_eq!(data.songs.lines().count(), 100);
        for line in data.songs.lines() {
            let (s, a) = parse_song(line).unwrap();
            assert_eq!(a, s % 10);
        }
    }

    #[test]
    fn ratings_in_scale() {
        let data = YahooMusicGen::new(3).generate(5000);
        for line in data.ratings.lines() {
            let (_, _, r) = parse_rating(line).unwrap();
            assert!(r <= 100);
        }
    }

    #[test]
    fn parsers_reject_garbage() {
        assert!(parse_rating("a,b,c").is_none());
        assert!(parse_song("no-tabs-here").is_none());
    }
}
