//! Zipf-distributed text — the Shakespeare/WordCount stand-in.
//!
//! Natural-language word frequencies are famously Zipfian, and that skew
//! is exactly why WordCount's combiner works so well (the word "the"
//! collapses from thousands of pairs to one per map task). The generator
//! samples a synthetic vocabulary under a Zipf(s) law via an inverse-CDF
//! table, tracks exact ground-truth counts, and emits plain text lines.

use std::collections::BTreeMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Zipf text generator.
#[derive(Debug, Clone)]
pub struct CorpusGen {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent (≈1.0 for natural text).
    pub exponent: f64,
    /// Words per output line.
    pub words_per_line: usize,
    seed: u64,
}

impl CorpusGen {
    /// Shakespeare-flavored defaults: 20 000 word vocabulary, s = 1.05,
    /// 10 words per line.
    pub fn new(seed: u64) -> Self {
        CorpusGen { vocab_size: 20_000, exponent: 1.05, words_per_line: 10, seed }
    }

    /// Smaller vocabulary (sharper skew effect, faster tests).
    pub fn with_vocab(mut self, vocab_size: usize) -> Self {
        self.vocab_size = vocab_size.max(1);
        self
    }

    /// The `i`-th vocabulary word ("w0000013"-style, rank order).
    pub fn word(&self, rank: usize) -> String {
        format!("w{rank:07}")
    }

    /// Generate `num_words` words of text plus exact ground-truth counts.
    pub fn generate(&self, num_words: usize) -> (String, BTreeMap<String, u64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        // Inverse-CDF table for Zipf(s) over ranks 1..=V.
        let mut cdf = Vec::with_capacity(self.vocab_size);
        let mut acc = 0.0;
        for rank in 1..=self.vocab_size {
            acc += 1.0 / (rank as f64).powf(self.exponent);
            cdf.push(acc);
        }
        let total = acc;

        let mut text = String::with_capacity(num_words * 9);
        let mut counts: BTreeMap<String, u64> = BTreeMap::new();
        for i in 0..num_words {
            let u: f64 = rng.gen_range(0.0..total);
            let rank = cdf.partition_point(|&c| c < u); // 0-based rank
            let w = self.word(rank);
            *counts.entry(w.clone()).or_default() += 1;
            text.push_str(&w);
            if (i + 1) % self.words_per_line == 0 {
                text.push('\n');
            } else {
                text.push(' ');
            }
        }
        if !text.ends_with('\n') && !text.is_empty() {
            text.push('\n');
        }
        (text, counts)
    }

    /// Generate approximately `target_bytes` of text (each word ≈ 9 bytes
    /// with separator).
    pub fn generate_bytes(&self, target_bytes: usize) -> (String, BTreeMap<String, u64>) {
        self.generate(target_bytes / 9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_matches_text() {
        let gen = CorpusGen::new(42).with_vocab(100);
        let (text, counts) = gen.generate(5_000);
        let mut recount: BTreeMap<String, u64> = BTreeMap::new();
        for w in text.split_whitespace() {
            *recount.entry(w.to_string()).or_default() += 1;
        }
        assert_eq!(recount, counts);
        assert_eq!(counts.values().sum::<u64>(), 5_000);
    }

    #[test]
    fn distribution_is_zipf_skewed() {
        let gen = CorpusGen::new(7).with_vocab(1000);
        let (_, counts) = gen.generate(50_000);
        let top = counts.get(&gen.word(0)).copied().unwrap_or(0);
        let tenth = counts.get(&gen.word(9)).copied().unwrap_or(0);
        // Zipf: rank-1 ≈ 10^s × rank-10. Allow wide slack.
        assert!(top > 4 * tenth, "rank1={top} rank10={tenth}");
        // A huge share of mass sits in the head.
        let head: u64 = (0..10).filter_map(|r| counts.get(&gen.word(r))).sum();
        assert!(head > 50_000 / 4, "head mass {head}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CorpusGen::new(1).with_vocab(50).generate(1000);
        let b = CorpusGen::new(1).with_vocab(50).generate(1000);
        let c = CorpusGen::new(2).with_vocab(50).generate(1000);
        assert_eq!(a.0, b.0);
        assert_ne!(a.0, c.0);
    }

    #[test]
    fn line_structure() {
        let gen = CorpusGen::new(3).with_vocab(10);
        let (text, _) = gen.generate(25);
        assert_eq!(text.lines().count(), 3); // 10 + 10 + 5
        assert!(text.ends_with('\n'));
        let (empty, counts) = gen.generate(0);
        assert!(empty.is_empty());
        assert!(counts.is_empty());
    }

    #[test]
    fn generate_bytes_lands_near_target() {
        let gen = CorpusGen::new(4);
        let (text, _) = gen.generate_bytes(90_000);
        let len = text.len();
        assert!((60_000..=120_000).contains(&len), "{len}");
    }
}
