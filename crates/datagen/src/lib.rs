//! # hl-datagen
//!
//! Seeded synthetic stand-ins for every dataset the course used. The paper
//! datasets are either proprietary, bulky, or both; these generators
//! produce schema-compatible data with **known ground truth**, so each
//! workload's output can be verified exactly, and with the distributional
//! features the experiments depend on (Zipf word skew for combiner
//! effectiveness, per-carrier delay skew, a long-tailed ratings-per-user
//! distribution, task-resubmission storms in the trace).
//!
//! | Paper dataset | Generator | Ground truth exposed |
//! |---|---|---|
//! | Shakespeare / Wikipedia text | [`corpus`] | exact word counts |
//! | Airline on-time (12 GB) | [`airline`] | per-carrier delay sums |
//! | MovieLens 10M (250 MB) | [`movielens`] | genre stats, most-active user |
//! | Yahoo! Music (10 GB) | [`yahoo_music`] | album averages, best album |
//! | Google cluster trace (171 GB) | [`google_trace`] | max-resubmission job |
//! | 29 returned survey forms | [`survey`] | Tables I–IV statistics |
//!
//! All generators are deterministic per seed (ChaCha8) and sized by row
//! count, so tests run at laptop scale while staging experiments model the
//! full published sizes separately (synthetic DFS payloads).

#![warn(missing_docs)]

pub mod airline;
pub mod corpus;
pub mod google_trace;
pub mod movielens;
pub mod stats;
pub mod survey;
pub mod yahoo_music;

pub use corpus::CorpusGen;
pub use stats::mean_std;
