//! MovieLens-style ratings — assignment 1's dataset.
//!
//! Two files, like the real 10M release: `movies.dat`
//! (`MovieID::Title::Genre|Genre`) and `ratings.dat`
//! (`UserID::MovieID::Rating::Timestamp`). Matching a rating to its genres
//! requires the side file — the join whose naive implementation is an
//! order of magnitude slower, the core lesson of the assignment. Users
//! have a long-tailed activity distribution so "the user with the most
//! ratings" is unambiguous, and each user has a genre bias so their
//! "favorite genre" is too.

use std::collections::BTreeMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The 18 MovieLens genres.
pub const GENRES: [&str; 18] = [
    "Action",
    "Adventure",
    "Animation",
    "Children",
    "Comedy",
    "Crime",
    "Documentary",
    "Drama",
    "Fantasy",
    "Film-Noir",
    "Horror",
    "Musical",
    "Mystery",
    "Romance",
    "Sci-Fi",
    "Thriller",
    "War",
    "Western",
];

/// Per-genre rating statistics (the assignment's part 1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenreStats {
    /// `genre → (count, sum, min, max)` of ratings.
    pub per_genre: BTreeMap<String, (u64, f64, f64, f64)>,
}

impl GenreStats {
    fn add(&mut self, genre: &str, rating: f64) {
        let e = self.per_genre.entry(genre.to_string()).or_insert((
            0,
            0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ));
        e.0 += 1;
        e.1 += rating;
        e.2 = e.2.min(rating);
        e.3 = e.3.max(rating);
    }

    /// Mean rating of a genre.
    pub fn mean(&self, genre: &str) -> Option<f64> {
        self.per_genre.get(genre).map(|&(n, s, _, _)| s / n as f64)
    }
}

/// Ground truth for both parts of assignment 1.
#[derive(Debug, Clone, Default)]
pub struct MovieLensTruth {
    /// Genre statistics.
    pub genre_stats: GenreStats,
    /// Ratings per user.
    pub ratings_per_user: BTreeMap<u32, u64>,
    /// `(user, genre) → count`, for the favorite-genre question.
    pub user_genre_counts: BTreeMap<(u32, String), u64>,
}

impl MovieLensTruth {
    /// The most active user and their rating count (ties broken by lowest
    /// user id, same as the reference solution).
    pub fn most_active_user(&self) -> Option<(u32, u64)> {
        self.ratings_per_user
            .iter()
            .map(|(&u, &n)| (u, n))
            .max_by_key(|&(u, n)| (n, std::cmp::Reverse(u)))
    }

    /// A user's favorite genre (max count, ties by name).
    pub fn favorite_genre(&self, user: u32) -> Option<&str> {
        self.user_genre_counts
            .iter()
            .filter(|((u, _), _)| *u == user)
            .max_by_key(|((_, g), &n)| (n, std::cmp::Reverse(g.clone())))
            .map(|((_, g), _)| g.as_str())
    }
}

/// The generated dataset.
#[derive(Debug, Clone)]
pub struct MovieLensData {
    /// `movies.dat` content.
    pub movies: String,
    /// `ratings.dat` content.
    pub ratings: String,
    /// Exact answers.
    pub truth: MovieLensTruth,
}

/// The generator.
#[derive(Debug, Clone)]
pub struct MovieLensGen {
    /// Number of movies.
    pub num_movies: u32,
    /// Number of users.
    pub num_users: u32,
    seed: u64,
}

impl MovieLensGen {
    /// Course-scaled defaults (the real set: 10 000 movies, 72 000 users).
    pub fn new(seed: u64) -> Self {
        MovieLensGen { num_movies: 500, num_users: 300, seed }
    }

    /// Resize.
    pub fn with_sizes(mut self, movies: u32, users: u32) -> Self {
        self.num_movies = movies.max(1);
        self.num_users = users.max(1);
        self
    }

    /// Generate `num_ratings` ratings (+ the movies side file + truth).
    pub fn generate(&self, num_ratings: usize) -> MovieLensData {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);

        // Movies: 1..=3 genres each.
        let mut movies = String::new();
        let mut movie_genres: Vec<Vec<&'static str>> = Vec::with_capacity(self.num_movies as usize);
        for m in 1..=self.num_movies {
            let n_genres = rng.gen_range(1..=3usize);
            let mut gs: Vec<&str> = Vec::new();
            while gs.len() < n_genres {
                let g = GENRES[rng.gen_range(0..GENRES.len())];
                if !gs.contains(&g) {
                    gs.push(g);
                }
            }
            gs.sort_unstable();
            movies.push_str(&format!("{m}::Movie {m} ({})::{}\n", 1970 + (m % 45), gs.join("|")));
            movie_genres.push(gs);
        }

        // Users: long-tailed activity (user weight ∝ 1/rank) and a genre
        // bias: each user prefers movies whose id falls in "their" band,
        // which correlates their ratings with particular genres.
        let weights: Vec<f64> = (1..=self.num_users).map(|r| 1.0 / r as f64).collect();
        let total_w: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cdf.push(acc);
        }

        let mut ratings = String::with_capacity(num_ratings * 24);
        let mut truth = MovieLensTruth::default();
        for i in 0..num_ratings {
            let u_draw: f64 = rng.gen_range(0.0..total_w);
            let user = cdf.partition_point(|&c| c < u_draw) as u32 + 1;
            // Bias: 70% of a user's ratings land in a user-specific slice
            // of the movie catalog.
            let movie = if rng.gen_bool(0.7) {
                let band = user % 10;
                let lo = band * self.num_movies / 10;
                let hi = ((band + 1) * self.num_movies / 10).max(lo + 1);
                rng.gen_range(lo..hi) + 1
            } else {
                rng.gen_range(1..=self.num_movies)
            };
            let rating = (rng.gen_range(2..=10u32) as f64) / 2.0; // 1.0..5.0 halves
            let ts = 1_000_000_000 + i as u64;
            ratings.push_str(&format!("{user}::{movie}::{rating}::{ts}\n"));

            *truth.ratings_per_user.entry(user).or_default() += 1;
            for g in &movie_genres[(movie - 1) as usize] {
                truth.genre_stats.add(g, rating);
                *truth.user_genre_counts.entry((user, g.to_string())).or_default() += 1;
            }
        }

        MovieLensData { movies, ratings, truth }
    }
}

/// Parse a `ratings.dat` line into `(user, movie, rating)`.
pub fn parse_rating(line: &str) -> Option<(u32, u32, f64)> {
    let mut f = line.split("::");
    let user = f.next()?.parse().ok()?;
    let movie = f.next()?.parse().ok()?;
    let rating = f.next()?.parse().ok()?;
    Some((user, movie, rating))
}

/// Parse a `movies.dat` line into `(movie, genres)`.
pub fn parse_movie(line: &str) -> Option<(u32, Vec<&str>)> {
    let mut f = line.split("::");
    let movie = f.next()?.parse().ok()?;
    let _title = f.next()?;
    let genres = f.next()?.split('|').collect();
    Some((movie, genres))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_matches_reparse() {
        let data = MovieLensGen::new(21).generate(20_000);
        // Rebuild the genre stats by joining the two files by hand.
        let mut genre_of: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for line in data.movies.lines() {
            let (m, gs) = parse_movie(line).unwrap();
            genre_of.insert(m, gs.iter().map(|s| s.to_string()).collect());
        }
        let mut stats = GenreStats::default();
        let mut per_user: BTreeMap<u32, u64> = BTreeMap::new();
        for line in data.ratings.lines() {
            let (u, m, r) = parse_rating(line).unwrap();
            *per_user.entry(u).or_default() += 1;
            for g in &genre_of[&m] {
                stats.add(g, r);
            }
        }
        assert_eq!(stats, data.truth.genre_stats);
        assert_eq!(per_user, data.truth.ratings_per_user);
    }

    #[test]
    fn most_active_user_is_user_one_by_design() {
        // Weight ∝ 1/rank makes user 1 the heaviest with overwhelming odds.
        let data = MovieLensGen::new(3).generate(30_000);
        let (user, count) = data.truth.most_active_user().unwrap();
        assert_eq!(user, 1);
        assert!(count > 1000, "user 1 rated {count}");
        let fav = data.truth.favorite_genre(user).unwrap();
        assert!(GENRES.contains(&fav));
    }

    #[test]
    fn movie_file_is_well_formed() {
        let data = MovieLensGen::new(1).with_sizes(50, 10).generate(100);
        assert_eq!(data.movies.lines().count(), 50);
        for line in data.movies.lines() {
            let (id, gs) = parse_movie(line).unwrap();
            assert!((1..=50).contains(&id));
            assert!(!gs.is_empty() && gs.len() <= 3);
            for g in gs {
                assert!(GENRES.contains(&g), "{g}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = MovieLensGen::new(8).generate(500);
        let b = MovieLensGen::new(8).generate(500);
        assert_eq!(a.ratings, b.ratings);
        assert_eq!(a.movies, b.movies);
    }

    #[test]
    fn parsers_reject_garbage() {
        assert!(parse_rating("not a rating").is_none());
        assert!(parse_movie("1::only-title").is_none());
    }
}
