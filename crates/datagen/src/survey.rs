//! Synthesized student-survey responses — the substrate for Tables I–IV.
//!
//! The paper's evaluation is a 29-response survey; the raw forms are not
//! published, only summary statistics. We synthesize **per-student
//! responses** whose aggregates reproduce the published numbers: continuous
//! scale items are sampled, then shifted/scaled to the published
//! `mean ± std` and clamped to the instrument's range (iterating fit+clamp
//! so clamping doesn't drift the moments); the Table IV categorical counts
//! are generated exactly. The experiment harness then *recomputes* the
//! tables from these forms — a real aggregation pipeline over plausible
//! data, which is the closest faithful reproduction a summary-only paper
//! admits (see DESIGN.md substitutions).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::stats::{clamp_all, fit_moments, mean_std};

/// Published targets from the paper.
pub mod paper {
    /// Table I rows: `(topic, before mean, before std, after mean, after std)`
    /// on a 0–10 proficiency scale.
    pub const TABLE1: [(&str, f64, f64, f64, f64); 4] = [
        ("Java", 6.6, 1.2, 7.3, 1.1),
        ("Linux", 5.86, 1.7, 7.1, 1.7),
        ("Networking", 4.38, 1.6, 6.29, 1.5),
        ("Hadoop MapReduce", 0.03, 0.2, 4.53, 1.16),
    ];

    /// Table II rows: `(activity, mean, std)` on the 1–4 time scale
    /// (1: <30 min, 2: 30 min–2 h, 3: 2–4 h, 4: >4 h).
    pub const TABLE2: [(&str, f64, f64); 3] = [
        ("First Assignment", 3.5, 0.7),
        ("Second Assignment", 3.1, 0.9),
        ("Set up Hadoop cluster", 2.5, 1.1),
    ];

    /// Table III rows: `(material, mean, std)` on the 1–4 usefulness scale.
    pub const TABLE3: [(&str, f64, f64); 3] =
        [("Lecture", 3.0, 0.9), ("In-class lab", 3.6, 0.7), ("Hadoop cluster tutorial", 2.9, 0.82)];

    /// Table IV counts: `(year, count)`, total 29.
    pub const TABLE4: [(&str, u32); 4] =
        [("Senior", 7), ("Junior", 14), ("Sophomore", 6), ("Freshman", 2)];

    /// Respondents (29 of 39 enrolled returned the form).
    pub const RESPONDENTS: usize = 29;
    /// Class enrollment.
    pub const ENROLLED: usize = 39;
}

/// The year level a student picked in Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum YearLevel {
    /// First year.
    Freshman,
    /// Second year.
    Sophomore,
    /// Third year.
    Junior,
    /// Fourth year.
    Senior,
}

impl YearLevel {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            YearLevel::Senior => "Senior",
            YearLevel::Junior => "Junior",
            YearLevel::Sophomore => "Sophomore",
            YearLevel::Freshman => "Freshman",
        }
    }
}

/// One returned survey form.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyResponse {
    /// Proficiency before the module, Table I row order, 0–10.
    pub proficiency_before: [f64; 4],
    /// Proficiency after, 0–10.
    pub proficiency_after: [f64; 4],
    /// Time to complete, Table II row order, 1–4 scale.
    pub time_taken: [f64; 3],
    /// Usefulness, Table III row order, 1–4 scale.
    pub usefulness: [f64; 3],
    /// Lowest year the module should be taught at.
    pub year_to_teach: YearLevel,
}

/// Sample n values, then iterate fit-to-moments + clamp so the final
/// clamped sample still matches `(mean, std)` closely.
fn sample_fitted(
    rng: &mut ChaCha8Rng,
    n: usize,
    mean: f64,
    std: f64,
    lo: f64,
    hi: f64,
) -> Vec<f64> {
    // Approximate normal: sum of 4 uniforms (Irwin–Hall), then fit.
    let mut v: Vec<f64> =
        (0..n).map(|_| (0..4).map(|_| rng.gen_range(-1.0f64..1.0)).sum::<f64>()).collect();
    for _ in 0..60 {
        fit_moments(&mut v, mean, std);
        clamp_all(&mut v, lo, hi);
        let (m, s) = mean_std(&v);
        if (m - mean).abs() < 5e-3 && (s - std).abs() < 5e-3 {
            break;
        }
    }
    v
}

/// Generate the 29 returned forms.
pub fn generate(seed: u64) -> Vec<SurveyResponse> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = paper::RESPONDENTS;

    let mut columns_before = Vec::new();
    let mut columns_after = Vec::new();
    for &(_, bm, bs, am, as_) in &paper::TABLE1 {
        columns_before.push(sample_fitted(&mut rng, n, bm, bs, 0.0, 10.0));
        columns_after.push(sample_fitted(&mut rng, n, am, as_, 0.0, 10.0));
    }
    let time_cols: Vec<Vec<f64>> =
        paper::TABLE2.iter().map(|&(_, m, s)| sample_fitted(&mut rng, n, m, s, 1.0, 4.0)).collect();
    let use_cols: Vec<Vec<f64>> =
        paper::TABLE3.iter().map(|&(_, m, s)| sample_fitted(&mut rng, n, m, s, 1.0, 4.0)).collect();

    // Exact Table IV counts, then shuffle assignment across students.
    let mut years = Vec::with_capacity(n);
    for &(label, count) in &paper::TABLE4 {
        let y = match label {
            "Senior" => YearLevel::Senior,
            "Junior" => YearLevel::Junior,
            "Sophomore" => YearLevel::Sophomore,
            _ => YearLevel::Freshman,
        };
        years.extend(std::iter::repeat_n(y, count as usize));
    }
    // Fisher–Yates.
    for i in (1..years.len()).rev() {
        let j = rng.gen_range(0..=i);
        years.swap(i, j);
    }

    (0..n)
        .map(|i| SurveyResponse {
            proficiency_before: std::array::from_fn(|k| columns_before[k][i]),
            proficiency_after: std::array::from_fn(|k| columns_after[k][i]),
            time_taken: std::array::from_fn(|k| time_cols[k][i]),
            usefulness: std::array::from_fn(|k| use_cols[k][i]),
            year_to_teach: years[i],
        })
        .collect()
}

/// Aggregate a column accessor over the forms into `(mean, std)`.
pub fn aggregate(forms: &[SurveyResponse], f: impl Fn(&SurveyResponse) -> f64) -> (f64, f64) {
    let values: Vec<f64> = forms.iter().map(f).collect();
    mean_std(&values)
}

/// Table IV counts recomputed from the forms, paper row order.
pub fn year_counts(forms: &[SurveyResponse]) -> [(YearLevel, usize); 4] {
    let count = |y: YearLevel| forms.iter().filter(|r| r.year_to_teach == y).count();
    [
        (YearLevel::Senior, count(YearLevel::Senior)),
        (YearLevel::Junior, count(YearLevel::Junior)),
        (YearLevel::Sophomore, count(YearLevel::Sophomore)),
        (YearLevel::Freshman, count(YearLevel::Freshman)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_table1() {
        let forms = generate(2014);
        assert_eq!(forms.len(), 29);
        for (k, &(topic, bm, bs, am, as_)) in paper::TABLE1.iter().enumerate() {
            let (m, s) = aggregate(&forms, |r| r.proficiency_before[k]);
            assert!((m - bm).abs() < 0.05, "{topic} before mean {m:.3} vs {bm}");
            assert!((s - bs).abs() < 0.05, "{topic} before std {s:.3} vs {bs}");
            let (m, s) = aggregate(&forms, |r| r.proficiency_after[k]);
            assert!((m - am).abs() < 0.05, "{topic} after mean {m:.3} vs {am}");
            assert!((s - as_).abs() < 0.05, "{topic} after std {s:.3} vs {as_}");
        }
    }

    #[test]
    fn moments_match_tables2_and_3() {
        let forms = generate(2014);
        for (k, &(what, tm, ts)) in paper::TABLE2.iter().enumerate() {
            let (m, s) = aggregate(&forms, |r| r.time_taken[k]);
            assert!((m - tm).abs() < 0.05, "{what} mean {m:.3} vs {tm}");
            assert!((s - ts).abs() < 0.06, "{what} std {s:.3} vs {ts}");
        }
        for (k, &(what, um, us)) in paper::TABLE3.iter().enumerate() {
            let (m, s) = aggregate(&forms, |r| r.usefulness[k]);
            assert!((m - um).abs() < 0.05, "{what} mean {m:.3} vs {um}");
            assert!((s - us).abs() < 0.06, "{what} std {s:.3} vs {us}");
        }
    }

    #[test]
    fn table4_counts_exact() {
        let forms = generate(2014);
        let counts = year_counts(&forms);
        assert_eq!(counts[0], (YearLevel::Senior, 7));
        assert_eq!(counts[1], (YearLevel::Junior, 14));
        assert_eq!(counts[2], (YearLevel::Sophomore, 6));
        assert_eq!(counts[3], (YearLevel::Freshman, 2));
    }

    #[test]
    fn responses_stay_in_instrument_ranges() {
        let forms = generate(7);
        for r in &forms {
            for v in r.proficiency_before.iter().chain(&r.proficiency_after) {
                assert!((0.0..=10.0).contains(v));
            }
            for v in r.time_taken.iter().chain(&r.usefulness) {
                assert!((1.0..=4.0).contains(v));
            }
        }
    }

    #[test]
    fn hadoop_before_is_essentially_zero_for_everyone() {
        // The class had (almost) no prior Hadoop exposure: 0.03 ± 0.2.
        let forms = generate(2014);
        let near_zero = forms.iter().filter(|r| r.proficiency_before[3] < 0.5).count();
        assert!(near_zero >= 27, "{near_zero}/29 near zero");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(1), generate(1));
        assert_ne!(generate(1), generate(2));
    }
}
