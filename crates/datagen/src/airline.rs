//! Airline on-time performance data — the 12 GB ASA Data Expo stand-in.
//!
//! The course's main lab dataset: "a reasonable size (12GB) with a
//! straightforward single-table data schematic". Rows follow the Data
//! Expo 2009 column layout (the subset the workloads touch), carriers have
//! distinct delay distributions (so "average delay per airline" has a
//! meaningful answer), and exact per-carrier ground truth is returned with
//! the data.

use std::collections::BTreeMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The carriers we synthesize, with (mean arrival delay, spread) minutes —
/// loosely shaped like the 2008 Data Expo reality (everyone is late, some
/// more than others).
pub const CARRIERS: [(&str, f64, f64); 10] = [
    ("AA", 9.5, 28.0),
    ("AQ", 1.2, 12.0),
    ("B6", 11.8, 33.0),
    ("CO", 8.0, 26.0),
    ("DL", 7.1, 25.0),
    ("EV", 13.4, 35.0),
    ("HA", -1.5, 10.0),
    ("NW", 5.9, 24.0),
    ("UA", 10.6, 30.0),
    ("WN", 4.8, 20.0),
];

/// Airports for origin/dest columns.
const AIRPORTS: [&str; 12] =
    ["ATL", "ORD", "DFW", "DEN", "LAX", "CLT", "PHX", "IAH", "SFO", "SEA", "GSP", "CAE"];

/// CSV header matching the Data Expo subset we emit.
pub const HEADER: &str =
    "Year,Month,DayofMonth,DayOfWeek,DepTime,UniqueCarrier,FlightNum,ArrDelay,DepDelay,Origin,Dest,Distance";

/// Exact ground truth accumulated while generating.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AirlineTruth {
    /// Per-carrier `(flights, total arrival delay minutes)`.
    pub per_carrier: BTreeMap<String, (u64, i64)>,
}

impl AirlineTruth {
    /// Average arrival delay for a carrier.
    pub fn avg_delay(&self, carrier: &str) -> Option<f64> {
        self.per_carrier.get(carrier).map(|&(n, sum)| sum as f64 / n as f64)
    }

    /// Carrier with the lowest average delay.
    pub fn best_carrier(&self) -> Option<(&str, f64)> {
        self.per_carrier
            .iter()
            .map(|(c, &(n, s))| (c.as_str(), s as f64 / n as f64))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// The generator.
#[derive(Debug, Clone)]
pub struct AirlineGen {
    seed: u64,
    /// Emit the CSV header line first (the real file has one; the course
    /// examples skip it by checking for non-numeric fields).
    pub with_header: bool,
}

impl AirlineGen {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        AirlineGen { seed, with_header: true }
    }

    /// Generate `rows` flights plus ground truth.
    pub fn generate(&self, rows: usize) -> (String, AirlineTruth) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut out = String::with_capacity(rows * 60);
        if self.with_header {
            out.push_str(HEADER);
            out.push('\n');
        }
        let mut truth = AirlineTruth::default();
        for _ in 0..rows {
            let (carrier, mean, spread) = CARRIERS[rng.gen_range(0..CARRIERS.len())];
            // Skewed delay: mostly near the mean, occasional big blowups —
            // a crude two-component mixture.
            let base: f64 = rng.gen_range(-1.0..1.0) * spread + mean;
            let delay = if rng.gen_bool(0.02) { base + rng.gen_range(60.0..240.0) } else { base };
            let arr_delay = delay.round() as i64;
            let dep_delay = (delay * rng.gen_range(0.5..1.0)).round() as i64;
            let month = rng.gen_range(1..=12u32);
            let day = rng.gen_range(1..=28u32);
            let dow = rng.gen_range(1..=7u32);
            let dep_time = rng.gen_range(500..2359u32);
            let flight = rng.gen_range(1..=9999u32);
            let o = AIRPORTS[rng.gen_range(0..AIRPORTS.len())];
            let mut d = AIRPORTS[rng.gen_range(0..AIRPORTS.len())];
            if d == o {
                d = AIRPORTS[(AIRPORTS.iter().position(|&a| a == o).unwrap() + 1) % AIRPORTS.len()];
            }
            let dist = rng.gen_range(100..2700u32);
            out.push_str(&format!(
                "2008,{month},{day},{dow},{dep_time},{carrier},{flight},{arr_delay},{dep_delay},{o},{d},{dist}\n"
            ));
            let e = truth.per_carrier.entry(carrier.to_string()).or_insert((0, 0));
            e.0 += 1;
            e.1 += arr_delay;
        }
        (out, truth)
    }
}

/// Parse one data row into `(carrier, arr_delay)`; returns `None` for the
/// header or malformed rows — the same tolerant parse the example
/// MapReduce code uses.
pub fn parse_carrier_delay(line: &str) -> Option<(&str, i64)> {
    let mut fields = line.split(',');
    let carrier = fields.nth(5)?;
    let arr_delay = fields.nth(1)?; // field 7
    arr_delay.parse().ok().map(|d| (carrier, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_matches_reparse() {
        let (csv, truth) = AirlineGen::new(11).generate(5_000);
        let mut recount: BTreeMap<String, (u64, i64)> = BTreeMap::new();
        for line in csv.lines() {
            if let Some((c, d)) = parse_carrier_delay(line) {
                let e = recount.entry(c.to_string()).or_insert((0, 0));
                e.0 += 1;
                e.1 += d;
            }
        }
        assert_eq!(recount, truth.per_carrier);
        assert_eq!(recount.values().map(|v| v.0).sum::<u64>(), 5_000);
    }

    #[test]
    fn header_is_skipped_by_parser() {
        assert_eq!(parse_carrier_delay(HEADER), None);
        assert_eq!(parse_carrier_delay("junk"), None);
        assert_eq!(parse_carrier_delay("2008,1,2,3,900,DL,123,-4,0,ATL,ORD,600"), Some(("DL", -4)));
    }

    #[test]
    fn carriers_have_distinct_averages() {
        let (_, truth) = AirlineGen::new(5).generate(50_000);
        assert_eq!(truth.per_carrier.len(), 10);
        let ha = truth.avg_delay("HA").unwrap();
        let ev = truth.avg_delay("EV").unwrap();
        assert!(ha < ev, "HA ({ha:.1}) should beat EV ({ev:.1})");
        let (best, avg) = truth.best_carrier().unwrap();
        assert_eq!(best, "HA");
        assert!(avg < 8.0, "best avg {avg:.1}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = AirlineGen::new(9).generate(100).0;
        let b = AirlineGen::new(9).generate(100).0;
        assert_eq!(a, b);
        assert_ne!(a, AirlineGen::new(10).generate(100).0);
    }

    #[test]
    fn header_toggle() {
        let mut gen = AirlineGen::new(1);
        gen.with_header = false;
        let (csv, _) = gen.generate(10);
        assert!(!csv.starts_with("Year"));
        assert_eq!(csv.lines().count(), 10);
    }
}
