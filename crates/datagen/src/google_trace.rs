//! Google cluster trace — the 171 GB semester-project dataset.
//!
//! The Fall-2012 assignment: "analyze the 171GB of a Google Data Center's
//! system log and find the computing job with largest number of task
//! resubmissions". We synthesize task-event rows in the clusterdata-2011
//! style (`timestamp,missing,job_id,task_index,machine_id,event_type,...`)
//! where `event_type` follows the real encoding (0=SUBMIT, 1=SCHEDULE,
//! 2=EVICT, 3=FAIL, 4=FINISH, 5=KILL, 6=LOST). A resubmission is a SUBMIT
//! event for a task that was already submitted — generated heavy-tailed so
//! one job is the clear answer.

use std::collections::BTreeMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Event type codes, clusterdata-2011 encoding.
pub mod event {
    /// Task submitted (or resubmitted).
    pub const SUBMIT: u8 = 0;
    /// Task placed on a machine.
    pub const SCHEDULE: u8 = 1;
    /// Task evicted by a higher-priority task.
    pub const EVICT: u8 = 2;
    /// Task failed.
    pub const FAIL: u8 = 3;
    /// Task completed normally.
    pub const FINISH: u8 = 4;
    /// Task killed by its user/driver.
    pub const KILL: u8 = 5;
    /// Task record lost by the monitoring system.
    pub const LOST: u8 = 6;
}

/// Ground truth.
#[derive(Debug, Clone, Default)]
pub struct TraceTruth {
    /// `job → total task resubmissions` (SUBMIT events beyond the first,
    /// per task, summed over the job's tasks).
    pub resubmissions: BTreeMap<u64, u64>,
}

impl TraceTruth {
    /// `(job, resubmissions)` with the most resubmissions.
    pub fn worst_job(&self) -> Option<(u64, u64)> {
        self.resubmissions
            .iter()
            .map(|(&j, &n)| (j, n))
            .max_by_key(|&(j, n)| (n, std::cmp::Reverse(j)))
    }
}

/// The generator.
#[derive(Debug, Clone)]
pub struct GoogleTraceGen {
    /// Number of jobs.
    pub num_jobs: u64,
    /// Tasks per job (upper bound; sampled).
    pub max_tasks_per_job: u32,
    seed: u64,
}

impl GoogleTraceGen {
    /// Test-scaled defaults.
    pub fn new(seed: u64) -> Self {
        GoogleTraceGen { num_jobs: 200, max_tasks_per_job: 40, seed }
    }

    /// Resize.
    pub fn with_jobs(mut self, jobs: u64, max_tasks: u32) -> Self {
        self.num_jobs = jobs.max(1);
        self.max_tasks_per_job = max_tasks.max(1);
        self
    }

    /// Generate the task-event log plus ground truth.
    pub fn generate(&self) -> (String, TraceTruth) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut out = String::new();
        let mut truth = TraceTruth::default();
        let mut ts: u64 = 600_000_000; // trace starts at 600 s, like the real one

        for j in 0..self.num_jobs {
            let job_id = 6_000_000_000 + j * 137; // big sparse ids, real-flavored
            let tasks = rng.gen_range(1..=self.max_tasks_per_job);
            // Most jobs behave; a few percent are crashloopers with many
            // resubmits per task (heavy tail).
            let crashloop = rng.gen_bool(0.05);
            let mut job_resub = 0u64;
            for task in 0..tasks {
                let resubmits: u64 = if crashloop {
                    rng.gen_range(3..40)
                } else if rng.gen_bool(0.1) {
                    rng.gen_range(1..3)
                } else {
                    0
                };
                job_resub += resubmits;
                for attempt in 0..=resubmits {
                    let machine = rng.gen_range(1..=5000u32);
                    ts += rng.gen_range(1000..50_000);
                    push_event(&mut out, ts, job_id, task, machine, event::SUBMIT);
                    ts += rng.gen_range(100..5_000);
                    push_event(&mut out, ts, job_id, task, machine, event::SCHEDULE);
                    ts += rng.gen_range(10_000..500_000);
                    let terminal = if attempt < resubmits {
                        // Something went wrong, hence the resubmission.
                        [event::EVICT, event::FAIL, event::KILL, event::LOST][rng.gen_range(0..4)]
                    } else {
                        event::FINISH
                    };
                    push_event(&mut out, ts, job_id, task, machine, terminal);
                }
            }
            truth.resubmissions.insert(job_id, job_resub);
        }
        (out, truth)
    }
}

fn push_event(out: &mut String, ts: u64, job: u64, task: u32, machine: u32, ev: u8) {
    // timestamp,missing_info,job_id,task_index,machine_id,event_type,user,...
    // Job ids step by 137 and 137 is coprime to 131, so with ≥131 jobs
    // every one of the 131 user names appears — the replay driver's
    // "hundreds of users" comes straight from this field.
    out.push_str(&format!("{ts},,{job},{task},{machine},{ev},user{},,,\n", job % 131));
}

/// Parse one event row into `(job_id, task_index, event_type)`.
pub fn parse_event(line: &str) -> Option<(u64, u32, u8)> {
    let ev = parse_event_full(line)?;
    Some((ev.job, ev.task, ev.event))
}

/// One fully parsed task-event row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Trace timestamp, µs.
    pub ts: u64,
    /// Job id.
    pub job: u64,
    /// Task index within the job.
    pub task: u32,
    /// Machine the event refers to (0 when absent).
    pub machine: u32,
    /// Event type code (see [`event`]).
    pub event: u8,
    /// Submitting user name.
    pub user: String,
}

/// Parse one event row completely (timestamp, machine, and user too).
pub fn parse_event_full(line: &str) -> Option<TraceEvent> {
    let mut f = line.split(',');
    let ts = f.next()?.parse().ok()?;
    let _missing = f.next()?;
    let job = f.next()?.parse().ok()?;
    let task = f.next()?.parse().ok()?;
    let machine = f.next()?.parse().unwrap_or(0);
    let event = f.next()?.parse().ok()?;
    let user = f.next()?.to_string();
    Some(TraceEvent { ts, job, task, machine, event, user })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_matches_reparse() {
        let (log, truth) = GoogleTraceGen::new(13).generate();
        // Count SUBMITs per (job, task); resubmissions = submits - 1.
        let mut submits: BTreeMap<(u64, u32), u64> = BTreeMap::new();
        for line in log.lines() {
            let (job, task, ev) = parse_event(line).unwrap();
            if ev == event::SUBMIT {
                *submits.entry((job, task)).or_default() += 1;
            }
        }
        let mut per_job: BTreeMap<u64, u64> = BTreeMap::new();
        for ((job, _), n) in submits {
            *per_job.entry(job).or_default() += n - 1;
        }
        // Jobs with zero resubmissions may be absent from per_job; align.
        for (job, n) in &truth.resubmissions {
            assert_eq!(per_job.get(job).copied().unwrap_or(0), *n, "job {job}");
        }
    }

    #[test]
    fn worst_job_is_a_crashlooper() {
        let (_, truth) = GoogleTraceGen::new(4).with_jobs(500, 30).generate();
        let (_, worst) = truth.worst_job().unwrap();
        let median = {
            let mut v: Vec<u64> = truth.resubmissions.values().copied().collect();
            v.sort_unstable();
            v[v.len() / 2]
        };
        assert!(worst >= 20, "worst {worst}");
        assert!(worst > 4 * median.max(1), "heavy tail: worst {worst}, median {median}");
    }

    #[test]
    fn every_task_lifecycle_terminates() {
        let (log, _) = GoogleTraceGen::new(9).with_jobs(50, 10).generate();
        let mut last_event: BTreeMap<(u64, u32), u8> = BTreeMap::new();
        for line in log.lines() {
            let (job, task, ev) = parse_event(line).unwrap();
            last_event.insert((job, task), ev);
        }
        for (&(job, task), &ev) in &last_event {
            assert_eq!(ev, event::FINISH, "job {job} task {task} ends {ev}");
        }
    }

    #[test]
    fn deterministic() {
        let a = GoogleTraceGen::new(6).generate().0;
        let b = GoogleTraceGen::new(6).generate().0;
        assert_eq!(a, b);
    }

    #[test]
    fn full_parse_recovers_every_field_and_users_span_131_names() {
        let (log, _) = GoogleTraceGen::new(3).with_jobs(200, 5).generate();
        let mut users = std::collections::BTreeSet::new();
        let mut prev_ts = 0u64;
        for line in log.lines() {
            let ev = parse_event_full(line).unwrap();
            assert!(ev.ts >= prev_ts, "timestamps are monotone");
            prev_ts = ev.ts;
            assert!(ev.user.starts_with("user"));
            assert_eq!(ev.user, format!("user{}", ev.job % 131));
            users.insert(ev.user);
            // The narrow parse agrees with the full one.
            assert_eq!(parse_event(line).unwrap(), (ev.job, ev.task, ev.event));
        }
        assert_eq!(users.len(), 131, "137-step job ids cover all 131 residues");
    }
}
