//! Small statistics helpers shared by generators and the survey tables.

/// Sample mean and (population) standard deviation.
///
/// The paper reports `mean ± std` rows; survey literature in this venue
/// conventionally uses the population form, and at n = 29 the difference
/// is below the table's printed precision either way.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Shift and scale `values` so their mean/std match the targets exactly
/// (used to pin synthesized survey responses to the published moments
/// before clipping to the instrument's scale).
pub fn fit_moments(values: &mut [f64], target_mean: f64, target_std: f64) {
    let (mean, std) = mean_std(values);
    let scale = if std > 1e-12 { target_std / std } else { 0.0 };
    for v in values.iter_mut() {
        *v = target_mean + (*v - mean) * scale;
    }
}

/// Clamp every value into `[lo, hi]` (survey scales are bounded).
pub fn clamp_all(values: &mut [f64], lo: f64, hi: f64) {
    for v in values.iter_mut() {
        *v = v.clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
    }

    #[test]
    fn fit_moments_hits_targets() {
        let mut v: Vec<f64> = (0..29).map(|i| i as f64 * 0.37).collect();
        fit_moments(&mut v, 6.6, 1.2);
        let (m, s) = mean_std(&v);
        assert!((m - 6.6).abs() < 1e-9);
        assert!((s - 1.2).abs() < 1e-9);
    }

    #[test]
    fn fit_moments_degenerate_input() {
        let mut v = vec![5.0; 10];
        fit_moments(&mut v, 3.0, 1.0);
        // Zero-variance input can only match the mean.
        let (m, s) = mean_std(&v);
        assert!((m - 3.0).abs() < 1e-9);
        assert!(s.abs() < 1e-9);
    }

    #[test]
    fn clamp_all_bounds() {
        let mut v = vec![-1.0, 5.0, 11.0];
        clamp_all(&mut v, 0.0, 10.0);
        assert_eq!(v, vec![0.0, 5.0, 10.0]);
    }
}
