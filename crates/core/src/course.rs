//! The course module itself, as data: the four offerings of Section II
//! and the Table V learning-outcome mapping — each outcome tied to the
//! artifact in *this repository* that demonstrates it.

use std::fmt;

/// One offering of the Hadoop MapReduce module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Offering {
    /// "Version 1" … "Version 4".
    pub version: u32,
    /// Semester label.
    pub semester: &'static str,
    /// Lectures devoted to the module.
    pub lectures: u32,
    /// In-class labs.
    pub labs: u32,
    /// The platform students ran on.
    pub platform: &'static str,
    /// What went wrong / what was learned.
    pub lesson: &'static str,
}

/// The module's evolution, straight from Section II.
pub const OFFERINGS: [Offering; 4] = [
    Offering {
        version: 1,
        semester: "Fall 2012",
        lectures: 5,
        labs: 2,
        platform: "pseudo-distributed VM + dedicated shared 8-node cluster",
        lesson: "deadline resubmission storms + heap-leaking jobs crashed the shared \
                 cluster; only ~1/3 of students finished assignment 2",
    },
    Offering {
        version: 2,
        semester: "Spring 2013",
        lectures: 5,
        labs: 2,
        platform: "serial MapReduce libraries + per-student myHadoop clusters",
        lesson: "separating the programming API from the infrastructure worked; \
                 path misconfigurations and ghost daemons were the residual pain",
    },
    Offering {
        version: 3,
        semester: "Summer 2013 (REU, 4-hour session)",
        lectures: 2,
        labs: 1,
        platform: "pre-packaged myHadoop scripts, command line only",
        lesson: "detailed tutorial handouts matter; students asked for easier setup \
                 and a slower pace",
    },
    Offering {
        version: 4,
        semester: "Fall 2013",
        lectures: 7,
        labs: 4,
        platform: "fixed directory layout + provided compile/package scripts + myHadoop",
        lesson: "mature: most students had clusters up within the in-class lab; \
                 survey run (Tables I–IV)",
    },
];

/// One Table V row: an ACM/IEEE PDC learning outcome and where this
/// repository demonstrates it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutcomeRow {
    /// Bloom-ish level from the curriculum ("Familiarity", "Usage", ...).
    pub level: &'static str,
    /// Knowledge area.
    pub area: &'static str,
    /// Knowledge unit.
    pub unit: &'static str,
    /// The outcome text (abridged from Table V).
    pub outcome: &'static str,
    /// The artifact in this repository that demonstrates it.
    pub artifact: &'static str,
}

/// Table V, extended with the per-outcome repro artifact.
pub const TABLE5: [OutcomeRow; 6] = [
    OutcomeRow {
        level: "Familiarity",
        area: "Parallel & Distributed Computing",
        unit: "Parallelism Fundamentals",
        outcome: "Distinguish using computational resources for a faster answer from \
                  managing efficient access to a shared resource",
        artifact: "experiments::fig1 (compute scaling vs the shared parallel store)",
    },
    OutcomeRow {
        level: "Familiarity",
        area: "Parallel & Distributed Computing",
        unit: "Parallel Architecture",
        outcome: "Describe the key performance challenges in different memory and \
                  distributed system topologies",
        artifact: "hl-cluster::network (rack uplinks, NIC vs shared-storage pipes)",
    },
    OutcomeRow {
        level: "Usage",
        area: "Parallel & Distributed Computing",
        unit: "Parallel Performance",
        outcome: "Explain performance impacts of data locality",
        artifact: "experiments::fig2 (locality-aware vs FIFO scheduling)",
    },
    OutcomeRow {
        level: "Familiarity",
        area: "Information Management",
        unit: "Distributed Databases",
        outcome: "Explain the techniques used for data fragmentation, replication, and \
                  allocation during the distributed database design process",
        artifact: "hl-dfs::placement + hl-dfs::fsck (block report)",
    },
    OutcomeRow {
        level: "Usage",
        area: "Parallel & Distributed Computing",
        unit: "Parallel Algorithms, Analysis, and Programming",
        outcome: "Decompose a problem via map and reduce operations",
        artifact: "hl-workloads (WordCount, airline, MovieLens, Yahoo, trace jobs)",
    },
    OutcomeRow {
        level: "Assessment",
        area: "Parallel & Distributed Computing",
        unit: "Parallel Performance",
        outcome: "Observe how data distribution/layout can affect an algorithm's \
                  communication costs",
        artifact: "experiments::n1/n2 (combiner & monoid shuffle-traffic ablations)",
    },
];

/// Renderable course summary.
#[derive(Debug, Clone, Default)]
pub struct CourseModule;

impl fmt::Display for CourseModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Hadoop MapReduce module — four offerings:")?;
        for o in &OFFERINGS {
            writeln!(
                f,
                "  v{} ({}): {} lectures, {} labs — {}",
                o.version, o.semester, o.lectures, o.labs, o.platform
            )?;
            writeln!(f, "      lesson: {}", o.lesson)?;
        }
        writeln!(f)?;
        writeln!(f, "Table V — PDC learning outcomes → repository artifacts:")?;
        for r in &TABLE5 {
            writeln!(f, "  [{}] {} / {}", r.level, r.area, r.unit)?;
            writeln!(f, "      outcome:  {}", r.outcome)?;
            writeln!(f, "      artifact: {}", r.artifact)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offerings_match_paper_structure() {
        assert_eq!(OFFERINGS.len(), 4);
        // Fall 2012 and Spring 2013: five lectures; Fall 2013: seven.
        assert_eq!(OFFERINGS[0].lectures, 5);
        assert_eq!(OFFERINGS[3].lectures, 7);
        // Fall 2013 doubled the labs.
        assert_eq!(OFFERINGS[3].labs, 2 * OFFERINGS[1].labs);
        assert!(OFFERINGS[2].semester.contains("REU"));
    }

    #[test]
    fn table5_has_six_rows_with_artifacts() {
        assert_eq!(TABLE5.len(), 6);
        for row in &TABLE5 {
            assert!(!row.artifact.is_empty());
            assert!(["Familiarity", "Usage", "Assessment"].contains(&row.level));
        }
        // Exactly one Information Management row, as in the paper.
        assert_eq!(TABLE5.iter().filter(|r| r.area == "Information Management").count(), 1);
    }

    #[test]
    fn renders() {
        let text = CourseModule.to_string();
        assert!(text.contains("v1 (Fall 2012)"));
        assert!(text.contains("Table V"));
        assert!(text.contains("data locality"));
    }
}
