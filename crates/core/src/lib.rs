//! # hl-core
//!
//! The composition layer of HadoopLab. Everything below it is a substrate;
//! this crate puts the pieces together the way the course did and drives
//! **every table and figure** of *Teaching HDFS/MapReduce Systems Concepts
//! to Undergraduates* (Ngo, Apon & Duffy, 2014):
//!
//! * [`experiments::fig1`] — HPC vs Hadoop architecture (Figure 1);
//! * [`experiments::fig2`] — HDFS⇄MapReduce integration & data locality
//!   (Figure 2);
//! * [`experiments::tables`] — the survey Tables I–IV and the Table V
//!   curriculum map;
//! * [`experiments::n1`] … [`experiments::n8`] — the paper's narrative
//!   performance claims (combiner trade-off, monoid variants, side-file
//!   access, serial vs cluster, staging times, the Version-1 meltdown and
//!   recovery, myHadoop provisioning, assignment-1 runtimes);
//! * [`course`] — the module's structure across its four offerings and the
//!   ACM/IEEE PDC outcome mapping.
//!
//! Each experiment exposes `run(scale)` returning a typed, `Display`able
//! result; the `hl-bench` crate's `repro` binary prints them all, and
//! EXPERIMENTS.md records paper-reported vs measured values.

#![warn(missing_docs)]

pub mod course;
pub mod experiments;

pub use experiments::Scale;
