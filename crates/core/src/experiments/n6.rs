//! N6 — the Version-1 meltdown and recovery drill (Section II-A).
//!
//! The full story, replayed:
//!
//! 1. **Deadline storm** — students resubmit heap-leaking jobs; the leaks
//!    crash TaskTracker *and* DataNode daemons.
//! 2. **Under-replication** — the dead DataNodes stop heartbeating; blocks
//!    fall under target replication; resubmissions keep piling on.
//! 3. **Restart** — the staff restarts the cluster; every DataNode runs
//!    its block-integrity scan before reporting, and the NameNode sits in
//!    safe mode until the block census clears ("it typically took at
//!    least fifteen minutes").
//! 4. **Corruption** — if a block lost *every* replica, safe mode never
//!    exits on its own and job submission stays refused: "a corrupted
//!    Hadoop cluster that stopped all the new jobs".

use std::fmt;

use hl_cluster::node::ClusterSpec;
use hl_common::prelude::*;
use hl_common::units::ByteSize;
use hl_datagen::corpus::CorpusGen;
use hl_mapreduce::engine::MrCluster;
use hl_workloads::wordcount;

use super::Scale;

/// The drill's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct N6Result {
    /// Jobs submitted during the storm (including resubmissions).
    pub storm_submissions: u32,
    /// Jobs that failed outright.
    pub storm_failures: u32,
    /// Task attempts that died when their daemon OOM-crashed under them
    /// (the job survives via retry on another tracker plus write-pipeline
    /// recovery, but the attempt is lost work).
    pub storm_task_deaths: u32,
    /// Daemons (TaskTracker+DataNode pairs) dead at the end of the storm.
    pub daemons_crashed: usize,
    /// Under-replicated blocks observed after the heartbeat timeout.
    pub under_replicated_peak: usize,
    /// Blocks restored to full replication by the monitor before restart.
    pub under_replicated_after_recovery: usize,
    /// Per-node stored bytes at restart (drives the integrity-scan time).
    pub bytes_per_node: u64,
    /// Time from restart to safe-mode exit.
    pub restart_to_safemode_exit: SimDuration,
    /// After deliberately losing every replica of one block: does the
    /// cluster refuse new jobs?
    pub corrupted_cluster_refuses_jobs: bool,
}

/// Run the drill.
pub fn run(scale: Scale) -> N6Result {
    let mut config = Configuration::with_defaults();
    config.set(
        hl_common::config::keys::DFS_BLOCK_SIZE,
        scale.pick(256 * ByteSize::KIB, 64 * ByteSize::MIB),
    );
    config.set(hl_common::config::keys::MAPRED_MAP_SLOTS, 4);
    let mut c = MrCluster::new(ClusterSpec::course_hadoop(8), config).unwrap();

    // Course data on the cluster: a small real corpus to run jobs against,
    // plus the bulk datasets (synthetic payloads) that make the restart
    // scan expensive — Google trace + Airline + Yahoo, 3x replicated.
    c.dfs.namenode.mkdirs("/in").unwrap();
    c.dfs.namenode.mkdirs("/data").unwrap();
    let (text, _) = CorpusGen::new(6).with_vocab(300).generate(scale.pick(20_000, 200_000));
    let t = c.now;
    let put = c.dfs.put(&mut c.net, t, "/in/corpus.txt", text.as_bytes(), None).unwrap();
    c.now = put.completed_at;
    let bulk: u64 = scale.pick(512 * ByteSize::MIB, (171 + 12 + 10) * ByteSize::GIB);
    let t = c.now;
    let put = c.dfs.put_synthetic(&mut c.net, t, "/data/bulk", bulk, None).unwrap();
    c.now = put.completed_at;

    // ---- Phase 1: the deadline storm. Leaky jobs, instant resubmission,
    // until at least 3 of 8 nodes have lost their daemons. A daemon that
    // OOM-crashes takes the task attempt it was hosting with it; the job
    // itself usually survives — the attempt retries on another tracker
    // and the write pipeline recovers around the dead DataNode — so the
    // lost work shows up as extra attempts, not (yet) as failed jobs.
    let mut submissions = 0;
    let mut failures = 0;
    let mut task_deaths = 0;
    while c.live_tracker_nodes().len() > 5 && submissions < 60 {
        submissions += 1;
        let job = wordcount::wordcount("/in/corpus.txt", &format!("/out/attempt{submissions}"), 2);
        let mut job = job;
        job.conf.leaks_memory = true;
        job.conf.speculative = false;
        match c.run_job(&job) {
            Ok(report) => {
                task_deaths += report.tasks.iter().map(|t| t.attempts - 1).sum::<u32>();
            }
            Err(_) => failures += 1,
        }
    }
    let daemons_crashed = 8 - c.live_tracker_nodes().len();

    // ---- Phase 2: heartbeat timeout exposes under-replication; the
    // replication monitor starts copying to the survivors.
    let dead_after = SimDuration::from_secs(3 * 200) + SimDuration::from_mins(1);
    let from = c.now;
    c.dfs.run_protocol(&mut c.net, from, from + dead_after);
    c.now = from + dead_after;
    let under_replicated_peak = c.dfs.namenode.under_replicated().len() + count_pending(&c);
    // Let the monitor work for a while (paper: students kept resubmitting
    // instead — we measure the clean path here; the stuck path is Phase 4).
    let recover_window = SimDuration::from_mins(scale.pick(15, 120));
    let from = c.now;
    c.dfs.run_protocol(&mut c.net, from, from + recover_window);
    c.now = from + recover_window;
    let under_replicated_after_recovery = c.dfs.namenode.under_replicated().len();

    // ---- Phase 3: full cluster restart; DataNodes scan before reporting.
    c.restart_dead_trackers();
    let bytes_per_node = c
        .dfs
        .datanode_ids()
        .iter()
        .map(|&n| c.dfs.datanode(n).unwrap().used_bytes())
        .max()
        .unwrap_or(0);
    let t = c.now;
    let restart = c.dfs.restart_all(&mut c.net, t).expect("all blocks held somewhere");
    let restart_to_safemode_exit = restart.completed_at.since(t);
    c.now = restart.completed_at;

    // ---- Phase 4: corruption. With thousands of blocks, losing a single
    // block still clears the 99.9% safe-mode threshold (exactly as in real
    // HDFS) — the paper's terminal state needs *bulk* loss. Half the
    // cluster's disks get wiped (the scheduler reimaging scratch, in course
    // terms): ~7% of blocks lose every replica and safe mode pins.
    for n in 0..4u32 {
        c.dfs.datanode_mut(NodeId(n)).unwrap().wipe();
    }
    let t = c.now;
    let stuck = c.dfs.restart_all(&mut c.net, t);
    let corrupted_cluster_refuses_jobs = stuck.is_err()
        && matches!(
            c.run_job(&wordcount::wordcount("/in/corpus.txt", "/out/after", 1)),
            Err(HlError::SafeMode(_))
        );

    N6Result {
        storm_submissions: submissions,
        storm_failures: failures,
        storm_task_deaths: task_deaths,
        daemons_crashed,
        under_replicated_peak,
        under_replicated_after_recovery,
        bytes_per_node,
        restart_to_safemode_exit,
        corrupted_cluster_refuses_jobs,
    }
}

fn count_pending(c: &MrCluster) -> usize {
    // Under-replicated blocks already queued for copy are not in
    // `under_replicated()`; count them via missing replicas instead.
    c.dfs.namenode.missing_blocks().len()
}

impl fmt::Display for N6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "N6 — the Version-1 meltdown drill (8-node shared cluster)")?;
        writeln!(
            f,
            "  storm: {} submissions, {} failed jobs, {} task attempts lost, \
             {} node daemons crashed (OOM)",
            self.storm_submissions,
            self.storm_failures,
            self.storm_task_deaths,
            self.daemons_crashed
        )?;
        writeln!(
            f,
            "  under-replicated blocks: {} at heartbeat timeout -> {} after the \
             replication monitor caught up",
            self.under_replicated_peak, self.under_replicated_after_recovery
        )?;
        writeln!(
            f,
            "  restart: {} per node to integrity-scan -> safe mode exited after {}",
            ByteSize::display(self.bytes_per_node),
            self.restart_to_safemode_exit
        )?;
        writeln!(
            f,
            "  corrupted cluster (blocks lost every replica) refuses new jobs: {}",
            self.corrupted_cluster_refuses_jobs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_whole_story_replays() {
        let r = run(Scale::Quick);
        assert!(r.daemons_crashed >= 3, "storm must kill daemons: {}", r.daemons_crashed);
        assert!(
            r.storm_task_deaths >= r.daemons_crashed as u32,
            "every OOM crash takes the hosted attempt with it: {} deaths, {} crashes",
            r.storm_task_deaths,
            r.daemons_crashed
        );
        assert!(r.under_replicated_peak > 0, "dead DataNodes must expose under-replication");
        assert!(
            r.under_replicated_after_recovery < r.under_replicated_peak.max(1),
            "the monitor must make progress: {} -> {}",
            r.under_replicated_peak,
            r.under_replicated_after_recovery
        );
        assert!(r.restart_to_safemode_exit >= SimDuration::from_secs(30), "extension floor");
        assert!(r.corrupted_cluster_refuses_jobs, "the paper's end state");
    }

    #[test]
    fn renders() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("N6"));
        assert!(text.contains("safe mode exited"));
        assert!(text.contains("refuses new jobs: true"));
    }
}
