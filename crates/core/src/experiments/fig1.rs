//! Figure 1 — compute/storage placement: HPC cluster vs Hadoop cluster.
//!
//! The paper's Figure 1 is an architecture diagram; the *claim* behind it
//! (Section I) is that "the typical computation/storage cluster
//! architecture of supercomputing clusters sometimes fails to support
//! data-intensive computing". We make that quantitative: a scan-heavy job
//! reads a dataset striped across N nodes, once on Figure 1(b)'s
//! local-disk layout and once through Figure 1(a)'s shared parallel store.
//! Local disks scale linearly with N; the shared store saturates at its
//! aggregate bandwidth, so past the crossover the HPC layout stops
//! scaling.

use std::fmt;

use hl_cluster::network::ClusterNet;
use hl_cluster::node::ClusterSpec;
use hl_common::prelude::*;
use hl_common::units::ByteSize;

use super::Scale;

/// One cluster size's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Point {
    /// Nodes in the cluster.
    pub nodes: usize,
    /// Scan time on the Hadoop (local disk) layout.
    pub hadoop_time: SimDuration,
    /// Scan time on the HPC (shared parallel FS) layout.
    pub hpc_time: SimDuration,
    /// Bytes that crossed the network, Hadoop layout.
    pub hadoop_remote_bytes: u64,
    /// Bytes served by the shared store, HPC layout (== dataset).
    pub hpc_storage_bytes: u64,
    /// Utilization of the shared-store pipe during the HPC scan.
    pub hpc_storage_utilization: f64,
}

/// The whole series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// Dataset size scanned at every point.
    pub dataset_bytes: u64,
    /// Aggregate bandwidth of the modeled parallel store.
    pub storage_aggregate_bw: u64,
    /// Per-size measurements.
    pub points: Vec<Fig1Point>,
}

impl Fig1Result {
    /// The smallest node count where the Hadoop layout is at least 2×
    /// faster (the "architecture matters" crossover).
    pub fn crossover_nodes(&self) -> Option<usize> {
        self.points
            .iter()
            .find(|p| p.hpc_time.as_micros() >= 2 * p.hadoop_time.as_micros().max(1))
            .map(|p| p.nodes)
    }
}

/// Run the scan on both layouts across node counts.
pub fn run(scale: Scale) -> Fig1Result {
    let dataset = scale.pick(8 * ByteSize::GIB, 171 * ByteSize::GIB);
    // A mid-size parallel store: ~1.2 GB/s aggregate (2013-era Lustre slice
    // for a department allocation).
    let storage_bw = 1200 * ByteSize::MIB;
    let sizes = [2usize, 4, 8, 16, 32, 64];

    let points = sizes
        .iter()
        .map(|&n| {
            let share = dataset / n as u64;

            // Hadoop layout: every node scans its share from local disk.
            let hadoop_spec = ClusterSpec::hadoop_racked(n, (n / 16).max(1));
            let mut hadoop_net = ClusterNet::new(&hadoop_spec);
            let mut hadoop_end = SimTime::ZERO;
            for node in 0..n as u32 {
                let c = hadoop_net.read_local_disk(SimTime::ZERO, NodeId(node), share);
                hadoop_end = hadoop_end.max(c.end);
            }

            // HPC layout: every node pulls its share through the shared
            // parallel store.
            let hpc_spec = ClusterSpec::hpc_shared_storage(n, storage_bw);
            let mut hpc_net = ClusterNet::new(&hpc_spec);
            let mut hpc_end = SimTime::ZERO;
            for node in 0..n as u32 {
                let c = hpc_net
                    .read_shared_storage(SimTime::ZERO, NodeId(node), share)
                    .expect("hpc_shared_storage spec always provisions the shared store");
                hpc_end = hpc_end.max(c.end);
            }

            Fig1Point {
                nodes: n,
                hadoop_time: hadoop_end.since(SimTime::ZERO),
                hpc_time: hpc_end.since(SimTime::ZERO),
                hadoop_remote_bytes: hadoop_net.remote_bytes(),
                hpc_storage_bytes: hpc_net.shared_storage_bytes(),
                hpc_storage_utilization: hpc_net.shared_storage_utilization(hpc_end),
            }
        })
        .collect();

    Fig1Result { dataset_bytes: dataset, storage_aggregate_bw: storage_bw, points }
}

impl fmt::Display for Fig1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1 — scan of {} | parallel store {}ps aggregate",
            ByteSize::display(self.dataset_bytes),
            ByteSize::display(self.storage_aggregate_bw),
        )?;
        writeln!(
            f,
            "  {:>5}  {:>14}  {:>14}  {:>9}  {:>12}  {:>9}",
            "nodes", "hadoop(local)", "hpc(shared)", "speedup", "net bytes", "store-util"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "  {:>5}  {:>14}  {:>14}  {:>8.1}x  {:>12}  {:>8.0}%",
                p.nodes,
                p.hadoop_time.to_string(),
                p.hpc_time.to_string(),
                p.hpc_time.as_secs_f64() / p.hadoop_time.as_secs_f64().max(1e-9),
                ByteSize::display(p.hadoop_remote_bytes).to_string(),
                p.hpc_storage_utilization * 100.0,
            )?;
        }
        match self.crossover_nodes() {
            Some(n) => writeln!(f, "  -> local-disk layout wins >=2x from {n} nodes up"),
            None => writeln!(f, "  -> no crossover in range"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadoop_scales_hpc_saturates() {
        let r = run(Scale::Quick);
        assert_eq!(r.points.len(), 6);
        // Hadoop time keeps dropping with node count.
        for w in r.points.windows(2) {
            assert!(w[1].hadoop_time < w[0].hadoop_time, "{:?}", w);
        }
        // HPC time floors at dataset / storage_bw.
        let floor = SimDuration::for_transfer(r.dataset_bytes, r.storage_aggregate_bw);
        let last = r.points.last().unwrap();
        assert!(last.hpc_time >= floor);
        assert!(last.hpc_time < floor * 2);
        // At 64 nodes the gap is large.
        assert!(last.hpc_time.as_micros() > 5 * last.hadoop_time.as_micros());
    }

    #[test]
    fn locality_means_zero_network_bytes() {
        let r = run(Scale::Quick);
        for p in &r.points {
            assert_eq!(p.hadoop_remote_bytes, 0, "data-local scan moves nothing");
            assert_eq!(p.hpc_storage_bytes, r.dataset_bytes);
        }
    }

    #[test]
    fn crossover_exists_and_store_is_hot() {
        let r = run(Scale::Quick);
        let x = r.crossover_nodes().expect("crossover");
        assert!(x <= 32, "crossover at {x}");
        // When saturated, the shared store runs near 100% busy.
        assert!(r.points.last().unwrap().hpc_storage_utilization > 0.7);
    }

    #[test]
    fn renders() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("Figure 1"));
        assert!(text.contains("nodes"));
        assert!(text.contains("wins >=2x"));
    }
}
