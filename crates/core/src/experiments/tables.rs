//! Tables I–IV (survey) and Table V (curriculum map).
//!
//! The harness *recomputes* every table from the synthesized per-student
//! forms (see `hl_datagen::survey` for the substitution rationale) and
//! prints measured-vs-paper side by side.

use std::fmt;

use hl_datagen::survey::{self, paper, SurveyResponse};

use super::Scale;

/// One recomputed `mean ± std` cell with its paper target.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Row label.
    pub label: &'static str,
    /// Recomputed (mean, std).
    pub measured: (f64, f64),
    /// Published (mean, std).
    pub paper: (f64, f64),
}

impl Cell {
    /// Absolute error of the mean.
    pub fn mean_error(&self) -> f64 {
        (self.measured.0 - self.paper.0).abs()
    }
}

/// All four survey tables, recomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyTables {
    /// Table I: (before, after) per topic.
    pub table1: Vec<(Cell, Cell)>,
    /// Table II.
    pub table2: Vec<Cell>,
    /// Table III.
    pub table3: Vec<Cell>,
    /// Table IV: (year, measured count, paper count).
    pub table4: Vec<(&'static str, usize, u32)>,
    /// Number of forms aggregated.
    pub respondents: usize,
}

/// Recompute Tables I–IV from synthesized forms. `Scale` is accepted for
/// interface uniformity; the survey is always its real size (n = 29).
pub fn run(_scale: Scale) -> SurveyTables {
    let forms: Vec<SurveyResponse> = survey::generate(2014);

    let table1 = paper::TABLE1
        .iter()
        .enumerate()
        .map(|(k, &(topic, bm, bs, am, as_))| {
            (
                Cell {
                    label: topic,
                    measured: survey::aggregate(&forms, |r| r.proficiency_before[k]),
                    paper: (bm, bs),
                },
                Cell {
                    label: topic,
                    measured: survey::aggregate(&forms, |r| r.proficiency_after[k]),
                    paper: (am, as_),
                },
            )
        })
        .collect();

    let table2 = paper::TABLE2
        .iter()
        .enumerate()
        .map(|(k, &(what, m, s))| Cell {
            label: what,
            measured: survey::aggregate(&forms, |r| r.time_taken[k]),
            paper: (m, s),
        })
        .collect();

    let table3 = paper::TABLE3
        .iter()
        .enumerate()
        .map(|(k, &(what, m, s))| Cell {
            label: what,
            measured: survey::aggregate(&forms, |r| r.usefulness[k]),
            paper: (m, s),
        })
        .collect();

    let counts = survey::year_counts(&forms);
    let table4 = paper::TABLE4
        .iter()
        .zip(counts.iter())
        .map(|(&(label, want), &(_, got))| (label, got, want))
        .collect();

    SurveyTables { table1, table2, table3, table4, respondents: forms.len() }
}

fn fmt_cell(c: &Cell) -> String {
    format!("{:.2}±{:.2} (paper {:.2}±{:.2})", c.measured.0, c.measured.1, c.paper.0, c.paper.1)
}

impl fmt::Display for SurveyTables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Tables I–IV recomputed from {} synthesized survey forms (of {} enrolled)",
            self.respondents,
            paper::ENROLLED
        )?;
        writeln!(f, "Table I — proficiency (0–10), before -> after:")?;
        for (b, a) in &self.table1 {
            writeln!(f, "  {:<18} {}  ->  {}", b.label, fmt_cell(b), fmt_cell(a))?;
        }
        writeln!(f, "Table II — time to complete (1–4 scale):")?;
        for c in &self.table2 {
            writeln!(f, "  {:<24} {}", c.label, fmt_cell(c))?;
        }
        writeln!(f, "Table III — helpfulness (1–4 scale):")?;
        for c in &self.table3 {
            writeln!(f, "  {:<24} {}", c.label, fmt_cell(c))?;
        }
        writeln!(f, "Table IV — lowest level to teach Hadoop/MapReduce:")?;
        for (label, got, want) in &self.table4 {
            writeln!(f, "  {label:<12} {got:>2} (paper {want})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_is_close_to_paper() {
        let t = run(Scale::Quick);
        assert_eq!(t.respondents, 29);
        for (b, a) in &t.table1 {
            assert!(b.mean_error() < 0.05, "{} before: {:?}", b.label, b);
            assert!(a.mean_error() < 0.05, "{} after: {:?}", a.label, a);
        }
        for c in t.table2.iter().chain(&t.table3) {
            assert!(c.mean_error() < 0.05, "{}: {:?}", c.label, c);
        }
    }

    #[test]
    fn table4_counts_are_exact() {
        let t = run(Scale::Quick);
        for (label, got, want) in &t.table4 {
            assert_eq!(*got, *want as usize, "{label}");
        }
        assert_eq!(t.table4.iter().map(|(_, g, _)| g).sum::<usize>(), 29);
    }

    #[test]
    fn proficiency_improves_across_every_topic() {
        // The pedagogical headline: after > before, everywhere.
        let t = run(Scale::Quick);
        for (b, a) in &t.table1 {
            assert!(a.measured.0 > b.measured.0, "{}", b.label);
        }
    }

    #[test]
    fn renders_side_by_side() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("Table I"));
        assert!(text.contains("Hadoop MapReduce"));
        assert!(text.contains("(paper 14)"));
        assert!(text.contains("In-class lab"));
    }
}
