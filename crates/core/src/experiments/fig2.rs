//! Figure 2 — the HDFS⇄MapReduce integration, made observable.
//!
//! The figure's three arrows become three measurements on a real job run:
//!
//! 1. *"DataNodes report block information to the NameNode"* /
//!    *"Block metadata lives in memory"* — the fsck block→location map and
//!    the NameNode's resident metadata bytes;
//! 2. *"JobTracker ... receives block-level information"* — the input
//!    splits carry replica locations;
//! 3. *"JobTracker assigns work ... based on block location information"*
//!    — ablated: the same WordCount with locality-aware vs FIFO
//!    assignment, comparing the task-locality mix, network traffic, and
//!    job time.

use std::fmt;

use hl_cluster::node::ClusterSpec;
use hl_common::counters::FileSystemCounter;
use hl_common::prelude::*;
use hl_common::units::ByteSize;
use hl_datagen::corpus::CorpusGen;
use hl_mapreduce::engine::MrCluster;
use hl_workloads::wordcount;

use super::Scale;

/// One scheduling arm's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulingArm {
    /// "locality-aware" or "fifo".
    pub name: &'static str,
    /// (data-local, rack-local, off-rack) map task counts.
    pub locality: (usize, usize, usize),
    /// Bytes read across the network for map input.
    pub remote_input_bytes: u64,
    /// Job elapsed virtual time.
    pub elapsed: SimDuration,
}

/// The full Figure 2 experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Result {
    /// Input size staged.
    pub input_bytes: u64,
    /// Blocks × replicas rows from fsck (first few shown in Display).
    pub block_map: Vec<(u64, Vec<String>)>,
    /// NameNode RAM held by metadata.
    pub metadata_ram: u64,
    /// Locality-aware vs FIFO.
    pub arms: Vec<SchedulingArm>,
}

fn run_arm(
    scale: Scale,
    locality_aware: bool,
) -> (SchedulingArm, Vec<(u64, Vec<String>)>, u64, u64) {
    let mut config = Configuration::with_defaults();
    // Block size scaled with the corpus so the job always has a few dozen
    // map tasks (the real course data was many 64 MB blocks; our physical
    // sample is smaller).
    config.set(
        hl_common::config::keys::DFS_BLOCK_SIZE,
        scale.pick(16 * ByteSize::KIB, 512 * ByteSize::KIB),
    );
    config.set(hl_common::config::keys::MAPRED_MAP_SLOTS, 2);
    let mut cluster = MrCluster::new(ClusterSpec::course_hadoop(8), config).unwrap();
    cluster.locality_aware = locality_aware;

    let words = scale.pick(40_000, 2_000_000);
    let (text, _) = CorpusGen::new(2014).with_vocab(500).generate(words);
    let input_bytes = text.len() as u64;
    cluster.dfs.namenode.mkdirs("/in").unwrap();
    let t = cluster.now;
    let put =
        cluster.dfs.put(&mut cluster.net, t, "/in/corpus.txt", text.as_bytes(), None).unwrap();
    cluster.now = put.completed_at;
    cluster.net.reset_accounting();

    let job = wordcount::wordcount("/in/corpus.txt", "/out/wc", 4);
    let report = cluster.run_job(&job).unwrap();

    let fsck = hl_dfs::fsck::fsck(&cluster.dfs, "/in").unwrap();
    let block_map: Vec<(u64, Vec<String>)> = fsck
        .files
        .iter()
        .flat_map(|fh| fh.detail.iter().map(|(b, _, _, hs)| (*b, hs.clone())))
        .collect();

    (
        SchedulingArm {
            name: if locality_aware { "locality-aware" } else { "fifo" },
            locality: report.locality_histogram(),
            remote_input_bytes: report.counters.fs(FileSystemCounter::RemoteBytesRead),
            elapsed: report.elapsed(),
        },
        block_map,
        fsck.metadata_ram,
        input_bytes,
    )
}

/// Run both arms.
pub fn run(scale: Scale) -> Fig2Result {
    let (aware, block_map, metadata_ram, input_bytes) = run_arm(scale, true);
    let (fifo, _, _, _) = run_arm(scale, false);
    Fig2Result { input_bytes, block_map, metadata_ram, arms: vec![aware, fifo] }
}

impl fmt::Display for Fig2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2 — HDFS/MapReduce integration on the 8-node course cluster \
             ({} input, {} blocks)",
            ByteSize::display(self.input_bytes),
            self.block_map.len()
        )?;
        writeln!(
            f,
            "  NameNode metadata resident in RAM: {}",
            ByteSize::display(self.metadata_ram)
        )?;
        writeln!(f, "  block -> DataNode map (first 4 of {}):", self.block_map.len())?;
        for (b, holders) in self.block_map.iter().take(4) {
            writeln!(f, "    blk_{b} -> [{}]", holders.join(", "))?;
        }
        writeln!(
            f,
            "  {:>16}  {:>10}  {:>10}  {:>9}  {:>13}  {:>10}",
            "scheduler", "data-local", "rack-local", "off-rack", "remote input", "job time"
        )?;
        for a in &self.arms {
            writeln!(
                f,
                "  {:>16}  {:>10}  {:>10}  {:>9}  {:>13}  {:>10}",
                a.name,
                a.locality.0,
                a.locality.1,
                a.locality.2,
                ByteSize::display(a.remote_input_bytes).to_string(),
                a.elapsed.to_string(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_aware_dominates_fifo() {
        let r = run(Scale::Quick);
        let aware = &r.arms[0];
        let fifo = &r.arms[1];
        let maps = aware.locality.0 + aware.locality.1 + aware.locality.2;
        assert!(maps >= 10, "need a real task population, got {maps}");
        // Locality-aware: nearly everything data-local.
        assert!(aware.locality.0 * 10 >= maps * 9, "aware: {:?} of {maps}", aware.locality);
        // FIFO: a clear chunk is remote (3 of 8 nodes hold any block).
        assert!(fifo.locality.0 < maps * 3 / 4, "fifo should lose locality: {:?}", fifo.locality);
        assert!(fifo.remote_input_bytes > aware.remote_input_bytes);
        assert!(fifo.elapsed >= aware.elapsed);
    }

    #[test]
    fn metadata_and_block_map_are_reported() {
        let r = run(Scale::Quick);
        assert!(r.metadata_ram > 0);
        assert!(!r.block_map.is_empty());
        for (_, holders) in &r.block_map {
            assert_eq!(holders.len(), 3, "3x replication visible in the map");
        }
    }

    #[test]
    fn renders() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("Figure 2"));
        assert!(text.contains("locality-aware"));
        assert!(text.contains("fifo"));
        assert!(text.contains("blk_"));
    }
}
