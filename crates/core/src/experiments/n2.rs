//! N2 — the three airline-delay implementations (Section III-A).
//!
//! "Three examples of code are provided which implement different
//! algorithmic choices described in [Monoidify!] ... the usage of
//! MapReduce's combiner, the customized MapReduce's Value classes, and the
//! trade-off in memory and network traffic due to different
//! implementations of the combiner."

use std::fmt;

use hl_cluster::node::ClusterSpec;
use hl_common::counters::TaskCounter;
use hl_common::prelude::*;
use hl_common::units::ByteSize;
use hl_datagen::airline::AirlineGen;
use hl_mapreduce::engine::MrCluster;
use hl_workloads::airline;

use super::Scale;

/// One variant's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct MonoidRow {
    /// v1/v2/v3 label.
    pub name: &'static str,
    /// Records crossing the map→reduce boundary.
    pub shuffle_bytes: u64,
    /// Map output records (pre-combine).
    pub map_output_records: u64,
    /// Peak map-side sort-buffer bytes (the memory axis).
    pub peak_mapper_buffer: usize,
    /// Job time.
    pub elapsed: SimDuration,
    /// Answer spot-check: average delay of carrier "HA".
    pub ha_avg: f64,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct N2Result {
    /// Rows flown.
    pub flights: usize,
    /// v1, v2, v3.
    pub rows: Vec<MonoidRow>,
    /// Ground-truth HA average.
    pub truth_ha_avg: f64,
}

/// Run all three variants on identical data.
pub fn run(scale: Scale) -> N2Result {
    let flights = scale.pick(40_000, 2_000_000);
    let (csv, truth) = AirlineGen::new(2008).generate(flights);
    let truth_ha_avg = truth.avg_delay("HA").unwrap();

    let mut rows = Vec::new();
    for (name, which) in [("v1-plain", 0), ("v2-combiner", 1), ("v3-in-mapper", 2)] {
        let mut config = Configuration::with_defaults();
        config.set(
            hl_common::config::keys::DFS_BLOCK_SIZE,
            scale.pick(256 * ByteSize::KIB, 64 * ByteSize::MIB),
        );
        let mut c = MrCluster::new(ClusterSpec::course_hadoop(8), config).unwrap();
        c.dfs.namenode.mkdirs("/in").unwrap();
        let t = c.now;
        let put = c.dfs.put(&mut c.net, t, "/in/2008.csv", csv.as_bytes(), None).unwrap();
        c.now = put.completed_at;
        let report = match which {
            0 => c.run_job(&airline::avg_delay_plain("/in/2008.csv", "/out")).unwrap(),
            1 => c.run_job(&airline::avg_delay_combiner("/in/2008.csv", "/out")).unwrap(),
            _ => c.run_job(&airline::avg_delay_inmapper("/in/2008.csv", "/out")).unwrap(),
        };
        let output = c.read_output("/out").unwrap();
        let parsed = airline::parse_output(&output.lines().map(str::to_string).collect::<Vec<_>>());
        rows.push(MonoidRow {
            name,
            shuffle_bytes: report.shuffle_bytes(),
            map_output_records: report.counters.task(TaskCounter::MapOutputRecords),
            peak_mapper_buffer: report.peak_mapper_buffer,
            elapsed: report.elapsed(),
            ha_avg: parsed["HA"],
        });
    }
    N2Result { flights, rows, truth_ha_avg }
}

impl fmt::Display for N2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "N2 — airline average delay, three monoid variants, {} flights", self.flights)?;
        writeln!(
            f,
            "  {:>14}  {:>11}  {:>12}  {:>12}  {:>9}  {:>8}",
            "variant", "shuffle", "map out recs", "peak buffer", "job time", "HA avg"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>14}  {:>11}  {:>12}  {:>12}  {:>9}  {:>8.2}",
                r.name,
                ByteSize::display(r.shuffle_bytes).to_string(),
                r.map_output_records,
                ByteSize::display(r.peak_mapper_buffer as u64).to_string(),
                r.elapsed.to_string(),
                r.ha_avg,
            )?;
        }
        writeln!(f, "  (ground truth HA avg: {:.2})", self.truth_ha_avg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_on_the_answer() {
        let r = run(Scale::Quick);
        for row in &r.rows {
            assert!(
                (row.ha_avg - r.truth_ha_avg).abs() < 0.01,
                "{}: {} vs truth {}",
                row.name,
                row.ha_avg,
                r.truth_ha_avg
            );
        }
    }

    #[test]
    fn traffic_ranking_v1_worst_v3_best() {
        let r = run(Scale::Quick);
        let (v1, v2, v3) = (&r.rows[0], &r.rows[1], &r.rows[2]);
        assert!(
            v1.shuffle_bytes > 8 * v2.shuffle_bytes,
            "{} vs {}",
            v1.shuffle_bytes,
            v2.shuffle_bytes
        );
        assert!(v2.shuffle_bytes >= v3.shuffle_bytes);
        // v3 emits ~carriers-per-task records; v1 emits per flight.
        assert_eq!(v1.map_output_records, r.flights as u64);
        assert!(v3.map_output_records < 2_000);
        // Memory axis: v3's sort buffer stays tiny (state lives in the
        // mapper's own table instead).
        assert!(v3.peak_mapper_buffer < v1.peak_mapper_buffer / 4);
    }

    #[test]
    fn renders() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("N2"));
        assert!(text.contains("v2-combiner"));
        assert!(text.contains("ground truth"));
    }
}
