//! N5 — dataset staging times (Section III-C).
//!
//! "As the size of the Google Trace data is relatively large (171GB), it
//! can take over an hour for students to stage the data into the temporary
//! Hadoop cluster. ... [the Yahoo dataset] is small enough so that it
//! takes less than five minutes to load the data into the HDFS file
//! system."
//!
//! The staging pipeline: a single `copyFromLocal` stream pulls the dataset
//! from the student's scratch space on the campus parallel store (one
//! stream — calibrated ~45 MiB/s on the 2013 machine) while HDFS absorbs
//! it through the pipeline writer. The slower of the two paths bounds the
//! staging time.

use std::fmt;

use hl_cluster::node::ClusterSpec;
use hl_cluster::resource::PipeResource;
use hl_common::prelude::*;
use hl_common::units::ByteSize;
use hl_dfs::client::Dfs;

use super::Scale;

/// Single-stream bandwidth out of the campus parallel store (calibrated:
/// one `hadoop fs -copyFromLocal` over NFS-mounted scratch, 2013).
pub const SOURCE_STREAM_BW: u64 = 45 * ByteSize::MIB;

/// One dataset's staging measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct StagingRow {
    /// Dataset name.
    pub name: &'static str,
    /// Modeled size.
    pub bytes: u64,
    /// Time to read the source stream.
    pub source_time: SimDuration,
    /// Time for HDFS to absorb (pipeline writes, 3× replication).
    pub hdfs_time: SimDuration,
    /// Overall staging time (streams overlap; the slower path bounds).
    pub total: SimDuration,
    /// Blocks created.
    pub blocks: usize,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct N5Result {
    /// Per-dataset rows.
    pub rows: Vec<StagingRow>,
}

/// Stage all four course datasets (virtual sizes are the published ones at
/// any scale — synthetic payloads make this cheap).
pub fn run(_scale: Scale) -> N5Result {
    let datasets: [(&str, u64); 4] = [
        ("MovieLens (assignment 1)", 250 * ByteSize::MIB),
        ("Yahoo! Music (assignment 2)", 10 * ByteSize::GIB),
        ("Airline on-time (labs)", 12 * ByteSize::GIB),
        ("Google trace (project)", 171 * ByteSize::GIB),
    ];
    let rows = datasets
        .iter()
        .map(|&(name, bytes)| {
            let spec = ClusterSpec::course_hadoop(8);
            let config = Configuration::with_defaults();
            let mut dfs = Dfs::format(&config, &spec).unwrap();
            let mut net = hl_cluster::network::ClusterNet::new(&spec);
            dfs.namenode.mkdirs("/data").unwrap();
            let put = dfs.put_synthetic(&mut net, SimTime::ZERO, "/data/set", bytes, None).unwrap();
            let hdfs_time = put.completed_at.since(SimTime::ZERO);
            let mut source = PipeResource::new("campus-scratch", SOURCE_STREAM_BW);
            let source_time = source.charge(SimTime::ZERO, bytes).end.since(SimTime::ZERO);
            StagingRow {
                name,
                bytes,
                source_time,
                hdfs_time,
                total: source_time.max(hdfs_time),
                blocks: dfs.file_blocks("/data/set").unwrap().len(),
            }
        })
        .collect();
    N5Result { rows }
}

impl fmt::Display for N5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "N5 — staging into the temporary 8-node Hadoop cluster \
             (single source stream at {}ps)",
            ByteSize::display(SOURCE_STREAM_BW)
        )?;
        writeln!(
            f,
            "  {:<28}  {:>10}  {:>8}  {:>11}  {:>11}  {:>11}",
            "dataset", "size", "blocks", "source", "hdfs", "staging"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<28}  {:>10}  {:>8}  {:>11}  {:>11}  {:>11}",
                r.name,
                ByteSize::display(r.bytes).to_string(),
                r.blocks,
                r.source_time.to_string(),
                r.hdfs_time.to_string(),
                r.total.to_string(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_times_match_paper_claims() {
        let r = run(Scale::Quick);
        let by_name = |needle: &str| r.rows.iter().find(|row| row.name.contains(needle)).unwrap();
        // "less than five minutes" for the 10 GB Yahoo set.
        assert!(by_name("Yahoo").total < SimDuration::from_mins(5), "{}", by_name("Yahoo").total);
        // "over an hour" for the 171 GB Google trace.
        assert!(
            by_name("Google").total > SimDuration::from_hours(1),
            "{}",
            by_name("Google").total
        );
        // MovieLens is nearly instant.
        assert!(by_name("MovieLens").total < SimDuration::from_mins(1));
        // The airline set sits between Yahoo and Google.
        assert!(by_name("Airline").total > by_name("Yahoo").total);
        assert!(by_name("Airline").total < by_name("Google").total);
    }

    #[test]
    fn block_counts_follow_64mb_blocks() {
        let r = run(Scale::Quick);
        let google = r.rows.iter().find(|row| row.name.contains("Google")).unwrap();
        assert_eq!(google.blocks as u64, 171 * 1024 / 64); // 2736
    }

    #[test]
    fn renders() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("N5"));
        assert!(text.contains("Google trace"));
    }
}
