//! N3 — side-file access: naive vs cached (Sections III-B/C).
//!
//! "The easiest, but inefficient approach, is to read the additional file
//! from inside each mapper. ... the optimized implementation of this
//! external access ... can make the program run one order of magnitude
//! faster." / "Having individual mappers reading from the same additional
//! data file increases runtimes to several hours, and implementing a
//! customized Java object to preprocess the additional data can reduce the
//! runtimes to minutes."
//!
//! Both implementations run on the 8-node cluster over identical MovieLens
//! data; outputs are identical, runtimes are not.

use std::fmt;

use hl_cluster::node::ClusterSpec;
use hl_common::prelude::*;
use hl_common::units::ByteSize;
use hl_datagen::movielens::MovieLensGen;
use hl_mapreduce::engine::MrCluster;
use hl_workloads::movielens;

use super::Scale;

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct N3Result {
    /// Ratings processed.
    pub ratings: usize,
    /// Side-file size.
    pub side_file_bytes: u64,
    /// Naive job time.
    pub naive: SimDuration,
    /// Cached job time.
    pub cached: SimDuration,
    /// Side-file reads performed by each.
    pub naive_reads: u64,
    /// Cached implementation's reads.
    pub cached_reads: u64,
    /// Whether the outputs matched exactly.
    pub outputs_match: bool,
}

impl N3Result {
    /// The slowdown factor of the naive implementation.
    pub fn factor(&self) -> f64 {
        self.naive.as_secs_f64() / self.cached.as_secs_f64().max(1e-9)
    }
}

/// Run both implementations.
pub fn run(scale: Scale) -> N3Result {
    // The naive implementation *really* re-parses the catalog per record,
    // so the sample is bounded to keep the harness's own wall time sane;
    // charged virtual time carries the paper-scale story.
    let ratings = scale.pick(20_000, 100_000);
    let data = MovieLensGen::new(1701)
        .with_sizes(scale.pick(500, 2_000), scale.pick(300, 2_000))
        .generate(ratings);
    let side_file_bytes = data.movies.len() as u64;

    let mut outputs = Vec::new();
    let mut times = Vec::new();
    let mut reads = Vec::new();
    for naive in [true, false] {
        let mut config = Configuration::with_defaults();
        config.set(
            hl_common::config::keys::DFS_BLOCK_SIZE,
            scale.pick(256 * ByteSize::KIB, 64 * ByteSize::MIB),
        );
        let mut c = MrCluster::new(ClusterSpec::course_hadoop(8), config).unwrap();
        c.dfs.namenode.mkdirs("/in").unwrap();
        let t = c.now;
        let put =
            c.dfs.put(&mut c.net, t, "/in/ratings.dat", data.ratings.as_bytes(), None).unwrap();
        c.now = put.completed_at;
        c.register_side_file("/cache/movies.dat", data.movies.clone().into_bytes());

        let report = if naive {
            c.run_job(&movielens::genre_stats_naive("/in/ratings.dat", "/cache/movies.dat", "/out"))
                .unwrap()
        } else {
            c.run_job(&movielens::genre_stats_cached(
                "/in/ratings.dat",
                "/cache/movies.dat",
                "/out",
            ))
            .unwrap()
        };
        times.push(report.elapsed());
        reads.push(report.counters.get("Side Files", "reads"));
        let mut out: Vec<String> =
            c.read_output("/out").unwrap().lines().map(str::to_string).collect();
        out.sort();
        outputs.push(out);
    }

    N3Result {
        ratings,
        side_file_bytes,
        naive: times[0],
        cached: times[1],
        naive_reads: reads[0],
        cached_reads: reads[1],
        outputs_match: outputs[0] == outputs[1],
    }
}

impl fmt::Display for N3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "N3 — side-file access, {} ratings joined to a {} catalog, 8 nodes",
            self.ratings,
            ByteSize::display(self.side_file_bytes)
        )?;
        writeln!(
            f,
            "  naive  (read inside map()):  {}  ({} side-file reads)",
            self.naive, self.naive_reads
        )?;
        writeln!(
            f,
            "  cached (read once in setup): {}  ({} side-file reads)",
            self.cached, self.cached_reads
        )?;
        writeln!(
            f,
            "  -> naive is {:.1}x slower; outputs identical: {}",
            self.factor(),
            self.outputs_match
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_of_magnitude_and_identical_output() {
        let r = run(Scale::Quick);
        assert!(r.outputs_match, "both implementations must agree");
        assert!(r.factor() > 8.0, "naive should be ~an order slower: {:.1}x", r.factor());
        assert_eq!(r.naive_reads, r.ratings as u64, "one read per record");
        assert!(r.cached_reads < 64, "one read per task: {}", r.cached_reads);
    }

    #[test]
    fn renders() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("N3"));
        assert!(text.contains("slower"));
    }
}
