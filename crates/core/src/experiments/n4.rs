//! N4 — the same jar, serial vs on the cluster (Section III-B).
//!
//! "The first part of this assignment takes the jar files from the first
//! assignment and reruns them on the data on HDFS. The goal ... is to
//! demonstrate the ease in which Hadoop MapReduce can immediately speed up
//! the application without having to worry about parallel workload
//! division, process' ranks, etc."
//!
//! The identical airline job (same mapper/combiner/reducer types) runs in
//! the `LocalJobRunner` on one lane, then on the 8-node cluster over HDFS.

use std::fmt;

use hl_cluster::node::ClusterSpec;
use hl_common::prelude::*;
use hl_common::units::ByteSize;
use hl_datagen::airline::AirlineGen;
use hl_mapreduce::api::SideFiles;
use hl_mapreduce::engine::MrCluster;
use hl_mapreduce::local::LocalRunner;
use hl_workloads::airline;

use super::Scale;

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct N4Result {
    /// Flights processed.
    pub flights: usize,
    /// Serial (one-lane LocalJobRunner) virtual time.
    pub serial: SimDuration,
    /// Cluster job virtual time (excluding staging).
    pub cluster: SimDuration,
    /// Staging (copyFromLocal) time, reported separately like the lab did.
    pub staging: SimDuration,
    /// Whether serial and cluster outputs agreed.
    pub outputs_match: bool,
}

impl N4Result {
    /// Cluster speedup over serial execution.
    pub fn speedup(&self) -> f64 {
        self.serial.as_secs_f64() / self.cluster.as_secs_f64().max(1e-9)
    }
}

/// Run both modes over identical data.
pub fn run(scale: Scale) -> N4Result {
    let flights = scale.pick(800_000, 5_000_000);
    let (csv, _) = AirlineGen::new(77).generate(flights);

    // Serial: assignment-1 mode.
    let local = LocalRunner::serial()
        .run(
            &airline::avg_delay_combiner("/i", "/o"),
            &[("2008.csv".to_string(), csv.clone().into_bytes())],
            &SideFiles::new(),
        )
        .unwrap();
    let mut serial_out = local.output.clone();
    serial_out.sort();

    // Cluster: assignment-2 mode, same "jar".
    let mut config = Configuration::with_defaults();
    config.set(
        hl_common::config::keys::DFS_BLOCK_SIZE,
        scale.pick(ByteSize::MIB, 64 * ByteSize::MIB),
    );
    let mut c = MrCluster::new(ClusterSpec::course_hadoop(8), config).unwrap();
    c.dfs.namenode.mkdirs("/in").unwrap();
    let t0 = c.now;
    let put = c.dfs.put(&mut c.net, t0, "/in/2008.csv", csv.as_bytes(), None).unwrap();
    c.now = put.completed_at;
    let staging = put.completed_at.since(t0);
    let report = c.run_job(&airline::avg_delay_combiner("/in/2008.csv", "/out")).unwrap();
    if std::env::var("N4_DEBUG").is_ok() {
        eprintln!("{report}");
    }
    let mut cluster_out: Vec<String> =
        c.read_output("/out").unwrap().lines().map(str::to_string).collect();
    cluster_out.sort();

    N4Result {
        flights,
        serial: local.virtual_time,
        cluster: report.elapsed(),
        staging,
        outputs_match: serial_out == cluster_out,
    }
}

impl fmt::Display for N4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "N4 — same jar, serial vs 8-node cluster, {} flights", self.flights)?;
        writeln!(f, "  serial (LocalJobRunner, 1 lane): {}", self.serial)?;
        writeln!(
            f,
            "  cluster (8 nodes over HDFS):     {}  (+ staging {})",
            self.cluster, self.staging
        )?;
        writeln!(
            f,
            "  -> {:.1}x speedup with zero code changes; outputs identical: {}",
            self.speedup(),
            self.outputs_match
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_wins_with_identical_output() {
        let r = run(Scale::Quick);
        assert!(r.outputs_match);
        assert!(r.speedup() > 2.0, "speedup {:.2}", r.speedup());
        assert!(r.staging > SimDuration::ZERO);
    }

    #[test]
    fn renders() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("N4"));
        assert!(text.contains("speedup"));
    }
}
