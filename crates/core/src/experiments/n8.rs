//! N8 — assignment-1 serial runtimes (Section III-B/C).
//!
//! "The results from the students' assignments show that the best
//! implementation of the first assignment can run as fast as several
//! minutes, while the worst implementation takes a little over half an
//! hour to run." (And for the fully-naive per-record re-read: "increases
//! runtimes to several hours".)
//!
//! Both reference implementations run serially (the assignment-1 mode) on
//! a sample, with virtual time scaled linearly to the real dataset's
//! 10 million ratings — per-record work dominates both, so the scaling is
//! faithful.

use std::fmt;

use hl_common::prelude::*;
use hl_datagen::movielens::MovieLensGen;
use hl_mapreduce::api::SideFiles;
use hl_mapreduce::local::LocalRunner;
use hl_workloads::movielens;

use super::Scale;

/// Ratings in the real MovieLens 10M release.
pub const REAL_RATINGS: u64 = 10_000_000;

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct N8Result {
    /// Sample size actually executed.
    pub sample_ratings: usize,
    /// Sample-size virtual time, naive.
    pub naive_sample: SimDuration,
    /// Sample-size virtual time, cached.
    pub cached_sample: SimDuration,
    /// Scaled to 10 M ratings.
    pub naive_scaled: SimDuration,
    /// Scaled to 10 M ratings.
    pub cached_scaled: SimDuration,
}

impl N8Result {
    /// Naive-over-cached slowdown.
    pub fn factor(&self) -> f64 {
        self.naive_sample.as_secs_f64() / self.cached_sample.as_secs_f64().max(1e-9)
    }
}

/// Run both serial implementations.
pub fn run(scale: Scale) -> N8Result {
    // Bounded sample (the naive arm re-parses the catalog per record for
    // real); virtual time scales linearly to the full 10 M ratings.
    let sample = scale.pick(5_000, 20_000);
    let data = MovieLensGen::new(10)
        .with_sizes(scale.pick(800, 5_000), scale.pick(400, 2_000))
        .generate(sample);
    let inputs = vec![("ratings.dat".to_string(), data.ratings.into_bytes())];
    let mut side = SideFiles::new();
    side.insert("/cache/movies.dat", data.movies.into_bytes());
    let runner = LocalRunner::serial();

    let naive = runner
        .run(&movielens::genre_stats_naive("/i", "/cache/movies.dat", "/o"), &inputs, &side)
        .unwrap();
    let cached = runner
        .run(&movielens::genre_stats_cached("/i", "/cache/movies.dat", "/o"), &inputs, &side)
        .unwrap();

    let scale_factor = REAL_RATINGS / sample as u64;
    N8Result {
        sample_ratings: sample,
        naive_sample: naive.virtual_time,
        cached_sample: cached.virtual_time,
        naive_scaled: naive.virtual_time * scale_factor,
        cached_scaled: cached.virtual_time * scale_factor,
    }
}

impl fmt::Display for N8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "N8 — assignment 1 serial runtimes ({} sampled ratings, scaled to 10M)",
            self.sample_ratings
        )?;
        writeln!(
            f,
            "  cached side-file object: {}  (scaled: {})",
            self.cached_sample, self.cached_scaled
        )?;
        writeln!(
            f,
            "  naive per-record reread: {}  (scaled: {})",
            self.naive_sample, self.naive_scaled
        )?;
        writeln!(
            f,
            "  -> naive is {:.0}x slower; paper: best ≈ minutes, worst ≈ half an hour, \
             per-record rereads ≈ hours",
            self.factor()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_times_land_in_paper_bands() {
        let r = run(Scale::Quick);
        // Best implementation: "several minutes" at 10M ratings.
        assert!(r.cached_scaled < SimDuration::from_mins(30), "cached scaled {}", r.cached_scaled);
        assert!(r.cached_scaled > SimDuration::from_secs(5));
        // Fully naive per-record rereads: "several hours".
        assert!(r.naive_scaled > SimDuration::from_hours(1), "naive scaled {}", r.naive_scaled);
        // Order(s) of magnitude apart.
        assert!(r.factor() > 10.0, "factor {:.1}", r.factor());
    }

    #[test]
    fn renders() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("N8"));
        assert!(text.contains("slower"));
    }
}
