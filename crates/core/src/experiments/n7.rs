//! N7 — myHadoop provisioning under student behaviour (Section II-B).
//!
//! A semester evening on the shared machine: a stream of students stand up
//! dynamic Hadoop clusters. Some misconfigure paths, some exit without
//! stopping their daemons (ghosts), some know how to kill their own
//! ghosts. Two arms contrast the scheduler's 15-minute cleanup cron with a
//! machine that never cleans — the paper's explanation for why the waits
//! stayed bounded.

use std::fmt;

use hl_common::prelude::*;
use hl_provision::{Campus, Session, SessionOutcome, SessionSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use super::Scale;

/// One arm's aggregate results.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmStats {
    /// Arm label.
    pub name: &'static str,
    /// Sessions attempted.
    pub sessions: usize,
    /// Sessions that got a working cluster.
    pub successes: usize,
    /// Sessions blocked by foreign ghosts until walltime.
    pub blocked: usize,
    /// Median time to a usable cluster among successes.
    pub median_cluster_up: SimDuration,
    /// Worst time to a usable cluster.
    pub max_cluster_up: SimDuration,
    /// Ghost-daemon port conflicts hit.
    pub ghost_conflicts: usize,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct N7Result {
    /// With the 15-minute cleanup cron.
    pub with_cleanup: ArmStats,
    /// With cleanup effectively disabled.
    pub without_cleanup: ArmStats,
}

fn run_arm(
    name: &'static str,
    sessions: usize,
    cleanup: Option<SimDuration>,
    seed: u64,
) -> ArmStats {
    let mut campus = Campus::new(16);
    if let Some(period) = cleanup {
        campus.scheduler.cleanup_period = period;
    } else {
        campus.scheduler.cleanup_period = SimDuration::from_hours(24 * 365);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let mut successes = 0;
    let mut blocked = 0;
    let mut up_times = Vec::new();
    for i in 0..sessions {
        let mut spec = SessionSpec::diligent(&format!("student{i:02}"));
        spec.misconfigured_paths = rng.gen_bool(0.3);
        spec.debug_time = SimDuration::from_mins(rng.gen_range(10..40));
        spec.forgets_teardown = rng.gen_bool(0.25);
        spec.kills_own_ghosts = rng.gen_bool(0.5);
        match Session::new(spec).run(&mut campus) {
            SessionOutcome::Success { cluster_up, .. } => {
                successes += 1;
                up_times.push(cluster_up);
            }
            SessionOutcome::BlockedByGhosts { .. } => blocked += 1,
            _ => {}
        }
        // A short gap between students.
        let t = campus.now + SimDuration::from_mins(rng.gen_range(1..10));
        campus.advance_to(t);
    }
    up_times.sort();
    let ghost_conflicts = campus.log.grep("Address already in use").count();
    ArmStats {
        name,
        sessions,
        successes,
        blocked,
        median_cluster_up: up_times.get(up_times.len() / 2).copied().unwrap_or(SimDuration::ZERO),
        max_cluster_up: up_times.last().copied().unwrap_or(SimDuration::ZERO),
        ghost_conflicts,
    }
}

/// Run both arms with identical student behaviour.
pub fn run(scale: Scale) -> N7Result {
    let sessions = scale.pick(24, 80);
    N7Result {
        with_cleanup: run_arm(
            "15-min cleanup cron",
            sessions,
            Some(SimDuration::from_mins(15)),
            42,
        ),
        without_cleanup: run_arm("no cleanup", sessions, None, 42),
    }
}

impl fmt::Display for N7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "N7 — myHadoop provisioning, one evening of student sessions")?;
        writeln!(
            f,
            "  {:<20}  {:>8}  {:>9}  {:>8}  {:>12}  {:>12}  {:>7}",
            "arm", "sessions", "succeeded", "blocked", "median up", "max up", "ghosts"
        )?;
        for a in [&self.with_cleanup, &self.without_cleanup] {
            writeln!(
                f,
                "  {:<20}  {:>8}  {:>9}  {:>8}  {:>12}  {:>12}  {:>7}",
                a.name,
                a.sessions,
                a.successes,
                a.blocked,
                a.median_cluster_up.to_string(),
                a.max_cluster_up.to_string(),
                a.ghost_conflicts,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleanup_cron_keeps_the_platform_usable() {
        let r = run(Scale::Quick);
        let with = &r.with_cleanup;
        let without = &r.without_cleanup;
        // With cleanup, (almost) everyone succeeds.
        assert!(with.successes * 10 >= with.sessions * 9, "{with:?}");
        // Without cleanup, ghosts permanently block later students.
        assert!(
            without.blocked > with.blocked,
            "no-cleanup must strand students: {} vs {}",
            without.blocked,
            with.blocked
        );
        // Ghost conflicts happen in both arms (same behaviour seed).
        assert!(with.ghost_conflicts > 0);
        // Median setup stays within the in-class lab window (paper: most
        // students set up within the lab; Table II setup row ≈ 30min–2h).
        assert!(with.median_cluster_up < SimDuration::from_hours(1), "{}", with.median_cluster_up);
        assert!(with.max_cluster_up < SimDuration::from_hours(2), "{}", with.max_cluster_up);
    }

    #[test]
    fn renders() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("N7"));
        assert!(text.contains("15-min cleanup cron"));
        assert!(text.contains("no cleanup"));
    }
}
