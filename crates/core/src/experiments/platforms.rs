//! Platform evolution (Section II) — why the course moved from a VM and a
//! shared dedicated cluster to myHadoop.
//!
//! Three ways a student got a working Hadoop environment, with the course
//! workflow (stage the 12 GB Airline data, run the example job) costed on
//! each:
//!
//! * **Version-1 VM** — pseudo-distributed Hadoop in a VM whose virtual
//!   NIC the supercomputer throttled to ~1 MB/s ("limited the virtual
//!   network connection to roughly 1 MB/s"), plus the X-over-wireless GUI
//!   pain;
//! * **Version-1 dedicated cluster** — instant when idle, but shared by
//!   the whole class: we cost it at the deadline, queueing behind the
//!   class's jobs;
//! * **Version-2+ myHadoop** — a private 8-node cluster after a
//!   provisioning wait.

use std::fmt;

use hl_cluster::resource::PipeResource;
use hl_common::prelude::*;
use hl_common::units::ByteSize;
use hl_provision::{Campus, Session, SessionOutcome, SessionSpec};

use super::Scale;

/// One platform's cost breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformRow {
    /// Platform name.
    pub name: &'static str,
    /// Time to a usable environment.
    pub setup: SimDuration,
    /// Time to stage the lab dataset.
    pub staging: SimDuration,
    /// Time to run the example job once the data is in.
    pub job: SimDuration,
    /// Total.
    pub total: SimDuration,
}

/// The comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformsResult {
    /// Lab dataset size used for staging.
    pub dataset_bytes: u64,
    /// One row per platform.
    pub rows: Vec<PlatformRow>,
}

/// Compare the three platforms on the same student workflow.
pub fn run(scale: Scale) -> PlatformsResult {
    let dataset = scale.pick(4 * ByteSize::GIB, 12 * ByteSize::GIB);

    // --- Version-1 VM: setup was SSH tunnels + GUI-over-wireless (the
    // paper: "a significant amount of time was spent by the students
    // getting the VMs up and running") — modeled at 45 min; staging runs
    // through the 1 MB/s virtual NIC; the job is pseudo-distributed
    // (single node, no cluster parallelism).
    let vm_setup = SimDuration::from_mins(45);
    let mut vm_nic = PipeResource::new("vm-virtual-nic", ByteSize::MIB);
    let vm_staging = vm_nic.charge(SimTime::ZERO, dataset).end.since(SimTime::ZERO);
    let vm_job = SimDuration::for_transfer(dataset, 60 * ByteSize::MIB); // one-node scan
    let vm_total = vm_setup + vm_staging + vm_job;

    // --- Version-1 dedicated cluster at the deadline: the whole class
    // (35-40 students) queues; the cluster ran jobs FIFO. We cost the
    // median student: ~half the class's jobs ahead of them.
    let ded_setup = SimDuration::from_mins(2); // log in, it's already up
    let class_jobs_ahead = 18u64;
    let per_job = SimDuration::for_transfer(dataset, 8 * 120 * ByteSize::MIB) // 8-node scan
        + SimDuration::from_secs(90); // startup + reduce tail
    let ded_staging = SimDuration::for_transfer(dataset, 45 * ByteSize::MIB); // shared source
    let ded_job = per_job * (class_jobs_ahead + 1);
    let ded_total = ded_setup + ded_staging + ded_job;

    // --- myHadoop: a clean provisioning session, then a private cluster.
    let mut campus = Campus::new(16);
    let outcome = Session::new(SessionSpec::diligent("student")).run(&mut campus);
    let my_setup = match outcome {
        SessionOutcome::Success { cluster_up, .. } => cluster_up,
        _ => SimDuration::from_hours(8),
    };
    let my_staging = SimDuration::for_transfer(dataset, 45 * ByteSize::MIB);
    let my_job = per_job; // private: no queue
    let my_total = my_setup + my_staging + my_job;

    PlatformsResult {
        dataset_bytes: dataset,
        rows: vec![
            PlatformRow {
                name: "v1 pseudo-distributed VM (1 MB/s vNIC)",
                setup: vm_setup,
                staging: vm_staging,
                job: vm_job,
                total: vm_total,
            },
            PlatformRow {
                name: "v1 shared dedicated cluster (deadline night)",
                setup: ded_setup,
                staging: ded_staging,
                job: ded_job,
                total: ded_total,
            },
            PlatformRow {
                name: "v2+ myHadoop private cluster",
                setup: my_setup,
                staging: my_staging,
                job: my_job,
                total: my_total,
            },
        ],
    }
}

impl fmt::Display for PlatformsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Platform evolution — stage {} + run the lab job, per platform",
            ByteSize::display(self.dataset_bytes)
        )?;
        writeln!(
            f,
            "  {:<46}  {:>10}  {:>12}  {:>12}  {:>12}",
            "platform", "setup", "staging", "job", "total"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<46}  {:>10}  {:>12}  {:>12}  {:>12}",
                r.name,
                r.setup.to_string(),
                r.staging.to_string(),
                r.job.to_string(),
                r.total.to_string(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn myhadoop_beats_both_version1_options() {
        let r = run(Scale::Quick);
        let vm = &r.rows[0];
        let dedicated = &r.rows[1];
        let myhadoop = &r.rows[2];
        assert!(myhadoop.total < vm.total, "{} vs {}", myhadoop.total, vm.total);
        assert!(myhadoop.total < dedicated.total, "{} vs {}", myhadoop.total, dedicated.total);
        // The VM's killer is staging through the 1 MB/s NIC.
        assert!(vm.staging > vm.setup + vm.job);
        // The dedicated cluster's killer is the deadline queue.
        assert!(dedicated.job > dedicated.staging);
    }

    #[test]
    fn vm_staging_at_paper_scale_is_days() {
        let r = run(Scale::Paper);
        // 12 GB through 1 MB/s ≈ 3.4 hours — for the 171 GB trace it would
        // be days, which is why the option was abandoned.
        assert!(r.rows[0].staging > SimDuration::from_hours(3), "{}", r.rows[0].staging);
    }

    #[test]
    fn renders() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("Platform evolution"));
        assert!(text.contains("myHadoop"));
    }
}
