//! N1 — the combiner trade-off (Section III-A).
//!
//! "The students observe the tradeoff between increased map task run time
//! (observed through Hadoop's JobTracker's web interface) versus reduced
//! network traffic (observed through final MapReduce job report)."
//!
//! Three WordCount variants on the 8-node course cluster over a Zipf
//! corpus: plain, reducer-as-combiner, and in-mapper combining.

use std::fmt;

use hl_cluster::node::ClusterSpec;
use hl_common::counters::TaskCounter;
use hl_common::prelude::*;
use hl_common::units::ByteSize;
use hl_datagen::corpus::CorpusGen;
use hl_mapreduce::engine::MrCluster;
use hl_mapreduce::report::JobReport;
use hl_workloads::wordcount;

use super::Scale;

/// One variant's row.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantRow {
    /// Variant name.
    pub name: &'static str,
    /// Sum of map-task durations (the JobTracker-web-UI observable).
    pub total_map_time: SimDuration,
    /// Shuffle traffic (the job-report observable).
    pub shuffle_bytes: u64,
    /// Map output records (before the shuffle).
    pub map_output_records: u64,
    /// Combine input records (0 without a combiner).
    pub combine_input_records: u64,
    /// End-to-end job time.
    pub elapsed: SimDuration,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct N1Result {
    /// Corpus size.
    pub input_bytes: u64,
    /// Rows: plain, +combiner, in-mapper.
    pub rows: Vec<VariantRow>,
}

fn cluster(scale: Scale) -> MrCluster {
    let mut config = Configuration::with_defaults();
    config.set(
        hl_common::config::keys::DFS_BLOCK_SIZE,
        scale.pick(64 * ByteSize::KIB, 64 * ByteSize::MIB),
    );
    MrCluster::new(ClusterSpec::course_hadoop(8), config).unwrap()
}

fn row(name: &'static str, report: &JobReport) -> VariantRow {
    VariantRow {
        name,
        total_map_time: report.total_map_time(),
        shuffle_bytes: report.shuffle_bytes(),
        map_output_records: report.counters.task(TaskCounter::MapOutputRecords),
        combine_input_records: report.counters.task(TaskCounter::CombineInputRecords),
        elapsed: report.elapsed(),
    }
}

/// Run all three variants on identical data.
pub fn run(scale: Scale) -> N1Result {
    let words = scale.pick(60_000, 5_000_000);
    let (text, _) = CorpusGen::new(41).with_vocab(2_000).generate(words);
    let input_bytes = text.len() as u64;

    let mut rows = Vec::new();
    for (name, which) in [("plain", 0), ("reducer-as-combiner", 1), ("in-mapper", 2)] {
        let mut c = cluster(scale);
        c.dfs.namenode.mkdirs("/in").unwrap();
        let t = c.now;
        let put = c.dfs.put(&mut c.net, t, "/in/corpus.txt", text.as_bytes(), None).unwrap();
        c.now = put.completed_at;
        let report = match which {
            0 => c.run_job(&wordcount::wordcount("/in/corpus.txt", "/out", 4)).unwrap(),
            1 => c.run_job(&wordcount::wordcount_combiner("/in/corpus.txt", "/out", 4)).unwrap(),
            _ => c.run_job(&wordcount::wordcount_inmapper("/in/corpus.txt", "/out", 4)).unwrap(),
        };
        rows.push(row(name, &report));
    }
    N1Result { input_bytes, rows }
}

impl fmt::Display for N1Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "N1 — combiner trade-off, WordCount over {} Zipf text, 8 nodes",
            ByteSize::display(self.input_bytes)
        )?;
        writeln!(
            f,
            "  {:>20}  {:>12}  {:>11}  {:>12}  {:>12}  {:>9}",
            "variant", "map time", "shuffle", "map out recs", "combine in", "job time"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>20}  {:>12}  {:>11}  {:>12}  {:>12}  {:>9}",
                r.name,
                r.total_map_time.to_string(),
                ByteSize::display(r.shuffle_bytes).to_string(),
                r.map_output_records,
                r.combine_input_records,
                r.elapsed.to_string(),
            )?;
        }
        let (p, c) = (&self.rows[0], &self.rows[1]);
        writeln!(
            f,
            "  -> combiner: map time {:+.1}%, shuffle x{:.2}",
            (c.total_map_time.as_secs_f64() / p.total_map_time.as_secs_f64() - 1.0) * 100.0,
            c.shuffle_bytes as f64 / p.shuffle_bytes.max(1) as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combiner_trades_map_time_for_shuffle() {
        let r = run(Scale::Quick);
        let plain = &r.rows[0];
        let comb = &r.rows[1];
        let inmap = &r.rows[2];
        // The paper's observable pair:
        assert!(
            comb.total_map_time > plain.total_map_time,
            "combiner adds map time: {} vs {}",
            comb.total_map_time,
            plain.total_map_time
        );
        assert!(
            comb.shuffle_bytes * 4 < plain.shuffle_bytes,
            "combiner slashes shuffle: {} vs {}",
            comb.shuffle_bytes,
            plain.shuffle_bytes
        );
        // In-mapper combining shuffles even less than the combiner (no
        // per-spill residue) and emits far fewer records.
        assert!(inmap.shuffle_bytes <= comb.shuffle_bytes);
        assert!(inmap.map_output_records < plain.map_output_records / 4);
        // Combiner actually ran.
        assert!(comb.combine_input_records > 0);
        assert_eq!(plain.combine_input_records, 0);
    }

    #[test]
    fn renders() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("N1"));
        assert!(text.contains("reducer-as-combiner"));
        assert!(text.contains("shuffle x"));
    }
}
