//! Experiment drivers — one module per paper artifact.
//!
//! Naming follows DESIGN.md's experiment index: `fig1`/`fig2` for the
//! figures, `tables` for Tables I–V, `n1`…`n8` for the narrative
//! performance claims. Every driver takes a [`Scale`]: `Quick` keeps test
//! suites fast; `Paper` sizes the virtual experiment like the course did
//! (full dataset sizes in virtual time, more rows of real data where the
//! answer is computed for real).

pub mod fig1;
pub mod fig2;
pub mod jummp;
pub mod n1;
pub mod n2;
pub mod n3;
pub mod n4;
pub mod n5;
pub mod n6;
pub mod n7;
pub mod n8;
pub mod platforms;
pub mod tables;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Milliseconds-fast, used by the test suite.
    Quick,
    /// Course-scale (virtual sizes matching the paper).
    Paper,
}

impl Scale {
    /// Pick a value by scale.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

/// Render a simple aligned two-column table (label, value).
pub fn kv_table(rows: &[(String, String)]) -> String {
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (k, v) in rows {
        out.push_str(&format!("  {k:<width$}  {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }

    #[test]
    fn kv_table_aligns() {
        let t = kv_table(&[("a".into(), "1".into()), ("longer".into(), "2".into())]);
        assert!(t.contains("  a       1\n"));
        assert!(t.contains("  longer  2\n"));
    }
}
