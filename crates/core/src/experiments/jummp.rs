//! JUMMP — the authors' own follow-up (paper reference [11]: Moody, Ngo,
//! Duffy & Apon, *JUMMP: Job Uninterrupted Maneuverable MapReduce
//! Platform*, IEEE Cluster 2013).
//!
//! The course's dynamic clusters die when the scheduler preempts their
//! nodes ("their jobs can be preempted from the system by higher priority
//! research jobs"). JUMMP's idea: when a member node is about to be
//! preempted, *maneuver* — gracefully drain it onto a freshly-acquired
//! replacement so the Hadoop cluster "moves" across the machine without
//! ever losing data.
//!
//! The drill runs the same preemption schedule against two arms:
//!
//! * **maneuvering (JUMMP)** — each preemption warning triggers a
//!   decommission-drain onto a spare node before the victim disappears;
//! * **naive (myHadoop)** — the victims just vanish (one research
//!   reservation grabs them all at once); the cluster shrinks.
//!
//! After `k ≥ replication` preemptions the naive arm starts losing blocks
//! outright; the JUMMP arm stays whole and still answers queries.

use std::fmt;

use hl_cluster::network::ClusterNet;
use hl_cluster::node::ClusterSpec;
use hl_common::prelude::*;
use hl_common::units::ByteSize;
use hl_datagen::corpus::CorpusGen;
use hl_dfs::admin;
use hl_dfs::client::Dfs;

use super::Scale;

/// One arm's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JummpArm {
    /// Arm label.
    pub name: &'static str,
    /// Preemptions survived.
    pub preemptions: usize,
    /// Live DataNodes at the end.
    pub live_nodes: usize,
    /// Blocks with zero replicas at the end (data loss).
    pub missing_blocks: usize,
    /// Under-replicated blocks at the end.
    pub under_replicated: usize,
    /// Whether the staged file still reads back intact.
    pub data_intact: bool,
    /// Virtual time consumed by the drill.
    pub elapsed: SimDuration,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct JummpResult {
    /// Cluster membership size.
    pub members: usize,
    /// Data staged.
    pub data_bytes: u64,
    /// Maneuvering arm.
    pub jummp: JummpArm,
    /// Naive arm.
    pub naive: JummpArm,
}

fn run_arm(scale: Scale, maneuver: bool) -> (JummpArm, usize, u64) {
    let members = 6usize;
    let spares = 6usize;
    let total = members + spares;
    let spec = ClusterSpec::course_hadoop(total);
    let mut config = Configuration::with_defaults();
    config.set(
        hl_common::config::keys::DFS_BLOCK_SIZE,
        scale.pick(16 * ByteSize::KIB, 64 * ByteSize::KIB),
    );
    let mut dfs = Dfs::format(&config, &spec).unwrap();
    let mut net = ClusterNet::new(&spec);

    // Spares start outside the cluster (their daemons are down).
    for n in members..total {
        dfs.crash_datanode(NodeId(n as u32));
    }
    // Make the NameNode aware the spares are gone before any placement.
    dfs.namenode.check_heartbeats(SimTime::ZERO);
    for n in 0..members {
        dfs.namenode.heartbeat(SimTime::ZERO, NodeId(n as u32), u64::MAX / 2);
    }
    let later = SimTime::ZERO + SimDuration::from_mins(20);
    for n in 0..members {
        dfs.namenode.heartbeat(later, NodeId(n as u32), u64::MAX / 2);
    }
    dfs.namenode.check_heartbeats(later);

    // Stage the dataset on the 6 members.
    let (text, _) = CorpusGen::new(99).with_vocab(200).generate(scale.pick(20_000, 100_000));
    dfs.namenode.mkdirs("/data").unwrap();
    let put = dfs.put(&mut net, later, "/data/corpus.txt", text.as_bytes(), None).unwrap();
    let mut now = put.completed_at;

    // Preemption schedule: 4 members get preempted, one by one.
    let preemptions = 4usize;
    let mut next_spare = members as u32;
    for k in 0..preemptions {
        let victim = NodeId(k as u32);
        if maneuver {
            // JUMMP: acquire the replacement first, then drain the victim.
            let spare = NodeId(next_spare);
            next_spare += 1;
            dfs.datanode_mut(spare).unwrap().restart();
            let free = dfs.datanode(spare).unwrap().free_bytes();
            dfs.namenode.register_datanode(now, spare, free);
            let done = admin::decommission_node(&mut dfs, &mut net, now, victim).unwrap();
            now = done.completed_at;
        } else {
            // Naive: the scheduler just takes the node. A single research
            // reservation preempts several nodes in the same instant, so
            // the victims vanish back-to-back with no recovery window.
            dfs.crash_datanode(victim);
        }
    }
    if !maneuver {
        // Only after the preemption wave does the monitor get to react.
        let window = SimDuration::from_secs(3 * 200) + SimDuration::from_mins(10);
        dfs.run_protocol(&mut net, now, now + window);
        now += window;
    }

    let missing = dfs.namenode.missing_blocks().len();
    let under = dfs.namenode.under_replicated().len();
    let live = dfs.namenode.live_datanodes().len();
    let data_intact = dfs
        .read(&mut net, now, "/data/corpus.txt", None)
        .map(|got| got.value == text.as_bytes())
        .unwrap_or(false);

    (
        JummpArm {
            name: if maneuver { "JUMMP (maneuvering)" } else { "naive (myHadoop)" },
            preemptions,
            live_nodes: live,
            missing_blocks: missing,
            under_replicated: under,
            data_intact,
            elapsed: now.since(SimTime::ZERO),
        },
        members,
        text.len() as u64,
    )
}

/// Run both arms on the same preemption schedule.
pub fn run(scale: Scale) -> JummpResult {
    let (jummp, members, data_bytes) = run_arm(scale, true);
    let (naive, _, _) = run_arm(scale, false);
    JummpResult { members, data_bytes, jummp, naive }
}

impl fmt::Display for JummpResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "JUMMP drill — {}-member cluster, {} staged, 4 members preempted in turn",
            self.members,
            ByteSize::display(self.data_bytes)
        )?;
        writeln!(
            f,
            "  {:<20}  {:>10}  {:>14}  {:>16}  {:>11}  {:>10}",
            "arm", "live nodes", "missing blocks", "under-replicated", "data intact", "elapsed"
        )?;
        for a in [&self.jummp, &self.naive] {
            writeln!(
                f,
                "  {:<20}  {:>10}  {:>14}  {:>16}  {:>11}  {:>10}",
                a.name,
                a.live_nodes,
                a.missing_blocks,
                a.under_replicated,
                a.data_intact,
                a.elapsed.to_string(),
            )?;
        }
        writeln!(
            f,
            "  -> maneuvering keeps the platform whole through preemption; the naive \
             cluster bleeds nodes{}",
            if self.naive.missing_blocks > 0 { " and loses data outright" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maneuvering_survives_what_kills_the_naive_cluster() {
        let r = run(Scale::Quick);
        // JUMMP: full membership, no loss, data readable.
        assert_eq!(r.jummp.live_nodes, 6, "replacements keep membership at 6");
        assert_eq!(r.jummp.missing_blocks, 0);
        assert!(r.jummp.data_intact, "JUMMP data must survive");
        // Naive: shrunk to 2 nodes; with 3x replication and 4 preemptions
        // some blocks lost every replica.
        assert_eq!(r.naive.live_nodes, 2);
        assert!(r.naive.missing_blocks > 0, "4 preemptions at replication 3 must lose blocks");
        assert!(!r.naive.data_intact);
    }

    #[test]
    fn renders() {
        let text = run(Scale::Quick).to_string();
        assert!(text.contains("JUMMP"));
        assert!(text.contains("maneuvering"));
        assert!(text.contains("naive"));
    }
}
