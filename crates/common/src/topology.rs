//! Node identity and rack topology.
//!
//! HDFS block placement and MapReduce scheduling both reason about network
//! *distance*: same node < same rack < different rack. Figure 2 of the
//! paper is exactly this — DataNodes report block locations to the
//! NameNode, and the JobTracker places map tasks using those locations.

use std::fmt;

/// Identifies a physical node in the simulated cluster (index into the
/// cluster's node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies a rack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RackId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{:03}", self.0)
    }
}

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/rack{:02}", self.0)
    }
}

/// Network distance classes in increasing cost order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Locality {
    /// Reader and data share a node: no network at all.
    NodeLocal,
    /// Same rack: one switch hop.
    RackLocal,
    /// Different racks: through the core/aggregation switch.
    OffRack,
}

impl Locality {
    /// Hadoop's integer distance metric (0 / 2 / 4).
    pub fn distance(self) -> u32 {
        match self {
            Locality::NodeLocal => 0,
            Locality::RackLocal => 2,
            Locality::OffRack => 4,
        }
    }

    /// Label used in job reports ("Data-local map tasks", ...).
    pub fn label(self) -> &'static str {
        match self {
            Locality::NodeLocal => "Data-local",
            Locality::RackLocal => "Rack-local",
            Locality::OffRack => "Off-rack",
        }
    }
}

/// Maps nodes to racks and answers distance queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    rack_of: Vec<RackId>,
}

impl Topology {
    /// `num_nodes` nodes striped round-robin across `num_racks` racks —
    /// how Palmetto's node naming laid out, and good enough for placement
    /// experiments.
    pub fn striped(num_nodes: usize, num_racks: usize) -> Self {
        assert!(num_racks > 0, "need at least one rack");
        let rack_of = (0..num_nodes).map(|i| RackId((i % num_racks) as u32)).collect();
        Topology { rack_of }
    }

    /// Single-rack topology (the course's 8-node dedicated cluster).
    pub fn flat(num_nodes: usize) -> Self {
        Self::striped(num_nodes, 1)
    }

    /// Explicit rack assignment per node.
    pub fn from_racks(rack_of: Vec<RackId>) -> Self {
        Topology { rack_of }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.rack_of.len()
    }

    /// Number of distinct racks.
    pub fn num_racks(&self) -> usize {
        let mut racks: Vec<_> = self.rack_of.iter().collect();
        racks.sort_unstable();
        racks.dedup();
        racks.len()
    }

    /// Rack holding `node`.
    pub fn rack(&self, node: NodeId) -> RackId {
        self.rack_of[node.0 as usize]
    }

    /// All node ids, in order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.rack_of.len() as u32).map(NodeId)
    }

    /// Nodes in a given rack.
    pub fn nodes_in_rack(&self, rack: RackId) -> impl Iterator<Item = NodeId> + '_ {
        self.rack_of
            .iter()
            .enumerate()
            .filter(move |(_, r)| **r == rack)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Locality class between two nodes.
    pub fn locality(&self, a: NodeId, b: NodeId) -> Locality {
        if a == b {
            Locality::NodeLocal
        } else if self.rack(a) == self.rack(b) {
            Locality::RackLocal
        } else {
            Locality::OffRack
        }
    }

    /// Best locality between a reader node and any of the `holders`.
    pub fn best_locality(&self, reader: NodeId, holders: &[NodeId]) -> Option<Locality> {
        holders.iter().map(|&h| self.locality(reader, h)).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_assignment() {
        let t = Topology::striped(8, 2);
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.num_racks(), 2);
        assert_eq!(t.rack(NodeId(0)), RackId(0));
        assert_eq!(t.rack(NodeId(1)), RackId(1));
        assert_eq!(t.rack(NodeId(2)), RackId(0));
        let rack0: Vec<_> = t.nodes_in_rack(RackId(0)).collect();
        assert_eq!(rack0, vec![NodeId(0), NodeId(2), NodeId(4), NodeId(6)]);
    }

    #[test]
    fn locality_classes_and_distance() {
        let t = Topology::striped(4, 2);
        assert_eq!(t.locality(NodeId(0), NodeId(0)), Locality::NodeLocal);
        assert_eq!(t.locality(NodeId(0), NodeId(2)), Locality::RackLocal);
        assert_eq!(t.locality(NodeId(0), NodeId(1)), Locality::OffRack);
        assert!(Locality::NodeLocal < Locality::RackLocal);
        assert!(Locality::RackLocal < Locality::OffRack);
        assert_eq!(Locality::NodeLocal.distance(), 0);
        assert_eq!(Locality::OffRack.distance(), 4);
    }

    #[test]
    fn best_locality_prefers_closest_holder() {
        let t = Topology::striped(6, 3);
        // reader node0 (rack0); holders: node1 (rack1), node3 (rack0), node0
        assert_eq!(t.best_locality(NodeId(0), &[NodeId(1)]), Some(Locality::OffRack));
        assert_eq!(t.best_locality(NodeId(0), &[NodeId(1), NodeId(3)]), Some(Locality::RackLocal));
        assert_eq!(
            t.best_locality(NodeId(0), &[NodeId(1), NodeId(3), NodeId(0)]),
            Some(Locality::NodeLocal)
        );
        assert_eq!(t.best_locality(NodeId(0), &[]), None);
    }

    #[test]
    fn flat_topology_is_one_rack() {
        let t = Topology::flat(8);
        assert_eq!(t.num_racks(), 1);
        assert_eq!(t.locality(NodeId(0), NodeId(7)), Locality::RackLocal);
    }

    #[test]
    fn display_names() {
        assert_eq!(NodeId(3).to_string(), "node003");
        assert_eq!(RackId(1).to_string(), "/rack01");
        assert_eq!(Locality::NodeLocal.label(), "Data-local");
    }
}
