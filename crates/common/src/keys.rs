//! Order-preserving key encodings.
//!
//! The shuffle sorts map output by key. Hadoop avoids deserializing keys to
//! compare them by registering `RawComparator`s over serialized bytes; we
//! get the same effect by requiring keys to encode such that **plain
//! `memcmp` on encodings equals the natural order** — the perf-book idiom
//! of making the cheap comparison the correct one.
//!
//! * unsigned integers → big-endian fixed width
//! * signed integers → sign bit flipped, then big-endian
//! * floats → IEEE total-order trick (flip sign bit for positives, all bits
//!   for negatives)
//! * strings → raw UTF-8 (memcmp on UTF-8 equals `str` ordering)
//! * pairs → length-safe concatenation via u16-prefixed escaping is *not*
//!   needed here because composite keys encode the first component
//!   fixed-width or terminated; the provided `Pair` helper handles the
//!   common (fixed, variable) case.

use crate::error::{HlError, Result};
use crate::writable::Writable;

/// A key type whose encoded bytes compare like the values themselves.
///
/// Laws (checked by property tests here and in the engine):
/// 1. `encode(a) < encode(b)` (lexicographic) iff `a < b`;
/// 2. `decode(encode(a)) == a`.
///
/// ```
/// use hl_common::keys::SortableKey;
/// // Negative numbers would break a naive big-endian sort; the
/// // sign-flipped encoding keeps byte order == numeric order.
/// assert!((-5i64).ordered_bytes() < 3i64.ordered_bytes());
/// assert!(3i64.ordered_bytes() < 40i64.ordered_bytes());
/// ```
pub trait SortableKey: Writable + Ord + Clone {
    /// Append the order-preserving encoding to `buf`.
    fn encode_ordered(&self, buf: &mut Vec<u8>);
    /// Decode from the front of `buf`, advancing it.
    fn decode_ordered(buf: &mut &[u8]) -> Result<Self>;

    /// Encode into a fresh buffer.
    fn ordered_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_ordered(&mut buf);
        buf
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(HlError::Codec("truncated ordered key".into()));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

macro_rules! unsigned_sortable {
    ($($t:ty),*) => {$(
        impl SortableKey for $t {
            fn encode_ordered(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_be_bytes());
            }
            fn decode_ordered(buf: &mut &[u8]) -> Result<Self> {
                let n = std::mem::size_of::<$t>();
                Ok(<$t>::from_be_bytes(take(buf, n)?.try_into().unwrap()))
            }
        }
    )*};
}

unsigned_sortable!(u8, u16, u32, u64);

macro_rules! signed_sortable {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SortableKey for $t {
            fn encode_ordered(&self, buf: &mut Vec<u8>) {
                // Flip the sign bit: maps MIN..=MAX onto 0..=uMAX monotonically.
                let flipped = (*self as $u) ^ (1 << (<$t>::BITS - 1));
                buf.extend_from_slice(&flipped.to_be_bytes());
            }
            fn decode_ordered(buf: &mut &[u8]) -> Result<Self> {
                let n = std::mem::size_of::<$t>();
                let flipped = <$u>::from_be_bytes(take(buf, n)?.try_into().unwrap());
                Ok((flipped ^ (1 << (<$t>::BITS - 1))) as $t)
            }
        }
    )*};
}

signed_sortable!((i8, u8), (i16, u16), (i32, u32), (i64, u64));

/// A totally-ordered `f64` key (NaN sorts above +inf, like IEEE totalOrder).
///
/// Raw `f64` is not `Ord`, so jobs that key by a float (e.g. "album with the
/// highest average rating" sorted output) wrap it in `OrderedF64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedF64(pub f64);

impl OrderedF64 {
    fn total_bits(self) -> u64 {
        let bits = self.0.to_bits();
        if bits & (1 << 63) != 0 {
            !bits // negative: flip everything
        } else {
            bits | (1 << 63) // positive: flip sign bit
        }
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.total_bits().cmp(&other.total_bits())
    }
}

impl Writable for OrderedF64 {
    fn write(&self, buf: &mut Vec<u8>) {
        self.0.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(OrderedF64(f64::read(buf)?))
    }
}

impl SortableKey for OrderedF64 {
    fn encode_ordered(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.total_bits().to_be_bytes());
    }
    fn decode_ordered(buf: &mut &[u8]) -> Result<Self> {
        let bits = u64::from_be_bytes(take(buf, 8)?.try_into().unwrap());
        let raw = if bits & (1 << 63) != 0 { bits & !(1 << 63) } else { !bits };
        Ok(OrderedF64(f64::from_bits(raw)))
    }
}

impl SortableKey for String {
    /// UTF-8 bytes compare exactly like `str`; a trailing `0x00` terminator
    /// makes the encoding self-delimiting inside composite keys. Interior
    /// bytes `0x00`/`0x01` are escaped as `0x01 0x01` / `0x01 0x02`, which
    /// preserves lexicographic order (`0x00 < 0x01` maps to
    /// `0x01 0x01 < 0x01 0x02`, both below any unescaped byte `>= 0x02`)
    /// and never requires lookahead past the terminator, so a following
    /// composite field may begin with any byte.
    fn encode_ordered(&self, buf: &mut Vec<u8>) {
        for &b in self.as_bytes() {
            match b {
                0x00 => buf.extend_from_slice(&[0x01, 0x01]),
                0x01 => buf.extend_from_slice(&[0x01, 0x02]),
                _ => buf.push(b),
            }
        }
        buf.push(0);
    }

    fn decode_ordered(buf: &mut &[u8]) -> Result<Self> {
        let mut out = Vec::new();
        loop {
            let (&b, rest) = buf
                .split_first()
                .ok_or_else(|| HlError::Codec("unterminated ordered string".into()))?;
            *buf = rest;
            match b {
                0x00 => break,
                0x01 => {
                    let (&esc, rest2) = buf.split_first().ok_or_else(|| {
                        HlError::Codec("dangling escape in ordered string".into())
                    })?;
                    *buf = rest2;
                    match esc {
                        0x01 => out.push(0x00),
                        0x02 => out.push(0x01),
                        other => {
                            return Err(HlError::Codec(format!(
                                "invalid ordered-string escape 0x01 0x{other:02x}"
                            )))
                        }
                    }
                }
                _ => out.push(b),
            }
        }
        String::from_utf8(out).map_err(|e| HlError::Codec(format!("ordered string UTF-8: {e}")))
    }
}

/// Composite two-part key, ordered by first then second component —
/// the secondary-sort pattern from the course's advanced lecture.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Pair<A, B>(pub A, pub B);

impl<A: Writable, B: Writable> Writable for Pair<A, B> {
    fn write(&self, buf: &mut Vec<u8>) {
        self.0.write(buf);
        self.1.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(Pair(A::read(buf)?, B::read(buf)?))
    }
}

impl<A: SortableKey, B: SortableKey> SortableKey for Pair<A, B> {
    fn encode_ordered(&self, buf: &mut Vec<u8>) {
        self.0.encode_ordered(buf);
        self.1.encode_ordered(buf);
    }
    fn decode_ordered(buf: &mut &[u8]) -> Result<Self> {
        Ok(Pair(A::decode_ordered(buf)?, B::decode_ordered(buf)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn order_preserved<K: SortableKey + std::fmt::Debug>(a: K, b: K) {
        let (ea, eb) = (a.ordered_bytes(), b.ordered_bytes());
        assert_eq!(a.cmp(&b), ea.cmp(&eb), "{a:?} vs {b:?}");
        let mut sa = ea.as_slice();
        assert_eq!(K::decode_ordered(&mut sa).unwrap(), a);
        assert!(sa.is_empty());
    }

    #[test]
    fn signed_edge_cases() {
        let vals = [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX];
        for &a in &vals {
            for &b in &vals {
                order_preserved(a, b);
            }
        }
    }

    #[test]
    fn float_edge_cases() {
        let vals = [
            f64::NEG_INFINITY,
            -1e300,
            -1.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        // The list is written in strictly increasing IEEE total order
        // (note -0.0 < 0.0 there); encodings must be strictly increasing too.
        for w in vals.windows(2) {
            let (ea, eb) = (OrderedF64(w[0]).ordered_bytes(), OrderedF64(w[1]).ordered_bytes());
            assert!(ea < eb, "{} should encode below {}", w[0], w[1]);
        }
        for &a in &vals {
            let oa = OrderedF64(a);
            let bytes = oa.ordered_bytes();
            let mut slice = bytes.as_slice();
            assert_eq!(OrderedF64::decode_ordered(&mut slice).unwrap().0.to_bits(), a.to_bits());
        }
        // NaN sorts at the top and round-trips.
        let nan = OrderedF64(f64::NAN);
        assert!(nan > OrderedF64(f64::INFINITY));
        let mut s = nan.ordered_bytes();
        let mut slice = s.as_mut_slice() as &[u8];
        assert!(OrderedF64::decode_ordered(&mut slice).unwrap().0.is_nan());
    }

    #[test]
    fn writable_round_trips_for_key_types() {
        // The Writable (value) path, distinct from the SortableKey
        // (ordered-encoding) path exercised above.
        for v in [0.0f64, -0.0, 2.5, f64::NEG_INFINITY, 1e300] {
            let k = OrderedF64(v);
            assert_eq!(OrderedF64::from_bytes(&k.to_bytes()).unwrap(), k);
        }
        let p = Pair("carrier".to_string(), -42i64);
        assert_eq!(Pair::<String, i64>::from_bytes(&p.to_bytes()).unwrap(), p);
        let nested = Pair(Pair(1u64, 2u64), "tail".to_string());
        assert_eq!(Pair::<Pair<u64, u64>, String>::from_bytes(&nested.to_bytes()).unwrap(), nested);
    }

    #[test]
    fn string_with_nuls_round_trips_in_order() {
        let a = "a\0b".to_string();
        let b = "a\0c".to_string();
        let c = "ab".to_string();
        order_preserved(a.clone(), b.clone());
        order_preserved(a, c.clone());
        order_preserved(b, c);
    }

    #[test]
    fn pair_orders_by_first_then_second() {
        let p1 = Pair("aa".to_string(), 5i64);
        let p2 = Pair("aa".to_string(), 6i64);
        let p3 = Pair("ab".to_string(), 0i64);
        order_preserved(p1.clone(), p2.clone());
        order_preserved(p2, p3.clone());
        order_preserved(p1, p3);
    }

    #[test]
    fn composite_string_key_self_delimits() {
        // Without the terminator, ("a","b") and ("ab","") would collide.
        let p1 = Pair("a".to_string(), "b".to_string());
        let p2 = Pair("ab".to_string(), "".to_string());
        assert_ne!(p1.ordered_bytes(), p2.ordered_bytes());
        assert_eq!(p1.cmp(&p2), p1.ordered_bytes().cmp(&p2.ordered_bytes()));
    }

    proptest! {
        #[test]
        fn prop_i64_order(a: i64, b: i64) {
            prop_assert_eq!(a.cmp(&b), a.ordered_bytes().cmp(&b.ordered_bytes()));
        }

        #[test]
        fn prop_u64_round_trip(a: u64) {
            let bytes = a.ordered_bytes();
            let mut s = bytes.as_slice();
            prop_assert_eq!(u64::decode_ordered(&mut s).unwrap(), a);
        }

        #[test]
        fn prop_string_order(a in ".*", b in ".*") {
            let (sa, sb) = (a.to_string(), b.to_string());
            prop_assert_eq!(sa.cmp(&sb), sa.ordered_bytes().cmp(&sb.ordered_bytes()));
        }

        #[test]
        fn prop_string_round_trip(a in "\\PC*") {
            let s = a.to_string();
            let bytes = s.ordered_bytes();
            let mut slice = bytes.as_slice();
            prop_assert_eq!(String::decode_ordered(&mut slice).unwrap(), s);
            prop_assert!(slice.is_empty());
        }

        #[test]
        fn prop_f64_order(a: f64, b: f64) {
            let (oa, ob) = (OrderedF64(a), OrderedF64(b));
            prop_assert_eq!(oa.cmp(&ob), oa.ordered_bytes().cmp(&ob.ordered_bytes()));
        }

        #[test]
        fn prop_pair_string_i64_order(a1 in ".*", a2: i64, b1 in ".*", b2: i64) {
            let pa = Pair(a1.to_string(), a2);
            let pb = Pair(b1.to_string(), b2);
            prop_assert_eq!(pa.cmp(&pb), pa.ordered_bytes().cmp(&pb.ordered_bytes()));
        }
    }
}
