//! Error handling for the whole workspace.
//!
//! One enum covers the failure domains the teaching platform models. The
//! variants mirror the errors a Hadoop 1.x user actually sees in the course
//! the paper describes: file-system errors (missing paths, corrupt blocks,
//! safe mode), job errors (failed tasks, bad configuration), and
//! cluster/provisioning errors (ports in use, nodes unavailable).

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, HlError>;

/// The unified error type for HadoopLab.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HlError {
    /// A DFS path does not exist.
    FileNotFound(String),
    /// A DFS path already exists where it must not.
    AlreadyExists(String),
    /// A path component is not a directory (or a directory where a file was
    /// expected).
    NotADirectory(String),
    /// Attempted to read/write a block that the cluster no longer holds a
    /// live replica of.
    MissingBlock {
        /// The block's numeric id.
        block_id: u64,
        /// The owning file (empty when unknown).
        path: String,
    },
    /// Stored data failed its CRC32 verification.
    ChecksumMismatch {
        /// The corrupt block's id.
        block_id: u64,
        /// CRC the metadata expected.
        expected: u32,
        /// CRC the bytes produced.
        actual: u32,
    },
    /// The NameNode is in safe mode and rejects mutations.
    SafeMode(String),
    /// Not enough live DataNodes to satisfy the requested replication.
    InsufficientReplication {
        /// Replicas requested.
        wanted: u32,
        /// Live candidates available.
        available: u32,
    },
    /// A serialized record could not be decoded.
    Codec(String),
    /// A configuration key is missing or malformed.
    Config(String),
    /// A MapReduce job failed (task retries exhausted, bad formats, ...).
    JobFailed(String),
    /// A task attempt failed; the engine may retry it.
    TaskFailed(String),
    /// A daemon could not bind its port (the paper's "ghost daemon" issue).
    PortInUse {
        /// Node whose port is taken.
        node: String,
        /// The contested TCP port.
        port: u16,
    },
    /// The batch scheduler could not satisfy a reservation.
    ResourcesUnavailable(String),
    /// A daemon that should be running is not (crashed or never started).
    DaemonDown(String),
    /// An invariant the simulator relies on was violated — a bug, not a
    /// modeled failure.
    Internal(String),
    /// Local (host) I/O error text, carried as a string so the error stays
    /// `Clone + Eq`.
    Io(String),
}

impl fmt::Display for HlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlError::FileNotFound(p) => write!(f, "No such file or directory: {p}"),
            HlError::AlreadyExists(p) => write!(f, "File exists: {p}"),
            HlError::NotADirectory(p) => write!(f, "Not a directory: {p}"),
            HlError::MissingBlock { block_id, path } => {
                write!(f, "Could not obtain block blk_{block_id} of {path}: no live replicas")
            }
            HlError::ChecksumMismatch { block_id, expected, actual } => write!(
                f,
                "Checksum error in blk_{block_id}: expected {expected:#010x}, got {actual:#010x}"
            ),
            HlError::SafeMode(msg) => write!(f, "NameNode is in safe mode: {msg}"),
            HlError::InsufficientReplication { wanted, available } => {
                write!(f, "could only be replicated to {available} nodes instead of {wanted}")
            }
            HlError::Codec(msg) => write!(f, "codec error: {msg}"),
            HlError::Config(msg) => write!(f, "configuration error: {msg}"),
            HlError::JobFailed(msg) => write!(f, "job failed: {msg}"),
            HlError::TaskFailed(msg) => write!(f, "task failed: {msg}"),
            HlError::PortInUse { node, port } => {
                write!(f, "Address already in use: {node}:{port}")
            }
            HlError::ResourcesUnavailable(msg) => {
                write!(f, "scheduler: resources unavailable: {msg}")
            }
            HlError::DaemonDown(d) => write!(f, "daemon not running: {d}"),
            HlError::Internal(msg) => write!(f, "internal error: {msg}"),
            HlError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for HlError {}

impl From<std::io::Error> for HlError {
    fn from(e: std::io::Error) -> Self {
        HlError::Io(e.to_string())
    }
}

impl HlError {
    /// True when retrying the same operation later could succeed (the class
    /// of error students were told to just resubmit on — which is exactly
    /// what melted the Version-1 cluster).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            HlError::SafeMode(_)
                | HlError::InsufficientReplication { .. }
                | HlError::PortInUse { .. }
                | HlError::ResourcesUnavailable(_)
                | HlError::TaskFailed(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = HlError::MissingBlock { block_id: 42, path: "/data/x".into() };
        assert_eq!(e.to_string(), "Could not obtain block blk_42 of /data/x: no live replicas");
        let e = HlError::PortInUse { node: "node003".into(), port: 50070 };
        assert!(e.to_string().contains("node003:50070"));
    }

    #[test]
    fn retryability_classification() {
        assert!(HlError::SafeMode("starting up".into()).is_retryable());
        assert!(HlError::PortInUse { node: "n".into(), port: 1 }.is_retryable());
        assert!(!HlError::FileNotFound("/x".into()).is_retryable());
        assert!(!HlError::Internal("bug".into()).is_retryable());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("disk on fire");
        let e: HlError = io.into();
        assert_eq!(e, HlError::Io("disk on fire".into()));
    }
}
