//! CRC32 (IEEE 802.3 polynomial), implemented from scratch.
//!
//! HDFS checksums every 512-byte chunk of every block with CRC32 and
//! re-verifies on read and during the DataNode block scanner pass; the
//! "15 minutes of data-integrity checking" students experienced after a
//! cluster restart is this code path. We implement the reflected
//! table-driven algorithm with **slicing-by-8** (the same scheme `zlib`
//! and Hadoop's native CRC use): eight 256-entry tables, built at compile
//! time, fold 8 input bytes per loop iteration instead of 1.

/// Streaming CRC32 state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 lookup tables. `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][b]` is the CRC of byte `b` followed by `k` zero
/// bytes, which lets one iteration advance the state across 8 bytes with
/// 8 independent (pipelinable) table loads.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes. Slicing-by-8: the main loop folds two little-endian
    /// 32-bit words (8 input bytes) into the state per iteration; the
    /// sub-8-byte tail falls back to the byte-at-a-time table.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for ch in &mut chunks {
            let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ crc;
            let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }

    /// One-shot convenience.
    pub fn checksum(data: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(data);
        c.finish()
    }
}

/// Per-chunk checksums for a block, HDFS-style: one CRC32 per
/// `chunk_size` bytes (Hadoop's `io.bytes.per.checksum`, default 512).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkedChecksum {
    /// Bytes covered by each CRC.
    pub chunk_size: usize,
    /// One CRC per chunk, in order; the last chunk may be short.
    pub crcs: Vec<u32>,
}

impl ChunkedChecksum {
    /// Compute chunked checksums over `data`.
    pub fn compute(data: &[u8], chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let crcs = data.chunks(chunk_size).map(Crc32::checksum).collect();
        ChunkedChecksum { chunk_size, crcs }
    }

    /// Verify `data` against the stored CRCs; returns the index of the first
    /// corrupt chunk, or `None` when clean. Length mismatches count as
    /// corruption of the first divergent chunk.
    pub fn verify(&self, data: &[u8]) -> Option<usize> {
        let chunks: Vec<&[u8]> = data.chunks(self.chunk_size).collect();
        if chunks.len() != self.crcs.len() {
            return Some(chunks.len().min(self.crcs.len()));
        }
        for (i, chunk) in chunks.iter().enumerate() {
            if Crc32::checksum(chunk) != self.crcs[i] {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32/IEEE check value.
        assert_eq!(Crc32::checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(Crc32::checksum(b""), 0x0000_0000);
        assert_eq!(Crc32::checksum(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    /// Plain bitwise CRC32, no tables: ground truth for the sliced version.
    fn crc32_bitwise(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn sliced_matches_bitwise_reference_all_lengths() {
        // Every length 0..=64 exercises the 8-byte main loop and each
        // possible tail remainder; offsets shift byte alignment.
        let data: Vec<u8> = (0..192u32).map(|i| (i.wrapping_mul(167) >> 3) as u8).collect();
        for off in 0..8 {
            for len in 0..=64 {
                let slice = &data[off..off + len];
                assert_eq!(
                    Crc32::checksum(slice),
                    crc32_bitwise(slice),
                    "mismatch at off={off} len={len}"
                );
            }
        }
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(97) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), Crc32::checksum(&data));
    }

    #[test]
    fn chunked_detects_single_bit_flip() {
        let mut data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let sums = ChunkedChecksum::compute(&data, 512);
        assert_eq!(sums.crcs.len(), 8);
        assert_eq!(sums.verify(&data), None);
        data[2048 + 13] ^= 0x01; // flip one bit in chunk 4
        assert_eq!(sums.verify(&data), Some(4));
    }

    #[test]
    fn chunked_detects_truncation_and_growth() {
        let data = vec![7u8; 1500];
        let sums = ChunkedChecksum::compute(&data, 512);
        assert_eq!(sums.crcs.len(), 3);
        assert!(sums.verify(&data[..1000]).is_some());
        let mut longer = data.clone();
        longer.extend_from_slice(&[1, 2, 3]);
        assert!(sums.verify(&longer).is_some());
    }

    #[test]
    fn short_final_chunk_is_covered() {
        let data = vec![9u8; 513];
        let sums = ChunkedChecksum::compute(&data, 512);
        assert_eq!(sums.crcs.len(), 2);
        let mut tweaked = data.clone();
        tweaked[512] = 8;
        assert_eq!(sums.verify(&tweaked), Some(1));
    }
}
