//! CRC32 (IEEE 802.3 polynomial), implemented from scratch.
//!
//! HDFS checksums every 512-byte chunk of every block with CRC32 and
//! re-verifies on read and during the DataNode block scanner pass; the
//! "15 minutes of data-integrity checking" students experienced after a
//! cluster restart is this code path. We implement the classic reflected
//! table-driven algorithm (the same one `zlib` and Hadoop use).

/// Streaming CRC32 state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }

    /// One-shot convenience.
    pub fn checksum(data: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(data);
        c.finish()
    }
}

/// Per-chunk checksums for a block, HDFS-style: one CRC32 per
/// `chunk_size` bytes (Hadoop's `io.bytes.per.checksum`, default 512).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkedChecksum {
    /// Bytes covered by each CRC.
    pub chunk_size: usize,
    /// One CRC per chunk, in order; the last chunk may be short.
    pub crcs: Vec<u32>,
}

impl ChunkedChecksum {
    /// Compute chunked checksums over `data`.
    pub fn compute(data: &[u8], chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let crcs = data.chunks(chunk_size).map(Crc32::checksum).collect();
        ChunkedChecksum { chunk_size, crcs }
    }

    /// Verify `data` against the stored CRCs; returns the index of the first
    /// corrupt chunk, or `None` when clean. Length mismatches count as
    /// corruption of the first divergent chunk.
    pub fn verify(&self, data: &[u8]) -> Option<usize> {
        let chunks: Vec<&[u8]> = data.chunks(self.chunk_size).collect();
        if chunks.len() != self.crcs.len() {
            return Some(chunks.len().min(self.crcs.len()));
        }
        for (i, chunk) in chunks.iter().enumerate() {
            if Crc32::checksum(chunk) != self.crcs[i] {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32/IEEE check value.
        assert_eq!(Crc32::checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(Crc32::checksum(b""), 0x0000_0000);
        assert_eq!(Crc32::checksum(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(97) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), Crc32::checksum(&data));
    }

    #[test]
    fn chunked_detects_single_bit_flip() {
        let mut data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let sums = ChunkedChecksum::compute(&data, 512);
        assert_eq!(sums.crcs.len(), 8);
        assert_eq!(sums.verify(&data), None);
        data[2048 + 13] ^= 0x01; // flip one bit in chunk 4
        assert_eq!(sums.verify(&data), Some(4));
    }

    #[test]
    fn chunked_detects_truncation_and_growth() {
        let data = vec![7u8; 1500];
        let sums = ChunkedChecksum::compute(&data, 512);
        assert_eq!(sums.crcs.len(), 3);
        assert!(sums.verify(&data[..1000]).is_some());
        let mut longer = data.clone();
        longer.extend_from_slice(&[1, 2, 3]);
        assert!(sums.verify(&longer).is_some());
    }

    #[test]
    fn short_final_chunk_is_covered() {
        let data = vec![9u8; 513];
        let sums = ChunkedChecksum::compute(&data, 512);
        assert_eq!(sums.crcs.len(), 2);
        let mut tweaked = data.clone();
        tweaked[512] = 8;
        assert_eq!(sums.verify(&tweaked), Some(1));
    }
}
