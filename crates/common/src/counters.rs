//! Job and file-system counters.
//!
//! The course's combiner lecture has students read the **final MapReduce job
//! report** to see reduced network traffic, and the JobTracker "web UI" to
//! see increased map time — both of which are rendered from counters. This
//! module reproduces Hadoop's counter model: named counters in named
//! groups, merged upward from task → job.

use std::collections::BTreeMap;
use std::fmt;

/// Well-known task counters (Hadoop's `Task Counters` group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaskCounter {
    /// Records read by mappers.
    MapInputRecords,
    /// Records emitted by mappers (pre-combine).
    MapOutputRecords,
    /// Serialized bytes of map output (post-combine).
    MapOutputBytes,
    /// Records fed into combiner invocations.
    CombineInputRecords,
    /// Records the combiner emitted.
    CombineOutputRecords,
    /// Distinct keys seen by reducers.
    ReduceInputGroups,
    /// Values seen by reducers.
    ReduceInputRecords,
    /// Records reducers emitted.
    ReduceOutputRecords,
    /// Bytes fetched by reducers in the shuffle.
    ReduceShuffleBytes,
    /// Records written by spill passes (map side).
    SpilledRecords,
}

impl TaskCounter {
    /// Display name matching the Hadoop job report.
    pub fn name(self) -> &'static str {
        match self {
            TaskCounter::MapInputRecords => "Map input records",
            TaskCounter::MapOutputRecords => "Map output records",
            TaskCounter::MapOutputBytes => "Map output bytes",
            TaskCounter::CombineInputRecords => "Combine input records",
            TaskCounter::CombineOutputRecords => "Combine output records",
            TaskCounter::ReduceInputGroups => "Reduce input groups",
            TaskCounter::ReduceInputRecords => "Reduce input records",
            TaskCounter::ReduceOutputRecords => "Reduce output records",
            TaskCounter::ReduceShuffleBytes => "Reduce shuffle bytes",
            TaskCounter::SpilledRecords => "Spilled Records",
        }
    }
}

/// Well-known file-system counters (Hadoop's `FileSystemCounters` group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FileSystemCounter {
    /// Bytes read from HDFS (map input).
    HdfsBytesRead,
    /// Bytes written to HDFS (reduce output).
    HdfsBytesWritten,
    /// Bytes read from node-local files (spill merges).
    FileBytesRead,
    /// Bytes written to node-local files (spills).
    FileBytesWritten,
    /// Bytes that crossed a rack boundary — the quantity data locality
    /// minimizes (not a stock Hadoop counter; added for the Figure 1/2
    /// experiments).
    RemoteBytesRead,
}

impl FileSystemCounter {
    /// Display name matching the Hadoop job report.
    pub fn name(self) -> &'static str {
        match self {
            FileSystemCounter::HdfsBytesRead => "HDFS_BYTES_READ",
            FileSystemCounter::HdfsBytesWritten => "HDFS_BYTES_WRITTEN",
            FileSystemCounter::FileBytesRead => "FILE_BYTES_READ",
            FileSystemCounter::FileBytesWritten => "FILE_BYTES_WRITTEN",
            FileSystemCounter::RemoteBytesRead => "REMOTE_BYTES_READ",
        }
    }
}

const TASK_GROUP: &str = "Map-Reduce Framework";
const FS_GROUP: &str = "FileSystemCounters";

/// A two-level `group → counter → u64` map with merge semantics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    groups: BTreeMap<String, BTreeMap<String, u64>>,
}

impl Counters {
    /// Empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter in an arbitrary group (user counters, the
    /// Hadoop `Reporter.incrCounter` path).
    pub fn incr(&mut self, group: &str, counter: &str, delta: u64) {
        *self
            .groups
            .entry(group.to_string())
            .or_default()
            .entry(counter.to_string())
            .or_default() += delta;
    }

    /// Add to a well-known task counter.
    pub fn incr_task(&mut self, c: TaskCounter, delta: u64) {
        self.incr(TASK_GROUP, c.name(), delta);
    }

    /// Add to a well-known file-system counter.
    pub fn incr_fs(&mut self, c: FileSystemCounter, delta: u64) {
        self.incr(FS_GROUP, c.name(), delta);
    }

    /// Ensure a counter (and its group) exists at 0 without changing its
    /// value. Hadoop's job report prints every registered counter even
    /// when it never fired; call this at task setup for counters the
    /// report must always show.
    pub fn touch(&mut self, group: &str, counter: &str) {
        self.groups.entry(group.to_string()).or_default().entry(counter.to_string()).or_default();
    }

    /// Register a well-known task counter at 0 (see [`Counters::touch`]).
    pub fn touch_task(&mut self, c: TaskCounter) {
        self.touch(TASK_GROUP, c.name());
    }

    /// Read any counter (0 when never incremented).
    pub fn get(&self, group: &str, counter: &str) -> u64 {
        self.groups.get(group).and_then(|g| g.get(counter)).copied().unwrap_or(0)
    }

    /// Read a well-known task counter.
    pub fn task(&self, c: TaskCounter) -> u64 {
        self.get(TASK_GROUP, c.name())
    }

    /// Read a well-known file-system counter.
    pub fn fs(&self, c: FileSystemCounter) -> u64 {
        self.get(FS_GROUP, c.name())
    }

    /// Merge another counter set into this one (summing), the task→job
    /// aggregation step.
    pub fn merge(&mut self, other: &Counters) {
        for (group, counters) in &other.groups {
            let g = self.groups.entry(group.clone()).or_default();
            for (name, value) in counters {
                *g.entry(name.clone()).or_default() += value;
            }
        }
    }

    /// Iterate `(group, counter, value)` in display order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.groups
            .iter()
            .flat_map(|(g, cs)| cs.iter().map(move |(c, v)| (g.as_str(), c.as_str(), *v)))
    }

    /// True when nothing has been counted.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

impl fmt::Display for Counters {
    /// Renders like the tail of a `hadoop jar` run:
    ///
    /// ```text
    /// Counters: 5
    ///   Map-Reduce Framework
    ///     Map input records=1000
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total: usize = self.groups.values().map(|g| g.len()).sum();
        writeln!(f, "Counters: {total}")?;
        for (group, counters) in &self.groups {
            writeln!(f, "  {group}")?;
            for (name, value) in counters {
                writeln!(f, "    {name}={value}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incr_and_get() {
        let mut c = Counters::new();
        assert_eq!(c.task(TaskCounter::MapInputRecords), 0);
        c.incr_task(TaskCounter::MapInputRecords, 10);
        c.incr_task(TaskCounter::MapInputRecords, 5);
        assert_eq!(c.task(TaskCounter::MapInputRecords), 15);
        c.incr_fs(FileSystemCounter::HdfsBytesRead, 4096);
        assert_eq!(c.fs(FileSystemCounter::HdfsBytesRead), 4096);
        c.incr("My Group", "widgets", 2);
        assert_eq!(c.get("My Group", "widgets"), 2);
    }

    #[test]
    fn touch_registers_zero_without_incrementing() {
        let mut c = Counters::new();
        assert!(c.is_empty());
        c.touch_task(TaskCounter::MapOutputBytes);
        assert!(!c.is_empty());
        assert_eq!(c.task(TaskCounter::MapOutputBytes), 0);
        assert!(c.to_string().contains("    Map output bytes=0\n"));
        // Touching an existing counter must not disturb its value.
        c.incr_task(TaskCounter::MapOutputBytes, 9);
        c.touch_task(TaskCounter::MapOutputBytes);
        assert_eq!(c.task(TaskCounter::MapOutputBytes), 9);
    }

    #[test]
    fn merge_sums_across_groups() {
        let mut a = Counters::new();
        a.incr_task(TaskCounter::MapOutputBytes, 100);
        a.incr("G", "x", 1);
        let mut b = Counters::new();
        b.incr_task(TaskCounter::MapOutputBytes, 50);
        b.incr("G", "y", 7);
        a.merge(&b);
        assert_eq!(a.task(TaskCounter::MapOutputBytes), 150);
        assert_eq!(a.get("G", "x"), 1);
        assert_eq!(a.get("G", "y"), 7);
    }

    #[test]
    fn display_matches_job_report_shape() {
        let mut c = Counters::new();
        c.incr_task(TaskCounter::MapInputRecords, 1000);
        c.incr_fs(FileSystemCounter::HdfsBytesRead, 64);
        let text = c.to_string();
        assert!(text.starts_with("Counters: 2\n"));
        assert!(text.contains("  Map-Reduce Framework\n"));
        assert!(text.contains("    Map input records=1000\n"));
        assert!(text.contains("    HDFS_BYTES_READ=64\n"));
    }

    #[test]
    fn iter_is_deterministic() {
        let mut c = Counters::new();
        c.incr("B", "b", 2);
        c.incr("A", "a", 1);
        let items: Vec<_> = c.iter().collect();
        assert_eq!(items, vec![("A", "a", 1), ("B", "b", 2)]);
    }
}
