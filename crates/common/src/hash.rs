//! Hashing for partitioners and hash maps.
//!
//! MapReduce's default `HashPartitioner` sends a key to
//! `hash(key) mod num_reduces`. We hash the *serialized* key bytes with
//! FNV-1a — fast, dependency-free, and stable across platforms, which keeps
//! every experiment deterministic (a per-process-seeded SipHash would not
//! be).

/// 64-bit FNV-1a over a byte slice.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Default partition assignment: FNV-1a of the serialized key, modulo the
/// reduce count. Mirrors Hadoop's `HashPartitioner`.
#[inline]
pub fn default_partition(key_bytes: &[u8], num_partitions: usize) -> usize {
    debug_assert!(num_partitions > 0);
    (fnv1a(key_bytes) % num_partitions as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"hello"), 0xa430_d846_80aa_bd0b);
    }

    #[test]
    fn partition_in_range_and_deterministic() {
        for n in 1..17usize {
            for i in 0..1000u32 {
                let key = i.to_be_bytes();
                let p = default_partition(&key, n);
                assert!(p < n);
                assert_eq!(p, default_partition(&key, n));
            }
        }
    }

    #[test]
    fn partition_spread_is_roughly_uniform() {
        let n = 8;
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for i in 0..8000u32 {
            *counts.entry(default_partition(format!("key-{i}").as_bytes(), n)).or_default() += 1;
        }
        for p in 0..n {
            let c = counts.get(&p).copied().unwrap_or(0);
            // Expected 1000 per bucket; allow generous slack.
            assert!((700..1300).contains(&c), "partition {p} got {c}");
        }
    }
}
