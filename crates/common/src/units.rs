//! Byte-size constants, parsing, and human-readable formatting.
//!
//! The paper speaks in dataset sizes (250 MB MovieLens, 10 GB Yahoo, 12 GB
//! Airline, 171 GB Google trace) and hardware sizes (64 GB RAM, 850 GB HDD);
//! this module gives those numbers one well-tested home.

use std::fmt;

use crate::error::{HlError, Result};

/// Byte-size helpers. All constants are in bytes.
pub struct ByteSize;

impl ByteSize {
    /// One kibibyte.
    pub const KIB: u64 = 1024;
    /// One mebibyte.
    pub const MIB: u64 = 1024 * 1024;
    /// One gibibyte.
    pub const GIB: u64 = 1024 * 1024 * 1024;
    /// One tebibyte.
    pub const TIB: u64 = 1024 * 1024 * 1024 * 1024;

    /// Format a byte count the way `hadoop fs -du -h` does: the largest
    /// binary unit that keeps the mantissa below 1024, one decimal.
    pub fn display(bytes: u64) -> DisplayBytes {
        DisplayBytes(bytes)
    }

    /// Parse sizes like `64m`, `10g`, `512k`, `171G`, `850gb`, or plain byte
    /// counts. Case-insensitive; optional trailing `b`.
    pub fn parse(s: &str) -> Result<u64> {
        let s = s.trim();
        if s.is_empty() {
            return Err(HlError::Config("empty size string".into()));
        }
        let lower = s.to_ascii_lowercase();
        let lower = lower.strip_suffix('b').unwrap_or(&lower);
        let (num, mult) = match lower.as_bytes().last() {
            Some(b'k') => (&lower[..lower.len() - 1], Self::KIB),
            Some(b'm') => (&lower[..lower.len() - 1], Self::MIB),
            Some(b'g') => (&lower[..lower.len() - 1], Self::GIB),
            Some(b't') => (&lower[..lower.len() - 1], Self::TIB),
            _ => (lower, 1),
        };
        let value: f64 =
            num.trim().parse().map_err(|_| HlError::Config(format!("cannot parse size {s:?}")))?;
        if value < 0.0 {
            return Err(HlError::Config(format!("negative size {s:?}")));
        }
        Ok((value * mult as f64).round() as u64)
    }
}

/// Lazily-formatted byte count (see [`ByteSize::display`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisplayBytes(pub u64);

impl fmt::Display for DisplayBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b < ByteSize::KIB {
            return write!(f, "{b} B");
        }
        let (value, unit) = if b >= ByteSize::TIB {
            (b as f64 / ByteSize::TIB as f64, "TiB")
        } else if b >= ByteSize::GIB {
            (b as f64 / ByteSize::GIB as f64, "GiB")
        } else if b >= ByteSize::MIB {
            (b as f64 / ByteSize::MIB as f64, "MiB")
        } else {
            (b as f64 / ByteSize::KIB as f64, "KiB")
        };
        write!(f, "{value:.1} {unit}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_course_sizes() {
        assert_eq!(ByteSize::parse("64m").unwrap(), 64 * ByteSize::MIB);
        assert_eq!(ByteSize::parse("171G").unwrap(), 171 * ByteSize::GIB);
        assert_eq!(ByteSize::parse("850gb").unwrap(), 850 * ByteSize::GIB);
        assert_eq!(ByteSize::parse("0.5k").unwrap(), 512);
        assert_eq!(ByteSize::parse("12345").unwrap(), 12345);
        assert_eq!(ByteSize::parse(" 2t ").unwrap(), 2 * ByteSize::TIB);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ByteSize::parse("").is_err());
        assert!(ByteSize::parse("fast").is_err());
        assert!(ByteSize::parse("-5g").is_err());
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(ByteSize::display(512).to_string(), "512 B");
        assert_eq!(ByteSize::display(64 * ByteSize::MIB).to_string(), "64.0 MiB");
        assert_eq!(ByteSize::display(171 * ByteSize::GIB).to_string(), "171.0 GiB");
        assert_eq!(ByteSize::display(1536).to_string(), "1.5 KiB");
    }

    #[test]
    fn display_parse_round_trip_on_exact_units() {
        for &b in &[ByteSize::KIB, ByteSize::MIB, 64 * ByteSize::MIB, 10 * ByteSize::GIB] {
            let shown = ByteSize::display(b).to_string();
            let (num, unit) = shown.split_once(' ').unwrap();
            let suffix = match unit {
                "B" => "",
                "KiB" => "k",
                "MiB" => "m",
                "GiB" => "g",
                "TiB" => "t",
                _ => panic!("unit {unit}"),
            };
            assert_eq!(ByteSize::parse(&format!("{num}{suffix}")).unwrap(), b);
        }
    }
}
