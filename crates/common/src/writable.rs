//! The `Writable` serialization protocol.
//!
//! Hadoop moves every key and value between mappers, the shuffle, and
//! reducers as `Writable` objects; the course's second example and first
//! assignment both hinge on students implementing a *custom value class*
//! (a pair of partial sums for the averaging combiner, a
//! `(count, genre-histogram)` record for the most-active-user question).
//! This module is the Rust analog: a compact, explicit, versionless binary
//! protocol with LEB128 varints, implemented for the primitives and
//! composition forms (tuples, vectors, options) user types build on.

use crate::error::{HlError, Result};

/// A type that can serialize itself to bytes and back.
///
/// Implementations must round-trip: `read(&mut write(x)) == x`, consuming
/// exactly the bytes they wrote (so values can be concatenated in streams,
/// which is how spill files and shuffle segments are laid out).
///
/// ```
/// use hl_common::writable::Writable;
/// let pair = ("UA".to_string(), 42u64);
/// let bytes = pair.to_bytes();
/// assert_eq!(<(String, u64)>::from_bytes(&bytes).unwrap(), pair);
/// ```
pub trait Writable: Sized {
    /// Append this value's encoding to `buf`.
    fn write(&self, buf: &mut Vec<u8>);
    /// Decode one value from the front of `buf`, advancing it.
    fn read(buf: &mut &[u8]) -> Result<Self>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write(&mut buf);
        buf
    }

    /// Decode from a complete buffer, requiring full consumption.
    fn from_bytes(mut bytes: &[u8]) -> Result<Self> {
        let v = Self::read(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(HlError::Codec(format!("{} trailing bytes after value", bytes.len())));
        }
        Ok(v)
    }
}

fn eof(what: &str) -> HlError {
    HlError::Codec(format!("unexpected end of input reading {what}"))
}

/// Write an unsigned LEB128 varint.
pub fn write_vu64(mut v: u64, buf: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 varint.
pub fn read_vu64(buf: &mut &[u8]) -> Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = buf.split_first().ok_or_else(|| eof("varint"))?;
        *buf = rest;
        if shift == 63 && byte > 1 {
            return Err(HlError::Codec("varint overflows u64".into()));
        }
        value |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(HlError::Codec("varint longer than 10 bytes".into()));
        }
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(eof(what));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

macro_rules! fixed_int_writable {
    ($($t:ty),*) => {$(
        impl Writable for $t {
            fn write(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_be_bytes());
            }
            fn read(buf: &mut &[u8]) -> Result<Self> {
                let n = std::mem::size_of::<$t>();
                let bytes = take(buf, n, stringify!($t))?;
                Ok(<$t>::from_be_bytes(bytes.try_into().unwrap()))
            }
        }
    )*};
}

fixed_int_writable!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Writable for f64 {
    fn write(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_be_bytes());
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(f64::from_be_bytes(take(buf, 8, "f64")?.try_into().unwrap()))
    }
}

impl Writable for f32 {
    fn write(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_be_bytes());
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(f32::from_be_bytes(take(buf, 4, "f32")?.try_into().unwrap()))
    }
}

impl Writable for bool {
    fn write(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        match take(buf, 1, "bool")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(HlError::Codec(format!("invalid bool byte {b}"))),
        }
    }
}

/// `NullWritable`: a zero-byte placeholder for jobs that only care about
/// keys (or only values).
impl Writable for () {
    fn write(&self, _buf: &mut Vec<u8>) {}
    fn read(_buf: &mut &[u8]) -> Result<Self> {
        Ok(())
    }
}

impl Writable for String {
    fn write(&self, buf: &mut Vec<u8>) {
        write_vu64(self.len() as u64, buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        let len = read_vu64(buf)? as usize;
        let bytes = take(buf, len, "string body")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| HlError::Codec(format!("invalid UTF-8 in Text: {e}")))
    }
}

impl<T: Writable> Writable for Option<T> {
    fn write(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.write(buf);
            }
        }
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        match take(buf, 1, "option tag")?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::read(buf)?)),
            b => Err(HlError::Codec(format!("invalid Option tag {b}"))),
        }
    }
}

impl<A: Writable, B: Writable> Writable for (A, B) {
    fn write(&self, buf: &mut Vec<u8>) {
        self.0.write(buf);
        self.1.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok((A::read(buf)?, B::read(buf)?))
    }
}

impl<A: Writable, B: Writable, C: Writable> Writable for (A, B, C) {
    fn write(&self, buf: &mut Vec<u8>) {
        self.0.write(buf);
        self.1.write(buf);
        self.2.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok((A::read(buf)?, B::read(buf)?, C::read(buf)?))
    }
}

impl<T: Writable> Writable for Vec<T> {
    fn write(&self, buf: &mut Vec<u8>) {
        write_vu64(self.len() as u64, buf);
        for item in self {
            item.write(buf);
        }
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        let len = read_vu64(buf)? as usize;
        // Guard against hostile lengths: cap the preallocation, let push grow.
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::read(buf)?);
        }
        Ok(out)
    }
}

/// Convenience alias matching Hadoop's `Text` type name used throughout the
/// course slides.
pub type Text = String;

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Writable + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(-1i32);
        round_trip(3.25f64);
        round_trip(f64::NEG_INFINITY);
        round_trip(1.5f32);
        round_trip(f32::MAX);
        round_trip(true);
        round_trip(());
        round_trip("".to_string());
        round_trip("naïve UTF-8 ☂".to_string());
        round_trip(vec![1u8, 2, 3]);
        round_trip(Option::<u32>::None);
        round_trip(Some("x".to_string()));
        round_trip(("carrier".to_string(), 42i64));
        round_trip(("k".to_string(), 1u32, 2.5f64));
        round_trip(vec![("a".to_string(), 1u64), ("b".to_string(), 2u64)]);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_vu64(v, &mut buf);
            let mut slice = buf.as_slice();
            assert_eq!(read_vu64(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
        // single-byte values really are single bytes
        let mut buf = Vec::new();
        write_vu64(5, &mut buf);
        assert_eq!(buf, vec![5]);
    }

    #[test]
    fn varint_rejects_overflow() {
        let eleven = [0x80u8; 11];
        assert!(read_vu64(&mut &eleven[..]).is_err());
        // 10 bytes encoding > u64::MAX
        let too_big = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        assert!(read_vu64(&mut &too_big[..]).is_err());
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let full = ("hello".to_string(), 123u64).to_bytes();
        for cut in 0..full.len() {
            let res = <(String, u64)>::from_bytes(&full[..cut]);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected_by_from_bytes() {
        let mut bytes = 7u32.to_bytes();
        bytes.push(0);
        assert!(u32::from_bytes(&bytes).is_err());
    }

    #[test]
    fn stream_concatenation_parses_in_sequence() {
        let mut buf = Vec::new();
        for i in 0..10u32 {
            (format!("k{i}"), i).write(&mut buf);
        }
        let mut slice = buf.as_slice();
        for i in 0..10u32 {
            let (k, v) = <(String, u32)>::read(&mut slice).unwrap();
            assert_eq!((k, v), (format!("k{i}"), i));
        }
        assert!(slice.is_empty());
    }

    #[test]
    fn invalid_utf8_is_codec_error() {
        let mut buf = Vec::new();
        write_vu64(2, &mut buf);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(String::from_bytes(&buf), Err(HlError::Codec(_))));
    }

    #[test]
    fn hostile_vec_length_does_not_oom() {
        // Claims u64::MAX elements with no bodies: must error, not allocate.
        let mut buf = Vec::new();
        write_vu64(u64::MAX, &mut buf);
        assert!(Vec::<u64>::from_bytes(&buf).is_err());
    }
}
