//! # hl-common
//!
//! Shared substrate for the HadoopLab workspace: error types, a
//! Hadoop-style string [`Configuration`][config::Configuration], the
//! [`Writable`][writable::Writable] serialization protocol with
//! order-preserving key encodings, CRC32 checksums, job/file-system
//! [`Counters`][counters::Counters], virtual [`SimTime`][simtime::SimTime],
//! rack [`topology`], and partition [`hash`]ing.
//!
//! Everything here is dependency-light and purely computational so that the
//! higher crates (`hl-dfs`, `hl-mapreduce`, `hl-cluster`, ...) can share one
//! vocabulary without pulling in the simulator.

#![warn(missing_docs)]

pub mod checksum;
pub mod config;
pub mod counters;
pub mod error;
pub mod hash;
pub mod keys;
pub mod simtime;
pub mod topology;
pub mod units;
pub mod writable;

pub use error::{HlError, Result};
pub use simtime::{SimDuration, SimTime};

/// Crate-wide prelude re-exporting the types nearly every consumer needs.
pub mod prelude {
    pub use crate::checksum::Crc32;
    pub use crate::config::Configuration;
    pub use crate::counters::{Counters, FileSystemCounter, TaskCounter};
    pub use crate::error::{HlError, Result};
    pub use crate::hash::fnv1a;
    pub use crate::keys::SortableKey;
    pub use crate::simtime::{SimDuration, SimTime};
    pub use crate::topology::{NodeId, RackId, Topology};
    pub use crate::units::ByteSize;
    pub use crate::writable::{Text, Writable};
}
