//! Hadoop-style string-keyed configuration.
//!
//! Hadoop 1.x configures everything through `*-site.xml` key/value pairs
//! (`dfs.block.size`, `dfs.replication`, `mapred.reduce.tasks`, ...). The
//! course's myHadoop scripts work by rewriting exactly these keys, so the
//! reproduction keeps the same shape: a `Configuration` is an ordered map of
//! string keys to string values with typed accessors and defaults.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{HlError, Result};
use crate::units::ByteSize;

/// Well-known configuration keys, mirroring Hadoop 1.2.1 names.
pub mod keys {
    /// HDFS block size in bytes (Hadoop 1.x default: 64 MB).
    pub const DFS_BLOCK_SIZE: &str = "dfs.block.size";
    /// Target replication factor (default 3).
    pub const DFS_REPLICATION: &str = "dfs.replication";
    /// Fraction of blocks that must be reported before safe mode may exit.
    pub const DFS_SAFEMODE_THRESHOLD: &str = "dfs.safemode.threshold.pct";
    /// Extra wait after the safe-mode threshold is met, in seconds.
    pub const DFS_SAFEMODE_EXTENSION_SECS: &str = "dfs.safemode.extension";
    /// DataNode heartbeat interval in seconds (default 3).
    pub const DFS_HEARTBEAT_SECS: &str = "dfs.heartbeat.interval";
    /// Heartbeats missed before a DataNode is declared dead (default 200,
    /// i.e. 10 minutes at the 3 s interval — Hadoop's 10m30s recheck).
    pub const DFS_HEARTBEAT_DEAD_AFTER: &str = "dfs.heartbeat.dead.after";
    /// Map slots per TaskTracker (the paper's nodes: dual 8-core).
    pub const MAPRED_MAP_SLOTS: &str = "mapred.tasktracker.map.tasks.maximum";
    /// Reduce slots per TaskTracker.
    pub const MAPRED_REDUCE_SLOTS: &str = "mapred.tasktracker.reduce.tasks.maximum";
    /// Number of reduce tasks for a job.
    pub const MAPRED_REDUCE_TASKS: &str = "mapred.reduce.tasks";
    /// Map-side sort buffer in bytes (io.sort.mb in Hadoop).
    pub const IO_SORT_BYTES: &str = "io.sort.bytes";
    /// Whether speculative execution is enabled.
    pub const MAPRED_SPECULATIVE: &str = "mapred.map.tasks.speculative.execution";
    /// Whether reduce tasks may also be speculated (Hadoop 1.x gates maps
    /// and reduces separately; both default on).
    pub const MAPRED_REDUCE_SPECULATIVE: &str = "mapred.reduce.tasks.speculative.execution";
    /// Late-binding launch threshold, percent: a running task becomes a
    /// speculation candidate when its progress-rate-estimated total
    /// duration exceeds this percentage of the median completed-task
    /// duration (default 150).
    pub const MAPRED_SPECULATIVE_SLOWTASK_PCT: &str = "mapred.speculative.slowtaskthreshold";
    /// Cap on speculative attempts per phase, percent of the phase's task
    /// count (floor 1; Hadoop's speculativecap analog).
    pub const MAPRED_SPECULATIVE_CAP_PCT: &str = "mapred.speculative.cap";
    /// Progress-report quantum in seconds: the estimator only sees task
    /// progress at heartbeat boundaries.
    pub const MAPRED_SPECULATIVE_HEARTBEAT_SECS: &str = "mapred.speculative.heartbeat";
    /// Max attempts per task before the job fails (default 4).
    pub const MAPRED_MAX_ATTEMPTS: &str = "mapred.map.max.attempts";
    /// Write-lease soft limit in seconds: past this another client may
    /// recover the lease (HDFS hardcodes 60 s; we expose it for tests).
    pub const DFS_LEASE_SOFT_LIMIT_SECS: &str = "dfs.lease.soft.limit";
    /// Write-lease hard limit in seconds: past this the NameNode recovers
    /// the lease on its own (HDFS hardcodes 1 h; default here 300 s).
    pub const DFS_LEASE_HARD_LIMIT_SECS: &str = "dfs.lease.hard.limit";
    /// Edit-log ops between automatic fsimage checkpoints (0 disables the
    /// trigger; mirrors `fs.checkpoint.txns` of the secondary NameNode).
    pub const DFS_CHECKPOINT_OPS: &str = "fs.checkpoint.txns";
    /// Failed attempts on one TaskTracker before a job blacklists it.
    pub const MAPRED_MAX_TRACKER_FAILURES: &str = "mapred.max.tracker.failures";
    /// Per-job blacklistings before a TaskTracker is blacklisted globally.
    pub const MAPRED_MAX_TRACKER_BLACKLISTS: &str = "mapred.max.tracker.blacklists";
    /// JobTracker scheduling policy: `fifo`, `fair`, or `capacity`
    /// (mirrors swapping the `mapred.jobtracker.taskScheduler` class).
    pub const MAPRED_SCHEDULER: &str = "mapred.jobtracker.scheduler";
    /// Fair scheduler: seconds a pool may sit below its minimum share
    /// before the scheduler preempts tasks from over-share pools.
    pub const MAPRED_FAIR_PREEMPTION_TIMEOUT_SECS: &str = "mapred.fairscheduler.preemption.timeout";
    /// Capacity scheduler: elastic ceiling for the default queue, in
    /// percent of cluster slots (`maximum-capacity` in Hadoop's
    /// capacity-scheduler.xml).
    pub const MAPRED_CAPACITY_MAX_PCT: &str = "mapred.capacity.maximum-capacity";
    /// Capacity scheduler: per-user share of one queue, in percent of the
    /// queue's slots (`minimum-user-limit-percent`).
    pub const MAPRED_CAPACITY_USER_LIMIT_PCT: &str = "mapred.capacity.user-limit-percent";
    /// Whether map outputs (spills + shuffle transfers) are compressed.
    pub const MAPRED_COMPRESS_MAP_OUTPUT: &str = "mapred.compress.map.output";
    /// Which codec compresses map outputs and job-output files when
    /// compression is on (`none` or `hlz`; the LZO-class analog).
    pub const MAPRED_OUTPUT_COMPRESSION_CODEC: &str = "mapred.output.compression.codec";
}

/// An ordered string key/value configuration with typed accessors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Configuration {
    values: BTreeMap<String, String>,
}

impl Configuration {
    /// An empty configuration (every getter falls back to its default).
    pub fn new() -> Self {
        Self::default()
    }

    /// The stock Hadoop-1.2.1-like defaults the course shipped to students.
    pub fn with_defaults() -> Self {
        let mut c = Self::new();
        c.set(keys::DFS_BLOCK_SIZE, (64 * ByteSize::MIB).to_string());
        c.set(keys::DFS_REPLICATION, "3");
        c.set(keys::DFS_SAFEMODE_THRESHOLD, "0.999");
        c.set(keys::DFS_SAFEMODE_EXTENSION_SECS, "30");
        c.set(keys::DFS_HEARTBEAT_SECS, "3");
        c.set(keys::DFS_HEARTBEAT_DEAD_AFTER, "200");
        c.set(keys::MAPRED_MAP_SLOTS, "8");
        c.set(keys::MAPRED_REDUCE_SLOTS, "4");
        c.set(keys::MAPRED_REDUCE_TASKS, "1");
        c.set(keys::IO_SORT_BYTES, (100 * ByteSize::MIB).to_string());
        c.set(keys::MAPRED_SPECULATIVE, "true");
        c.set(keys::MAPRED_REDUCE_SPECULATIVE, "true");
        c.set(keys::MAPRED_SPECULATIVE_SLOWTASK_PCT, "150");
        c.set(keys::MAPRED_SPECULATIVE_CAP_PCT, "10");
        c.set(keys::MAPRED_SPECULATIVE_HEARTBEAT_SECS, "3");
        c.set(keys::MAPRED_MAX_ATTEMPTS, "4");
        c.set(keys::DFS_LEASE_SOFT_LIMIT_SECS, "60");
        c.set(keys::DFS_LEASE_HARD_LIMIT_SECS, "300");
        c.set(keys::DFS_CHECKPOINT_OPS, "10000");
        c.set(keys::MAPRED_MAX_TRACKER_FAILURES, "4");
        c.set(keys::MAPRED_MAX_TRACKER_BLACKLISTS, "3");
        c.set(keys::MAPRED_SCHEDULER, "fifo");
        c.set(keys::MAPRED_FAIR_PREEMPTION_TIMEOUT_SECS, "30");
        c.set(keys::MAPRED_CAPACITY_MAX_PCT, "100");
        c.set(keys::MAPRED_CAPACITY_USER_LIMIT_PCT, "100");
        c.set(keys::MAPRED_COMPRESS_MAP_OUTPUT, "false");
        c.set(keys::MAPRED_OUTPUT_COMPRESSION_CODEC, "hlz");
        c
    }

    /// Set `key` to `value` (any `Display`able value).
    pub fn set(&mut self, key: &str, value: impl fmt::Display) -> &mut Self {
        self.values.insert(key.to_string(), value.to_string());
        self
    }

    /// Remove a key; returns the previous value if any.
    pub fn unset(&mut self, key: &str) -> Option<String> {
        self.values.remove(key)
    }

    /// Raw string lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// String lookup with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, raw: &str) -> Result<T> {
        raw.parse().map_err(|_| {
            HlError::Config(format!(
                "key {key}: cannot parse {raw:?} as {}",
                std::any::type_name::<T>()
            ))
        })
    }

    /// Integer lookup with default; malformed values are an error.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64> {
        match self.get(key) {
            Some(raw) => self.parse(key, raw),
            None => Ok(default),
        }
    }

    /// `u32` lookup with default.
    pub fn get_u32(&self, key: &str, default: u32) -> Result<u32> {
        match self.get(key) {
            Some(raw) => self.parse(key, raw),
            None => Ok(default),
        }
    }

    /// `usize` lookup with default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize> {
        match self.get(key) {
            Some(raw) => self.parse(key, raw),
            None => Ok(default),
        }
    }

    /// `f64` lookup with default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64> {
        match self.get(key) {
            Some(raw) => self.parse(key, raw),
            None => Ok(default),
        }
    }

    /// Boolean lookup with default; accepts `true/false/1/0/yes/no`.
    pub fn get_bool(&self, key: &str, default: bool) -> Result<bool> {
        match self.get(key) {
            None => Ok(default),
            Some("true") | Some("1") | Some("yes") => Ok(true),
            Some("false") | Some("0") | Some("no") => Ok(false),
            Some(raw) => Err(HlError::Config(format!("key {key}: cannot parse {raw:?} as bool"))),
        }
    }

    /// Merge `other` on top of `self` (other wins), like loading a second
    /// `*-site.xml` on top of the defaults.
    pub fn merge(&mut self, other: &Configuration) {
        for (k, v) in &other.values {
            self.values.insert(k.clone(), v.clone());
        }
    }

    /// Iterate over all pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of explicitly-set keys.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no keys are set.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Configuration {
    /// Renders in the flat `key=value` form the course's setup scripts used.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_hadoop_1x() {
        let c = Configuration::with_defaults();
        assert_eq!(c.get_u64(keys::DFS_BLOCK_SIZE, 0).unwrap(), 64 * 1024 * 1024);
        assert_eq!(c.get_u32(keys::DFS_REPLICATION, 0).unwrap(), 3);
        assert!(c.get_bool(keys::MAPRED_SPECULATIVE, false).unwrap());
    }

    #[test]
    fn typed_getters_and_defaults() {
        let mut c = Configuration::new();
        assert_eq!(c.get_u64("missing", 7).unwrap(), 7);
        c.set("k", 123u64);
        assert_eq!(c.get_u64("k", 0).unwrap(), 123);
        c.set("k", "not-a-number");
        assert!(c.get_u64("k", 0).is_err());
        c.set("flag", "yes");
        assert!(c.get_bool("flag", false).unwrap());
        c.set("flag", "maybe");
        assert!(c.get_bool("flag", false).is_err());
    }

    #[test]
    fn merge_overrides_in_order() {
        let mut base = Configuration::with_defaults();
        let mut site = Configuration::new();
        site.set(keys::DFS_REPLICATION, "2");
        base.merge(&site);
        assert_eq!(base.get_u32(keys::DFS_REPLICATION, 0).unwrap(), 2);
        // untouched keys survive
        assert_eq!(base.get_u32(keys::MAPRED_MAP_SLOTS, 0).unwrap(), 8);
    }

    #[test]
    fn display_round_trips_keys_in_order() {
        let mut c = Configuration::new();
        c.set("b", 2).set("a", 1);
        assert_eq!(c.to_string(), "a=1\nb=2\n");
    }

    #[test]
    fn unset_removes() {
        let mut c = Configuration::new();
        c.set("x", 1);
        assert_eq!(c.unset("x"), Some("1".into()));
        assert_eq!(c.get("x"), None);
        assert!(c.is_empty());
    }
}
