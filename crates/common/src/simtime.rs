//! Virtual time for the discrete-event simulator.
//!
//! HadoopLab executes real map/reduce code over real bytes but *charges*
//! I/O, network, and daemon-protocol time against a deterministic virtual
//! clock, so the paper's hour-scale phenomena (171 GB staging, 15-minute
//! safe-mode restarts) reproduce in milliseconds of wall time.
//!
//! Times are microseconds in a `u64`: integral, totally ordered, and immune
//! to float drift across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual timeline (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Duration since an earlier instant; saturates at zero if `earlier` is
    /// actually later (callers comparing heartbeat timestamps tolerate skew).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reports only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// From whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000)
    }

    /// From whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3600 * 1_000_000)
    }

    /// From fractional seconds; negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Time to move `bytes` at `bytes_per_sec` (the core of the cost model).
    /// A zero/absurd bandwidth charges nothing rather than dividing by zero.
    pub fn for_transfer(bytes: u64, bytes_per_sec: u64) -> Self {
        if bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        // micros = bytes * 1e6 / bw, in u128 to avoid overflow at TiB scale.
        SimDuration((bytes as u128 * 1_000_000 / bytes_per_sec as u128) as u64)
    }

    /// Microseconds in this span.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float (reports only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whole seconds, truncating.
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimDuration {
    /// `1h 02m 03s`, `4m 05s`, `6.25s`, `750ms`, `12us` — the resolution a
    /// job report needs, nothing more.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 3_600_000_000 {
            let s = us / 1_000_000;
            write!(f, "{}h {:02}m {:02}s", s / 3600, (s % 3600) / 60, s % 60)
        } else if us >= 60_000_000 {
            let s = us / 1_000_000;
            write!(f, "{}m {:02}s", s / 60, s % 60)
        } else if us >= 1_000_000 {
            write!(f, "{:.2}s", us as f64 / 1e6)
        } else if us >= 1_000 {
            write!(f, "{}ms", us / 1_000)
        } else {
            write!(f, "{us}us")
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::ZERO + SimDuration::from_secs(90);
        assert_eq!(t.as_micros(), 90_000_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(90));
        assert_eq!(SimTime(5).since(SimTime(9)), SimDuration::ZERO); // saturates
        assert_eq!(SimDuration::from_secs(10) / 4, SimDuration::from_micros(2_500_000));
        assert_eq!(SimDuration::from_millis(3) * 1000, SimDuration::from_secs(3));
    }

    #[test]
    fn transfer_cost_matches_bandwidth_math() {
        // 171 GB over a 1 MB/s virtual link (the paper's crippled VM network)
        // should be about 2 days; over GigE (~117 MiB/s) about 25 minutes.
        let gb171 = 171 * 1024 * 1024 * 1024u64;
        let slow = SimDuration::for_transfer(gb171, 1024 * 1024);
        assert!(slow > SimDuration::from_hours(40) && slow < SimDuration::from_hours(60));
        let gige = SimDuration::for_transfer(gb171, 117 * 1024 * 1024);
        assert!(gige > SimDuration::from_mins(20) && gige < SimDuration::from_mins(30));
        assert_eq!(SimDuration::for_transfer(123, 0), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5), SimDuration::from_millis(1500));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_hours(1).to_string(), "1h 00m 00s");
        assert_eq!(
            (SimDuration::from_hours(1) + SimDuration::from_secs(125)).to_string(),
            "1h 02m 05s"
        );
        assert_eq!(SimDuration::from_secs(245).to_string(), "4m 05s");
        assert_eq!(SimDuration::from_millis(6250).to_string(), "6.25s");
        assert_eq!(SimDuration::from_millis(750).to_string(), "750ms");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimTime(1_000_000).to_string(), "t=1.00s");
    }
}
