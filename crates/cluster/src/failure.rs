//! Failure models for the paper's Version-1 meltdown.
//!
//! Section II-A: student jobs "contained run time errors that created
//! memory leaks on the Java heap memory and consequently crashed the task
//! tracker and data node daemons". The drill in `hl-core` replays that
//! story; this module supplies the mechanisms:
//!
//! * [`HeapLeakModel`] — daemon heap grows per buggy task; crossing the
//!   limit is an OOM crash;
//! * [`DaemonKind`]/[`DaemonHealth`] — which daemon on which node is up;
//! * [`BitRot`] — seeded random block corruption for checksum/scanner
//!   tests.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hl_common::prelude::*;
use hl_common::units::ByteSize;

/// The four Hadoop 1.x daemons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DaemonKind {
    /// The HDFS metadata master.
    NameNode,
    /// An HDFS block-storage daemon.
    DataNode,
    /// The MapReduce master.
    JobTracker,
    /// A per-node MapReduce worker daemon.
    TaskTracker,
}

impl DaemonKind {
    /// Lowercase script name (`start-dfs.sh` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            DaemonKind::NameNode => "namenode",
            DaemonKind::DataNode => "datanode",
            DaemonKind::JobTracker => "jobtracker",
            DaemonKind::TaskTracker => "tasktracker",
        }
    }
}

/// Models a daemon JVM whose heap grows when buggy tasks leak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapLeakModel {
    /// Configured JVM heap ceiling (−Xmx), bytes.
    pub heap_limit: u64,
    /// Resident heap after a clean start, bytes.
    pub base_heap: u64,
    /// Bytes leaked into the daemon per buggy task it hosts.
    pub leak_per_buggy_task: u64,
    current: u64,
}

impl HeapLeakModel {
    /// Hadoop-1-era defaults: 1 GB daemon heap, ~200 MB resident after
    /// start, and a leaky student task pinning ~64 MB per run.
    pub fn hadoop1_default() -> Self {
        Self::new(ByteSize::GIB, 200 * ByteSize::MIB, 64 * ByteSize::MIB)
    }

    /// Custom model.
    pub fn new(heap_limit: u64, base_heap: u64, leak_per_buggy_task: u64) -> Self {
        HeapLeakModel { heap_limit, base_heap, leak_per_buggy_task, current: base_heap }
    }

    /// Host one task; `buggy` tasks leak. Returns `true` when the daemon
    /// OOM-crashes on this task.
    pub fn host_task(&mut self, buggy: bool) -> bool {
        if buggy {
            self.current = self.current.saturating_add(self.leak_per_buggy_task);
        }
        self.current > self.heap_limit
    }

    /// Current modeled resident heap.
    pub fn current_heap(&self) -> u64 {
        self.current
    }

    /// How many consecutive buggy tasks a fresh daemon survives.
    pub fn buggy_tasks_to_crash(&self) -> u64 {
        if self.leak_per_buggy_task == 0 {
            return u64::MAX;
        }
        (self.heap_limit - self.base_heap) / self.leak_per_buggy_task + 1
    }

    /// Restart the JVM: heap back to base.
    pub fn restart(&mut self) {
        self.current = self.base_heap;
    }
}

/// Liveness of one daemon instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonHealth {
    /// Which daemon.
    pub kind: DaemonKind,
    /// Where it runs.
    pub node: NodeId,
    /// Whether it is currently up.
    pub alive: bool,
    /// When it last (re)started.
    pub started_at: SimTime,
    /// Crash count, for reports.
    pub crashes: u32,
    /// Its heap model.
    pub heap: HeapLeakModel,
}

impl DaemonHealth {
    /// A freshly started daemon.
    pub fn new(kind: DaemonKind, node: NodeId, now: SimTime) -> Self {
        DaemonHealth {
            kind,
            node,
            alive: true,
            started_at: now,
            crashes: 0,
            heap: HeapLeakModel::hadoop1_default(),
        }
    }

    /// Host a task; on OOM the daemon dies.
    pub fn host_task(&mut self, buggy: bool) -> bool {
        if !self.alive {
            return false;
        }
        if self.heap.host_task(buggy) {
            self.alive = false;
            self.crashes += 1;
            true
        } else {
            false
        }
    }

    /// Restart the daemon at `now`.
    pub fn restart(&mut self, now: SimTime) {
        self.alive = true;
        self.started_at = now;
        self.heap.restart();
    }
}

/// Seeded random block corruption (for DataNode scanner tests and the
/// checksum path). Deterministic per seed.
#[derive(Debug, Clone)]
pub struct BitRot {
    rng: ChaCha8Rng,
    /// Probability that a given block gets one flipped bit.
    pub per_block_probability: f64,
}

impl BitRot {
    /// New injector with a fixed seed.
    pub fn new(seed: u64, per_block_probability: f64) -> Self {
        BitRot { rng: ChaCha8Rng::seed_from_u64(seed), per_block_probability }
    }

    /// Maybe corrupt `data` in place; returns the flipped byte offset.
    pub fn maybe_corrupt(&mut self, data: &mut [u8]) -> Option<usize> {
        if data.is_empty() || !self.rng.gen_bool(self.per_block_probability.clamp(0.0, 1.0)) {
            return None;
        }
        let offset = self.rng.gen_range(0..data.len());
        let bit = self.rng.gen_range(0..8u8);
        data[offset] ^= 1 << bit;
        Some(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_leak_crashes_after_expected_tasks() {
        let mut m = HeapLeakModel::hadoop1_default();
        // (1024 - 200) / 64 + 1 = 13.875 -> 13 + 1... integer: 824/64=12 +1 = 13
        assert_eq!(m.buggy_tasks_to_crash(), 13);
        let mut crashed_at = None;
        for i in 1..=20 {
            if m.host_task(true) {
                crashed_at = Some(i);
                break;
            }
        }
        assert_eq!(crashed_at, Some(13));
    }

    #[test]
    fn clean_tasks_never_crash() {
        let mut m = HeapLeakModel::hadoop1_default();
        for _ in 0..10_000 {
            assert!(!m.host_task(false));
        }
        assert_eq!(m.current_heap(), 200 * ByteSize::MIB);
    }

    #[test]
    fn restart_resets_heap() {
        let mut m = HeapLeakModel::hadoop1_default();
        for _ in 0..5 {
            m.host_task(true);
        }
        assert!(m.current_heap() > m.base_heap);
        m.restart();
        assert_eq!(m.current_heap(), m.base_heap);
    }

    #[test]
    fn daemon_health_tracks_crashes_and_restarts() {
        let mut d = DaemonHealth::new(DaemonKind::TaskTracker, NodeId(2), SimTime::ZERO);
        let mut died = false;
        for _ in 0..50 {
            if d.host_task(true) {
                died = true;
                break;
            }
        }
        assert!(died);
        assert!(!d.alive);
        assert_eq!(d.crashes, 1);
        // Dead daemons host nothing.
        assert!(!d.host_task(true));
        d.restart(SimTime(99));
        assert!(d.alive);
        assert_eq!(d.started_at, SimTime(99));
    }

    #[test]
    fn bitrot_is_deterministic_per_seed() {
        let run = |seed| {
            let mut rot = BitRot::new(seed, 0.5);
            let mut hits = Vec::new();
            for i in 0..100 {
                let mut block = vec![0u8; 64];
                if let Some(off) = rot.maybe_corrupt(&mut block) {
                    hits.push((i, off));
                }
            }
            hits
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn bitrot_flips_exactly_one_bit() {
        let mut rot = BitRot::new(1, 1.0);
        let mut block = vec![0u8; 256];
        let off = rot.maybe_corrupt(&mut block).unwrap();
        assert_eq!(block.iter().map(|b| b.count_ones()).sum::<u32>(), 1);
        assert_ne!(block[off], 0);
    }

    #[test]
    fn bitrot_zero_probability_never_corrupts() {
        let mut rot = BitRot::new(1, 0.0);
        let mut block = vec![0u8; 64];
        for _ in 0..1000 {
            assert!(rot.maybe_corrupt(&mut block).is_none());
        }
        assert!(block.iter().all(|&b| b == 0));
    }
}
