//! # hl-cluster
//!
//! The physical substrate the teaching platform runs on, simulated
//! deterministically: compute [`node`]s with disks and NICs, the two
//! [`network`] architectures contrasted in the paper's Figure 1 (HPC
//! compute/storage separation vs Hadoop storage-on-compute), a PBS-like
//! [`scheduler`] with the queueing and cleanup behaviour of Clemson's
//! Palmetto machine, the [`ports`] registry whose stale bindings produce
//! the paper's "ghost daemon" failures, and [`failure`] injectors modeling
//! the Java-heap-leak crashes that corrupted the Version-1 course cluster.
//!
//! Time is virtual ([`hl_common::SimTime`]): operations *charge* bandwidth
//! against FIFO [`resource`]s and protocol steps run on an [`event`] queue,
//! so hour-scale phenomena replay in milliseconds, identically on every
//! run.

#![warn(missing_docs)]

pub mod event;
pub mod failure;
pub mod network;
pub mod node;
pub mod ports;
pub mod resource;
pub mod scheduler;
pub mod trace;

pub use event::EventQueue;
pub use network::{ClusterNet, NetArchitecture};
pub use node::{ClusterSpec, NodeSpec};
pub use ports::PortRegistry;
pub use resource::PipeResource;
pub use scheduler::{BatchScheduler, Reservation, ReservationRequest};
