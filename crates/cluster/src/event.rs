//! A deterministic discrete-event queue.
//!
//! The composition layer (`hl-core`) drives daemon protocols — heartbeats,
//! block reports, task polls — by popping `(time, event)` pairs in order.
//! Ties break by insertion sequence, so two events scheduled for the same
//! instant always replay in the order they were scheduled: determinism is
//! what makes every experiment in EXPERIMENTS.md exactly repeatable.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use hl_common::{SimDuration, SimTime};

/// A time-ordered, insertion-stable event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// simulator bug and panics (debug builds) or clamps to `now` (release).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let at = at.max(self.now);
        self.heap.push(Reverse(Entry { at, seq: self.seq, event }));
        self.seq += 1;
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Peek at the next event time without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Advance `now` directly (used when a data-path charge finishes later
    /// than any protocol event). Never moves backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

/// A bucketed timer wheel for per-node recurring timers (heartbeats, block
/// reports).
///
/// Scheduling one [`EventQueue`] entry per DataNode per heartbeat means a
/// 10k-node cluster keeps 10k timer events in the heap at all times, and
/// every `pop`/`push` pays `O(log n)` against that bulk. The wheel instead
/// coalesces timers into *rounds* of fixed `granularity`: the driver
/// schedules **one** queue event per non-empty round and asks the wheel
/// which keys fire. The heap holds `O(rounds)` entries instead of
/// `O(nodes)`.
///
/// Determinism is preserved: keys within a round are stored in a
/// `BTreeSet`, so [`TimerWheel::pop_due`] always yields them in key order —
/// the same tie-break the composition layer already uses for same-instant
/// events.
#[derive(Debug)]
pub struct TimerWheel<K> {
    granularity: SimDuration,
    /// round index -> keys due in that round, in key order.
    rounds: BTreeMap<u64, BTreeSet<K>>,
    /// key -> its scheduled round, for O(log n) cancel/reschedule.
    slot: BTreeMap<K, u64>,
}

impl<K: Ord + Copy> TimerWheel<K> {
    /// Empty wheel with the given round width. Panics on a zero width —
    /// that would put every deadline in round 0 forever.
    pub fn new(granularity: SimDuration) -> Self {
        assert!(granularity.as_micros() > 0, "timer wheel granularity must be non-zero");
        TimerWheel { granularity, rounds: BTreeMap::new(), slot: BTreeMap::new() }
    }

    /// Round a deadline up to its round index: a timer never fires early.
    fn round_of(&self, at: SimTime) -> u64 {
        let g = self.granularity.as_micros();
        at.as_micros().div_ceil(g)
    }

    /// Schedule (or reschedule) `key` to fire at the first round boundary
    /// at or after `at`. A key lives in at most one round.
    pub fn schedule(&mut self, key: K, at: SimTime) {
        let round = self.round_of(at);
        if let Some(old) = self.slot.insert(key, round) {
            if old == round {
                return;
            }
            if let Some(keys) = self.rounds.get_mut(&old) {
                keys.remove(&key);
                if keys.is_empty() {
                    self.rounds.remove(&old);
                }
            }
        }
        self.rounds.entry(round).or_default().insert(key);
    }

    /// Drop `key`'s pending timer, if any. Returns true if one existed.
    pub fn cancel(&mut self, key: &K) -> bool {
        let Some(round) = self.slot.remove(key) else {
            return false;
        };
        if let Some(keys) = self.rounds.get_mut(&round) {
            keys.remove(key);
            if keys.is_empty() {
                self.rounds.remove(&round);
            }
        }
        true
    }

    /// The fire time of the earliest non-empty round. This is what the
    /// driver schedules its single queue event at.
    pub fn next_due(&self) -> Option<SimTime> {
        let round = *self.rounds.keys().next()?;
        Some(SimTime(round.saturating_mul(self.granularity.as_micros())))
    }

    /// Pop every key in the earliest round due at or before `now`, in key
    /// order. Returns an empty vec when nothing is due yet.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<K> {
        let Some((&round, _)) = self.rounds.first_key_value() else {
            return Vec::new();
        };
        if round.saturating_mul(self.granularity.as_micros()) > now.as_micros() {
            return Vec::new();
        }
        let keys = self.rounds.remove(&round).unwrap_or_default();
        for key in &keys {
            self.slot.remove(key);
        }
        keys.into_iter().collect()
    }

    /// Number of pending timers (keys, not rounds).
    pub fn len(&self) -> usize {
        self.slot.len()
    }

    /// True when no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.slot.is_empty()
    }

    /// Number of distinct rounds with pending timers — the count of queue
    /// entries the driver actually needs.
    pub fn rounds_pending(&self) -> usize {
        self.rounds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime(30));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), "first");
        q.pop();
        q.schedule_in(SimDuration::from_micros(50), "second");
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime(150), "second"));
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime(500));
        assert_eq!(q.now(), SimTime(500));
        q.advance_to(SimTime(100));
        assert_eq!(q.now(), SimTime(500));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime(1), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn wheel_coalesces_timers_into_rounds() {
        let mut w: TimerWheel<u32> = TimerWheel::new(SimDuration::from_micros(100));
        // 1000 nodes, deadlines spread across two rounds.
        for node in 0..1000u32 {
            let at = if node % 2 == 0 { SimTime(150) } else { SimTime(250) };
            w.schedule(node, at);
        }
        assert_eq!(w.len(), 1000);
        assert_eq!(w.rounds_pending(), 2); // O(rounds), not O(nodes)
        assert_eq!(w.next_due(), Some(SimTime(200)));

        // Nothing due before the round boundary.
        assert!(w.pop_due(SimTime(199)).is_empty());

        // Keys come out in key order: deterministic tie-break.
        let due = w.pop_due(SimTime(200));
        assert_eq!(due.len(), 500);
        assert_eq!(due, (0..1000).filter(|n| n % 2 == 0).collect::<Vec<_>>());
        assert_eq!(w.next_due(), Some(SimTime(300)));

        let due = w.pop_due(SimTime(300));
        assert_eq!(due, (0..1000).filter(|n| n % 2 == 1).collect::<Vec<_>>());
        assert!(w.is_empty());
        assert_eq!(w.next_due(), None);
    }

    #[test]
    fn wheel_rounds_deadlines_up_never_early() {
        let mut w: TimerWheel<&str> = TimerWheel::new(SimDuration::from_micros(100));
        w.schedule("exact", SimTime(200));
        w.schedule("late", SimTime(201));
        assert_eq!(w.pop_due(SimTime(200)), vec!["exact"]);
        // 201 rounds up to 300, not down to 200.
        assert_eq!(w.next_due(), Some(SimTime(300)));
        assert_eq!(w.pop_due(SimTime(300)), vec!["late"]);
    }

    #[test]
    fn wheel_reschedule_moves_key_to_new_round() {
        let mut w: TimerWheel<u8> = TimerWheel::new(SimDuration::from_micros(10));
        w.schedule(7, SimTime(10));
        w.schedule(7, SimTime(50));
        assert_eq!(w.len(), 1);
        assert!(w.pop_due(SimTime(10)).is_empty());
        assert_eq!(w.pop_due(SimTime(50)), vec![7]);
        // Rescheduling into the same round is a no-op, not a duplicate.
        w.schedule(3, SimTime(11));
        w.schedule(3, SimTime(19));
        assert_eq!(w.pop_due(SimTime(20)), vec![3]);
    }

    #[test]
    fn wheel_cancel_removes_pending_timer() {
        let mut w: TimerWheel<u8> = TimerWheel::new(SimDuration::from_micros(10));
        w.schedule(1, SimTime(10));
        w.schedule(2, SimTime(10));
        assert!(w.cancel(&1));
        assert!(!w.cancel(&1));
        assert_eq!(w.pop_due(SimTime(10)), vec![2]);
        assert_eq!(w.rounds_pending(), 0);
    }
}
