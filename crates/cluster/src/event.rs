//! A deterministic discrete-event queue.
//!
//! The composition layer (`hl-core`) drives daemon protocols — heartbeats,
//! block reports, task polls — by popping `(time, event)` pairs in order.
//! Ties break by insertion sequence, so two events scheduled for the same
//! instant always replay in the order they were scheduled: determinism is
//! what makes every experiment in EXPERIMENTS.md exactly repeatable.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use hl_common::{SimDuration, SimTime};

/// A time-ordered, insertion-stable event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// simulator bug and panics (debug builds) or clamps to `now` (release).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let at = at.max(self.now);
        self.heap.push(Reverse(Entry { at, seq: self.seq, event }));
        self.seq += 1;
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Peek at the next event time without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Advance `now` directly (used when a data-path charge finishes later
    /// than any protocol event). Never moves backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime(30));
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), "first");
        q.pop();
        q.schedule_in(SimDuration::from_micros(50), "second");
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime(150), "second"));
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime(500));
        assert_eq!(q.now(), SimTime(500));
        q.advance_to(SimTime(100));
        assert_eq!(q.now(), SimTime(500));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime(1), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
