//! FIFO bandwidth resources.
//!
//! Every disk, NIC, and shared-storage uplink is a pipe with a fixed
//! bandwidth and a single FIFO queue: a transfer starts when the pipe frees
//! up and holds it for `bytes / bandwidth`. This store-and-forward model is
//! deliberately simple — it is exactly rich enough to reproduce the
//! congestion shapes the paper narrates (everyone hammering the shared
//! parallel store on Figure 1's HPC layout; the whole class resubmitting
//! jobs the night before the deadline).

use hl_common::{SimDuration, SimTime};

/// A FIFO pipe with fixed bandwidth and cumulative accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeResource {
    /// Human-readable name for traces ("node003.nic", "parallel-fs").
    pub name: String,
    /// Bandwidth in bytes per (virtual) second.
    pub bytes_per_sec: u64,
    free_at: SimTime,
    total_bytes: u64,
    busy: SimDuration,
}

/// The interval a charge occupied its pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Charge {
    /// When the transfer began (>= request time; later if queued).
    pub start: SimTime,
    /// When the transfer finished.
    pub end: SimTime,
}

impl Charge {
    /// Queue wait plus service time.
    pub fn latency_from(&self, requested: SimTime) -> SimDuration {
        self.end.since(requested)
    }
}

impl PipeResource {
    /// New idle pipe.
    pub fn new(name: impl Into<String>, bytes_per_sec: u64) -> Self {
        PipeResource {
            name: name.into(),
            bytes_per_sec,
            free_at: SimTime::ZERO,
            total_bytes: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// Charge a transfer of `bytes` requested at `now`; returns when it
    /// started and finished. FIFO: starts no earlier than the previous
    /// charge ended.
    pub fn charge(&mut self, now: SimTime, bytes: u64) -> Charge {
        let start = now.max(self.free_at);
        let service = SimDuration::for_transfer(bytes, self.bytes_per_sec);
        let end = start + service;
        self.free_at = end;
        self.total_bytes += bytes;
        self.busy += service;
        Charge { start, end }
    }

    /// [`PipeResource::charge`] against a degraded pipe: the transfer is
    /// served at `mult_bp` basis points of the pipe's nominal bandwidth
    /// (10 000 = nominal, and an exact alias for `charge`). Degradation
    /// is per-charge, not per-pipe state, so time-varying
    /// [`crate::node::DegradeModel`]s need no event scheduling.
    pub fn charge_scaled(&mut self, now: SimTime, bytes: u64, mult_bp: u32) -> Charge {
        use crate::node::PerfProfile;
        if mult_bp >= PerfProfile::NOMINAL_BP {
            return self.charge(now, bytes);
        }
        let start = now.max(self.free_at);
        let service =
            SimDuration::for_transfer(bytes, PerfProfile::scale_bw(self.bytes_per_sec, mult_bp));
        let end = start + service;
        self.free_at = end;
        self.total_bytes += bytes;
        self.busy += service;
        Charge { start, end }
    }

    /// Charge a fixed-duration occupancy (seek, daemon startup, fsync).
    pub fn charge_time(&mut self, now: SimTime, dur: SimDuration) -> Charge {
        let start = now.max(self.free_at);
        let end = start + dur;
        self.free_at = end;
        self.busy += dur;
        Charge { start, end }
    }

    /// Earliest instant a new charge could start.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total bytes ever charged (the per-link traffic counters behind the
    /// Figure 1 experiment).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total busy time (for utilization reports).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Utilization in `[0,1]` over the window ending at `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_secs_f64() / now.as_secs_f64()).min(1.0)
    }

    /// Forget accumulated accounting but keep the queue state.
    pub fn reset_accounting(&mut self) {
        self.total_bytes = 0;
        self.busy = SimDuration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mib(n: u64) -> u64 {
        n * 1024 * 1024
    }

    #[test]
    fn single_charge_is_bytes_over_bandwidth() {
        let mut pipe = PipeResource::new("disk", mib(100));
        let c = pipe.charge(SimTime::ZERO, mib(100));
        assert_eq!(c.start, SimTime::ZERO);
        assert_eq!(c.end, SimTime(1_000_000)); // exactly 1 virtual second
        assert_eq!(pipe.total_bytes(), mib(100));
    }

    #[test]
    fn fifo_queueing_serializes_contenders() {
        let mut pipe = PipeResource::new("nic", mib(100));
        let a = pipe.charge(SimTime::ZERO, mib(100));
        let b = pipe.charge(SimTime::ZERO, mib(100));
        assert_eq!(b.start, a.end);
        assert_eq!(b.end, SimTime(2_000_000));
        // A later request after the pipe is idle starts immediately.
        let c = pipe.charge(SimTime(5_000_000), mib(50));
        assert_eq!(c.start, SimTime(5_000_000));
        assert_eq!(c.end, SimTime(5_500_000));
    }

    #[test]
    fn latency_includes_queue_wait() {
        let mut pipe = PipeResource::new("nic", mib(1));
        pipe.charge(SimTime::ZERO, mib(10)); // busy 10 s
        let c = pipe.charge(SimTime(1_000_000), mib(1));
        assert_eq!(c.latency_from(SimTime(1_000_000)), SimDuration::from_secs(10));
    }

    #[test]
    fn charge_time_occupies_without_bytes() {
        let mut pipe = PipeResource::new("disk", mib(100));
        let c = pipe.charge_time(SimTime::ZERO, SimDuration::from_secs(2));
        assert_eq!(c.end, SimTime(2_000_000));
        assert_eq!(pipe.total_bytes(), 0);
        assert_eq!(pipe.busy_time(), SimDuration::from_secs(2));
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut pipe = PipeResource::new("disk", mib(100));
        pipe.charge(SimTime::ZERO, mib(100)); // busy 1 s
        assert!((pipe.utilization(SimTime(4_000_000)) - 0.25).abs() < 1e-9);
        assert_eq!(pipe.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn reset_accounting_keeps_queue() {
        let mut pipe = PipeResource::new("disk", mib(1));
        let a = pipe.charge(SimTime::ZERO, mib(5));
        pipe.reset_accounting();
        assert_eq!(pipe.total_bytes(), 0);
        let b = pipe.charge(SimTime::ZERO, mib(1));
        assert_eq!(b.start, a.end, "queue position survives reset");
    }
}
