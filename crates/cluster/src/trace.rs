//! A timestamped event log.
//!
//! Every daemon and experiment appends human-readable lines here; the
//! rendered log doubles as the "scheduler records all outputs … so the
//! students can review and analyze the performance of their Hadoop
//! platforms" artifact from Section III-D.

use std::fmt;

use hl_common::SimTime;

/// One log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual timestamp.
    pub at: SimTime,
    /// Emitting component ("namenode", "tasktracker/node003", ...).
    pub source: String,
    /// Message text.
    pub message: String,
}

/// An append-only, optionally disabled event log.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    entries: Vec<TraceEntry>,
    /// When false, `log` is a no-op (benches disable tracing).
    pub enabled: bool,
}

impl EventLog {
    /// An enabled log.
    pub fn new() -> Self {
        EventLog { entries: Vec::new(), enabled: true }
    }

    /// A disabled log (zero overhead apart from the branch).
    pub fn disabled() -> Self {
        EventLog { entries: Vec::new(), enabled: false }
    }

    /// Append a line.
    ///
    /// Disabled logs return before allocating anything, but the caller has
    /// usually already paid to build the message (a `format!` argument is
    /// evaluated before the call). Hot paths should prefer
    /// [`EventLog::log_with`], which defers that construction too.
    #[inline]
    pub fn log(&mut self, at: SimTime, source: &str, message: impl fmt::Display) {
        if !self.enabled {
            return;
        }
        self.entries.push(TraceEntry {
            at,
            source: source.to_string(),
            message: message.to_string(),
        });
    }

    /// Append a line with a lazily-built message: `message` is only invoked
    /// when the log is enabled, so a disabled log costs one branch even
    /// where the message would be an expensive `format!`.
    #[inline]
    pub fn log_with(&mut self, at: SimTime, source: &str, message: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        self.entries.push(TraceEntry { at, source: source.to_string(), message: message() });
    }

    /// All entries in append order (timestamps are monotone because the
    /// DES only moves forward).
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries whose source contains `needle`.
    pub fn from_source<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.source.contains(needle))
    }

    /// Entries whose message contains `needle`.
    pub fn grep<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.message.contains(needle))
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl fmt::Display for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "[{}] {}: {}", e.at, e.source, e.message)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logs_and_renders() {
        let mut log = EventLog::new();
        log.log(SimTime(1_000_000), "namenode", "safe mode ON");
        log.log(SimTime(2_000_000), "datanode/node001", "sent block report (10 blocks)");
        assert_eq!(log.len(), 2);
        let text = log.to_string();
        assert!(text.contains("[t=1.00s] namenode: safe mode ON"));
        assert!(text.contains("datanode/node001"));
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::disabled();
        log.log(SimTime::ZERO, "x", "y");
        assert!(log.is_empty());
    }

    #[test]
    fn disabled_log_never_builds_lazy_messages() {
        let mut log = EventLog::disabled();
        let mut built = false;
        log.log_with(SimTime::ZERO, "x", || {
            built = true;
            "expensive".to_string()
        });
        assert!(!built, "disabled log must not evaluate the message closure");
        assert!(log.is_empty());

        log.enabled = true;
        log.log_with(SimTime(3), "y", || "cheap now".to_string());
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].message, "cheap now");
        assert_eq!(log.entries()[0].at, SimTime(3));
    }

    #[test]
    fn grep_and_source_filters() {
        let mut log = EventLog::new();
        log.log(SimTime(0), "namenode", "safe mode ON");
        log.log(SimTime(1), "namenode", "safe mode OFF");
        log.log(SimTime(2), "jobtracker", "job_0001 submitted");
        assert_eq!(log.grep("safe mode").count(), 2);
        assert_eq!(log.from_source("namenode").count(), 2);
        assert_eq!(log.grep("job_").count(), 1);
        log.clear();
        assert!(log.is_empty());
    }
}
