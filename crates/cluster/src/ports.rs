//! Per-node TCP-port bookkeeping — the "ghost daemon" failure mode.
//!
//! In the course's Spring-2013 setup, students who exited their reserved
//! nodes without stopping Hadoop left orphaned daemons still bound to the
//! Hadoop ports; the next student assigned the same node could not start a
//! cluster until the scheduler's cleanup script ran (up to 15 minutes
//! later), unless the ghosts were their own and they killed them by hand.
//! This module models exactly that: bindings carry an owner, owners can
//! die without releasing, and cleanup sweeps dead bindings.

use std::collections::BTreeMap;

use hl_common::prelude::*;

/// The standard Hadoop 1.x daemon ports the course's myHadoop scripts used.
pub mod well_known {
    /// NameNode RPC.
    pub const NAMENODE_RPC: u16 = 8020;
    /// NameNode web UI.
    pub const NAMENODE_HTTP: u16 = 50070;
    /// DataNode data transfer.
    pub const DATANODE_DATA: u16 = 50010;
    /// JobTracker RPC.
    pub const JOBTRACKER_RPC: u16 = 8021;
    /// JobTracker web UI.
    pub const JOBTRACKER_HTTP: u16 = 50030;
    /// TaskTracker HTTP (shuffle service).
    pub const TASKTRACKER_HTTP: u16 = 50060;
    /// HBase master (the ecosystem lecture's extra daemon).
    pub const HBASE_MASTER: u16 = 60000;
    /// HBase region server.
    pub const HBASE_REGIONSERVER: u16 = 60020;

    /// Every port a full node (all daemons colocated) needs.
    pub const ALL: [u16; 6] = [
        NAMENODE_RPC,
        NAMENODE_HTTP,
        DATANODE_DATA,
        JOBTRACKER_RPC,
        JOBTRACKER_HTTP,
        TASKTRACKER_HTTP,
    ];
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Binding {
    owner: String,
    owner_alive: bool,
    bound_at: SimTime,
}

/// Tracks which (node, port) pairs are bound and by whom.
#[derive(Debug, Clone, Default)]
pub struct PortRegistry {
    // Ordered map: ghost sweeps and `ghosts_on` iterate, and the chaos
    // soak hashes event traces — iteration order must be deterministic.
    bindings: BTreeMap<(NodeId, u16), Binding>,
}

impl PortRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `port` on `node` for `owner`. Fails with [`HlError::PortInUse`]
    /// if any owner — alive or ghost — already holds it.
    pub fn bind(&mut self, now: SimTime, node: NodeId, port: u16, owner: &str) -> Result<()> {
        match self.bindings.get(&(node, port)) {
            Some(_) => Err(HlError::PortInUse { node: node.to_string(), port }),
            None => {
                self.bindings.insert(
                    (node, port),
                    Binding { owner: owner.to_string(), owner_alive: true, bound_at: now },
                );
                Ok(())
            }
        }
    }

    /// Release every binding `owner` holds (a clean `stop-all.sh`).
    pub fn release_owner(&mut self, owner: &str) -> usize {
        let before = self.bindings.len();
        self.bindings.retain(|_, b| b.owner != owner);
        before - self.bindings.len()
    }

    /// Mark an owner's processes dead *without* releasing their ports —
    /// the student logged out, the daemons became ghosts.
    pub fn orphan_owner(&mut self, owner: &str) -> usize {
        let mut n = 0;
        for b in self.bindings.values_mut() {
            if b.owner == owner && b.owner_alive {
                b.owner_alive = false;
                n += 1;
            }
        }
        n
    }

    /// The scheduler's cleanup script: sweep all ghost bindings on `node`.
    pub fn cleanup_node(&mut self, node: NodeId) -> usize {
        let before = self.bindings.len();
        self.bindings.retain(|(n, _), b| *n != node || b.owner_alive);
        before - self.bindings.len()
    }

    /// Cleanup every node (the 15-minute cron pass).
    pub fn cleanup_all(&mut self) -> usize {
        let before = self.bindings.len();
        self.bindings.retain(|_, b| b.owner_alive);
        before - self.bindings.len()
    }

    /// Kill a specific ghost binding by hand — only the same owner may do
    /// so (students could kill *their own* orphaned daemons, not others').
    pub fn kill_own_ghost(&mut self, node: NodeId, port: u16, owner: &str) -> Result<()> {
        match self.bindings.get(&(node, port)) {
            Some(b) if b.owner == owner && !b.owner_alive => {
                self.bindings.remove(&(node, port));
                Ok(())
            }
            Some(b) if b.owner != owner => Err(HlError::PortInUse { node: node.to_string(), port }),
            Some(_) => Err(HlError::Internal("binding is alive; use release_owner".into())),
            None => Err(HlError::Internal(format!("no binding on {node}:{port}"))),
        }
    }

    /// Who holds `port` on `node`, if anyone, and whether they are alive.
    pub fn holder(&self, node: NodeId, port: u16) -> Option<(&str, bool)> {
        self.bindings.get(&(node, port)).map(|b| (b.owner.as_str(), b.owner_alive))
    }

    /// Count of ghost bindings on a node.
    pub fn ghosts_on(&self, node: NodeId) -> usize {
        self.bindings.iter().filter(|((n, _), b)| *n == node && !b.owner_alive).count()
    }

    /// Total bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_conflicts_are_reported() {
        let mut reg = PortRegistry::new();
        reg.bind(SimTime::ZERO, NodeId(0), 50010, "alice").unwrap();
        let err = reg.bind(SimTime::ZERO, NodeId(0), 50010, "bob").unwrap_err();
        assert_eq!(err, HlError::PortInUse { node: "node000".into(), port: 50010 });
        // Same port on another node is fine.
        reg.bind(SimTime::ZERO, NodeId(1), 50010, "bob").unwrap();
    }

    #[test]
    fn clean_stop_releases_everything() {
        let mut reg = PortRegistry::new();
        for port in well_known::ALL {
            reg.bind(SimTime::ZERO, NodeId(0), port, "alice").unwrap();
        }
        assert_eq!(reg.release_owner("alice"), 6);
        assert!(reg.is_empty());
    }

    #[test]
    fn ghosts_block_new_clusters_until_cleanup() {
        let mut reg = PortRegistry::new();
        reg.bind(SimTime::ZERO, NodeId(3), well_known::TASKTRACKER_HTTP, "alice").unwrap();
        assert_eq!(reg.orphan_owner("alice"), 1);
        assert_eq!(reg.ghosts_on(NodeId(3)), 1);
        // Bob gets the node next and cannot bind.
        let err = reg.bind(SimTime(1), NodeId(3), well_known::TASKTRACKER_HTTP, "bob");
        assert!(err.is_err());
        // Cleanup sweeps the ghost; now Bob can start.
        assert_eq!(reg.cleanup_node(NodeId(3)), 1);
        reg.bind(SimTime(2), NodeId(3), well_known::TASKTRACKER_HTTP, "bob").unwrap();
    }

    #[test]
    fn students_can_kill_only_their_own_ghosts() {
        let mut reg = PortRegistry::new();
        reg.bind(SimTime::ZERO, NodeId(0), 50060, "alice").unwrap();
        reg.orphan_owner("alice");
        // Bob may not kill Alice's ghost.
        assert!(reg.kill_own_ghost(NodeId(0), 50060, "bob").is_err());
        // Alice may.
        reg.kill_own_ghost(NodeId(0), 50060, "alice").unwrap();
        assert!(reg.is_empty());
    }

    #[test]
    fn live_bindings_survive_cleanup() {
        let mut reg = PortRegistry::new();
        reg.bind(SimTime::ZERO, NodeId(0), 1, "alice").unwrap();
        reg.bind(SimTime::ZERO, NodeId(0), 2, "bob").unwrap();
        reg.orphan_owner("alice");
        assert_eq!(reg.cleanup_all(), 1);
        assert_eq!(reg.holder(NodeId(0), 2), Some(("bob", true)));
        assert_eq!(reg.holder(NodeId(0), 1), None);
    }
}
