//! Node and cluster hardware specifications.
//!
//! The paper's dedicated cluster: 8 nodes, each dual 8-core, 64 GB RAM,
//! 850 GB HDD, gigabit Ethernet. Presets here reproduce that box and the
//! two cluster shapes of Figure 1.

use hl_common::prelude::*;
use hl_common::units::ByteSize;

/// Hardware description of a single compute node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// CPU cores (the course configured 8 map slots on dual 8-core nodes).
    pub cores: u32,
    /// Physical RAM in bytes.
    pub ram_bytes: u64,
    /// Local disk capacity in bytes.
    pub disk_bytes: u64,
    /// Local disk sequential bandwidth, bytes/s.
    pub disk_bw: u64,
    /// NIC bandwidth, bytes/s.
    pub nic_bw: u64,
}

impl NodeSpec {
    /// The paper's dedicated-cluster node: dual 8-core, 64 GB RAM, 850 GB
    /// HDD (~120 MB/s sequential), gigabit Ethernet (~117 MiB/s).
    pub fn palmetto_2013() -> Self {
        NodeSpec {
            cores: 16,
            ram_bytes: 64 * ByteSize::GIB,
            disk_bytes: 850 * ByteSize::GIB,
            disk_bw: 120 * ByteSize::MIB,
            nic_bw: 117 * ByteSize::MIB,
        }
    }

    /// A diskless HPC compute node (storage lives on the parallel FS).
    pub fn hpc_compute_2013() -> Self {
        NodeSpec { disk_bytes: 0, ..Self::palmetto_2013() }
    }

    /// The throttled virtual machine from the paper's Version-1 setup: the
    /// supercomputer's virtualization limited the virtual NIC to ~1 MB/s.
    pub fn throttled_vm() -> Self {
        NodeSpec {
            cores: 4,
            ram_bytes: 8 * ByteSize::GIB,
            disk_bytes: 100 * ByteSize::GIB,
            disk_bw: 80 * ByteSize::MIB,
            nic_bw: ByteSize::MIB, // the fatal 1 MB/s
        }
    }
}

/// A homogeneous cluster: node spec, topology, and the Figure 1
/// architecture choice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Rack layout.
    pub topology: Topology,
    /// Figure 1(a) vs 1(b).
    pub architecture: crate::network::NetArchitecture,
}

impl ClusterSpec {
    /// The course's 8-node dedicated Hadoop cluster (Figure 1(b), one rack).
    pub fn course_hadoop(nodes: usize) -> Self {
        ClusterSpec {
            node: NodeSpec::palmetto_2013(),
            topology: Topology::flat(nodes),
            architecture: crate::network::NetArchitecture::hadoop_local_disks(),
        }
    }

    /// A Hadoop-style cluster spread over `racks` racks.
    pub fn hadoop_racked(nodes: usize, racks: usize) -> Self {
        ClusterSpec {
            node: NodeSpec::palmetto_2013(),
            topology: Topology::striped(nodes, racks),
            architecture: crate::network::NetArchitecture::hadoop_local_disks(),
        }
    }

    /// A typical HPC cluster (Figure 1(a)): diskless compute nodes sharing
    /// a parallel storage system with fixed aggregate bandwidth.
    pub fn hpc_shared_storage(nodes: usize, storage_aggregate_bw: u64) -> Self {
        ClusterSpec {
            node: NodeSpec::hpc_compute_2013(),
            topology: Topology::striped(nodes, (nodes / 16).max(1)),
            architecture: crate::network::NetArchitecture::hpc_parallel_fs(storage_aggregate_bw),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.topology.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palmetto_matches_paper_hardware() {
        let n = NodeSpec::palmetto_2013();
        assert_eq!(n.cores, 16);
        assert_eq!(n.ram_bytes, 64 * ByteSize::GIB);
        assert_eq!(n.disk_bytes, 850 * ByteSize::GIB);
    }

    #[test]
    fn throttled_vm_has_1mbs_nic() {
        assert_eq!(NodeSpec::throttled_vm().nic_bw, ByteSize::MIB);
    }

    #[test]
    fn course_cluster_is_8_flat_nodes() {
        let c = ClusterSpec::course_hadoop(8);
        assert_eq!(c.num_nodes(), 8);
        assert_eq!(c.topology.num_racks(), 1);
    }

    #[test]
    fn hpc_nodes_are_diskless() {
        let c = ClusterSpec::hpc_shared_storage(32, 10 * ByteSize::GIB);
        assert_eq!(c.node.disk_bytes, 0);
        assert_eq!(c.topology.num_racks(), 2);
    }
}
