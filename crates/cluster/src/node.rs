//! Node and cluster hardware specifications.
//!
//! The paper's dedicated cluster: 8 nodes, each dual 8-core, 64 GB RAM,
//! 850 GB HDD, gigabit Ethernet. Presets here reproduce that box and the
//! two cluster shapes of Figure 1.

use hl_common::prelude::*;
use hl_common::units::ByteSize;
use hl_common::writable::{read_vu64, write_vu64, Writable};

/// Hardware description of a single compute node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// CPU cores (the course configured 8 map slots on dual 8-core nodes).
    pub cores: u32,
    /// Physical RAM in bytes.
    pub ram_bytes: u64,
    /// Local disk capacity in bytes.
    pub disk_bytes: u64,
    /// Local disk sequential bandwidth, bytes/s.
    pub disk_bw: u64,
    /// NIC bandwidth, bytes/s.
    pub nic_bw: u64,
}

impl NodeSpec {
    /// The paper's dedicated-cluster node: dual 8-core, 64 GB RAM, 850 GB
    /// HDD (~120 MB/s sequential), gigabit Ethernet (~117 MiB/s).
    pub fn palmetto_2013() -> Self {
        NodeSpec {
            cores: 16,
            ram_bytes: 64 * ByteSize::GIB,
            disk_bytes: 850 * ByteSize::GIB,
            disk_bw: 120 * ByteSize::MIB,
            nic_bw: 117 * ByteSize::MIB,
        }
    }

    /// A diskless HPC compute node (storage lives on the parallel FS).
    pub fn hpc_compute_2013() -> Self {
        NodeSpec { disk_bytes: 0, ..Self::palmetto_2013() }
    }

    /// The throttled virtual machine from the paper's Version-1 setup: the
    /// supercomputer's virtualization limited the virtual NIC to ~1 MB/s.
    pub fn throttled_vm() -> Self {
        NodeSpec {
            cores: 4,
            ram_bytes: 8 * ByteSize::GIB,
            disk_bytes: 100 * ByteSize::GIB,
            disk_bw: 80 * ByteSize::MIB,
            nic_bw: ByteSize::MIB, // the fatal 1 MB/s
        }
    }
}

/// A per-node performance multiplier layered over [`NodeSpec`], in basis
/// points (10 000 = nominal speed, 5 000 = half speed). Integer basis
/// points keep every degraded charge a pure function of virtual time, so
/// chaos traces stay byte-identical across replays.
///
/// The three components scale the three charge sites independently: task
/// compute durations (`cpu_mult`), the node's disk pipe (`disk_mult`),
/// and the node's NIC pipe (`nic_mult`) — a throttled VM is slow on the
/// wire but not on the core, a failing disk is the reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfProfile {
    /// Compute-duration multiplier, basis points of nominal speed.
    pub cpu_mult: u32,
    /// Disk-pipe bandwidth multiplier, basis points of nominal speed.
    pub disk_mult: u32,
    /// NIC-pipe bandwidth multiplier, basis points of nominal speed.
    pub nic_mult: u32,
}

impl PerfProfile {
    /// Basis points representing full nominal speed.
    pub const NOMINAL_BP: u32 = 10_000;

    /// Full nominal speed on all three components.
    pub const NOMINAL: PerfProfile = PerfProfile {
        cpu_mult: Self::NOMINAL_BP,
        disk_mult: Self::NOMINAL_BP,
        nic_mult: Self::NOMINAL_BP,
    };

    /// The same multiplier on CPU, disk, and NIC. Clamped to at least
    /// 1 bp: a zero multiplier would make `for_transfer` treat the pipe
    /// as free rather than infinitely slow.
    pub fn uniform(bp: u32) -> Self {
        let bp = bp.clamp(1, Self::NOMINAL_BP);
        PerfProfile { cpu_mult: bp, disk_mult: bp, nic_mult: bp }
    }

    /// True when all three components run at nominal speed.
    pub fn is_nominal(&self) -> bool {
        *self == Self::NOMINAL
    }

    /// Scale a pipe bandwidth by a basis-point multiplier, never below
    /// 1 byte/s (bandwidth 0 means "free" to `for_transfer`, the opposite
    /// of degraded).
    pub fn scale_bw(bw: u64, mult_bp: u32) -> u64 {
        if mult_bp >= Self::NOMINAL_BP || bw == 0 {
            // bw == 0 already means "free pipe" to `for_transfer`; a
            // degraded free pipe stays free rather than becoming 1 B/s.
            return bw;
        }
        let scaled = u128::from(bw) * u128::from(mult_bp) / u128::from(Self::NOMINAL_BP);
        u64::try_from(scaled).unwrap_or(u64::MAX).max(1)
    }

    /// Stretch a duration by the inverse of a basis-point multiplier
    /// (half speed → double time).
    pub fn scale_dur(d: SimDuration, mult_bp: u32) -> SimDuration {
        if mult_bp >= Self::NOMINAL_BP {
            return d;
        }
        let stretched = u128::from(d.0) * u128::from(Self::NOMINAL_BP) / u128::from(mult_bp.max(1));
        SimDuration(u64::try_from(stretched).unwrap_or(u64::MAX))
    }
}

impl Writable for PerfProfile {
    fn write(&self, buf: &mut Vec<u8>) {
        write_vu64(u64::from(self.cpu_mult), buf);
        write_vu64(u64::from(self.disk_mult), buf);
        write_vu64(u64::from(self.nic_mult), buf);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        let narrow = |v: u64| {
            u32::try_from(v).map_err(|_| HlError::Codec(format!("PerfProfile mult {v} > u32")))
        };
        let cpu_mult = narrow(read_vu64(buf)?)?;
        let disk_mult = narrow(read_vu64(buf)?)?;
        let nic_mult = narrow(read_vu64(buf)?)?;
        Ok(PerfProfile { cpu_mult, disk_mult, nic_mult })
    }
}

/// How a node's [`PerfProfile`] evolves over virtual time. Evaluated
/// lazily at each charge site — no events are scheduled — so a model is
/// just a pure function `SimTime -> PerfProfile`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeModel {
    /// A fixed profile from time zero (throttled-VM tier, `SlowNode`).
    Static(PerfProfile),
    /// Progressive straggler: nominal until `from`, then all multipliers
    /// decay linearly toward `floor` over `ramp`, and stay there — the
    /// disk that slowly dies instead of stepping.
    Decay {
        /// When the decay begins.
        from: SimTime,
        /// How long the slide from nominal to `floor` takes.
        ramp: SimDuration,
        /// The profile the node bottoms out at.
        floor: PerfProfile,
    },
    /// Noisy neighbor: `during` applies inside `[from, until)`, nominal
    /// outside — a co-tenant's interference window.
    Window {
        /// Interference start.
        from: SimTime,
        /// Interference end (exclusive).
        until: SimTime,
        /// The profile while the neighbor is noisy.
        during: PerfProfile,
    },
    /// Square wave starting at `from`: `on` degraded, `off` nominal,
    /// repeating — an intermittently flaky link.
    Periodic {
        /// First degraded phase begins here.
        from: SimTime,
        /// Length of each degraded phase.
        on: SimDuration,
        /// Length of each nominal phase between degraded ones.
        off: SimDuration,
        /// The profile during degraded phases.
        during: PerfProfile,
    },
}

impl DegradeModel {
    /// The node's effective profile at `now`.
    pub fn profile_at(&self, now: SimTime) -> PerfProfile {
        match self {
            DegradeModel::Static(p) => *p,
            DegradeModel::Decay { from, ramp, floor } => {
                if now < *from {
                    return PerfProfile::NOMINAL;
                }
                let elapsed = now.since(*from).0.min(ramp.0);
                let lerp = |f: u32| {
                    if ramp.0 == 0 {
                        return f.max(1);
                    }
                    let drop = u128::from(PerfProfile::NOMINAL_BP.saturating_sub(f))
                        * u128::from(elapsed)
                        / u128::from(ramp.0);
                    (PerfProfile::NOMINAL_BP - u32::try_from(drop).unwrap_or(0)).max(1)
                };
                PerfProfile {
                    cpu_mult: lerp(floor.cpu_mult),
                    disk_mult: lerp(floor.disk_mult),
                    nic_mult: lerp(floor.nic_mult),
                }
            }
            DegradeModel::Window { from, until, during } => {
                if now >= *from && now < *until {
                    *during
                } else {
                    PerfProfile::NOMINAL
                }
            }
            DegradeModel::Periodic { from, on, off, during } => {
                if now < *from || on.0 == 0 {
                    return PerfProfile::NOMINAL;
                }
                let period = on.0.saturating_add(off.0);
                if period == 0 {
                    return *during;
                }
                let phase = now.since(*from).0 % period;
                if phase < on.0 {
                    *during
                } else {
                    PerfProfile::NOMINAL
                }
            }
        }
    }
}

/// A homogeneous cluster: node spec, topology, and the Figure 1
/// architecture choice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Per-node hardware.
    pub node: NodeSpec,
    /// Rack layout.
    pub topology: Topology,
    /// Figure 1(a) vs 1(b).
    pub architecture: crate::network::NetArchitecture,
}

impl ClusterSpec {
    /// The course's 8-node dedicated Hadoop cluster (Figure 1(b), one rack).
    pub fn course_hadoop(nodes: usize) -> Self {
        ClusterSpec {
            node: NodeSpec::palmetto_2013(),
            topology: Topology::flat(nodes),
            architecture: crate::network::NetArchitecture::hadoop_local_disks(),
        }
    }

    /// A Hadoop-style cluster spread over `racks` racks.
    pub fn hadoop_racked(nodes: usize, racks: usize) -> Self {
        ClusterSpec {
            node: NodeSpec::palmetto_2013(),
            topology: Topology::striped(nodes, racks),
            architecture: crate::network::NetArchitecture::hadoop_local_disks(),
        }
    }

    /// A typical HPC cluster (Figure 1(a)): diskless compute nodes sharing
    /// a parallel storage system with fixed aggregate bandwidth.
    pub fn hpc_shared_storage(nodes: usize, storage_aggregate_bw: u64) -> Self {
        ClusterSpec {
            node: NodeSpec::hpc_compute_2013(),
            topology: Topology::striped(nodes, (nodes / 16).max(1)),
            architecture: crate::network::NetArchitecture::hpc_parallel_fs(storage_aggregate_bw),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.topology.num_nodes()
    }
}

/// splitmix64 — the tiny deterministic mixer behind the seeded skew
/// presets. Self-contained so `hl-cluster` stays free of RNG crates.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A heterogeneous cluster: a homogeneous [`ClusterSpec`] base plus
/// per-node [`DegradeModel`]s layered on top. Built with the seeded skew
/// presets (or `with_model` by hand) and handed to
/// `MrCluster::new_heterogeneous`; the same `(base, seed)` always yields
/// the same skew.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeterogeneousClusterSpec {
    /// The homogeneous hardware every node nominally has.
    pub base: ClusterSpec,
    /// Per-node deviations from nominal, sorted by node for determinism.
    pub models: Vec<(NodeId, DegradeModel)>,
}

impl HeterogeneousClusterSpec {
    /// A heterogeneous spec with no deviations yet.
    pub fn new(base: ClusterSpec) -> Self {
        HeterogeneousClusterSpec { base, models: Vec::new() }
    }

    /// Attach (or replace) one node's model.
    pub fn with_model(mut self, node: NodeId, model: DegradeModel) -> Self {
        self.models.retain(|(n, _)| *n != node);
        self.models.push((node, model));
        self.models.sort_by_key(|(n, _)| n.0);
        self
    }

    /// Pick `count` distinct nodes deterministically from `seed`.
    fn pick_nodes(&self, seed: u64, salt: u64, count: usize) -> Vec<NodeId> {
        let n = self.base.num_nodes() as u64;
        let mut state = seed ^ (salt << 32);
        let mut picked = Vec::new();
        while picked.len() < count.min(n as usize) {
            let node = NodeId((splitmix64(&mut state) % n) as u32);
            if !picked.contains(&node) {
                picked.push(node);
            }
        }
        picked
    }

    /// Throttled-VM tier: `count` nodes pinned to a static `bp` profile
    /// from time zero — the paper's Version-1 supercomputer VMs whose
    /// virtual NICs never ran at spec.
    pub fn throttled_tier(self, seed: u64, count: usize, bp: u32) -> Self {
        let mut spec = self;
        for node in spec.pick_nodes(seed, 0x5456, count) {
            spec = spec.with_model(node, DegradeModel::Static(PerfProfile::uniform(bp)));
        }
        spec
    }

    /// Noisy neighbors: `count` nodes suffer a co-tenant interference
    /// window at half speed, each window's start and length varied by the
    /// seed (30–90 s in, 60–180 s long).
    pub fn noisy_neighbors(self, seed: u64, count: usize) -> Self {
        let mut spec = self;
        let mut state = seed ^ (0x4e4e << 32);
        for node in spec.pick_nodes(seed, 0x4e4e, count) {
            let from = SimTime(30_000_000 + splitmix64(&mut state) % 60_000_000);
            let len = 60_000_000 + splitmix64(&mut state) % 120_000_000;
            let model = DegradeModel::Window {
                from,
                until: from + SimDuration(len),
                during: PerfProfile::uniform(5_000),
            };
            spec = spec.with_model(node, model);
        }
        spec
    }

    /// Progressive stragglers: `count` nodes decay toward `floor_bp` over
    /// a seed-varied 60–180 s ramp starting 10–40 s in — the slowly dying
    /// disk that steps nowhere.
    pub fn progressive_stragglers(self, seed: u64, count: usize, floor_bp: u32) -> Self {
        let mut spec = self;
        let mut state = seed ^ (0x5053 << 32);
        for node in spec.pick_nodes(seed, 0x5053, count) {
            let model = DegradeModel::Decay {
                from: SimTime(10_000_000 + splitmix64(&mut state) % 30_000_000),
                ramp: SimDuration(60_000_000 + splitmix64(&mut state) % 120_000_000),
                floor: PerfProfile::uniform(floor_bp),
            };
            spec = spec.with_model(node, model);
        }
        spec
    }

    /// The combined skew preset the TPCx-HS ablation runs against: one
    /// throttled node, one noisy neighbor, one progressive straggler
    /// (distinct salts keep the picks independent; later presets win on
    /// collision).
    pub fn skewed(base: ClusterSpec, seed: u64) -> Self {
        HeterogeneousClusterSpec::new(base)
            .throttled_tier(seed, 1, 2_000)
            .noisy_neighbors(seed, 1)
            .progressive_stragglers(seed, 1, 1_500)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palmetto_matches_paper_hardware() {
        let n = NodeSpec::palmetto_2013();
        assert_eq!(n.cores, 16);
        assert_eq!(n.ram_bytes, 64 * ByteSize::GIB);
        assert_eq!(n.disk_bytes, 850 * ByteSize::GIB);
    }

    #[test]
    fn throttled_vm_has_1mbs_nic() {
        assert_eq!(NodeSpec::throttled_vm().nic_bw, ByteSize::MIB);
    }

    #[test]
    fn course_cluster_is_8_flat_nodes() {
        let c = ClusterSpec::course_hadoop(8);
        assert_eq!(c.num_nodes(), 8);
        assert_eq!(c.topology.num_racks(), 1);
    }

    #[test]
    fn hpc_nodes_are_diskless() {
        let c = ClusterSpec::hpc_shared_storage(32, 10 * ByteSize::GIB);
        assert_eq!(c.node.disk_bytes, 0);
        assert_eq!(c.topology.num_racks(), 2);
    }

    #[test]
    fn perf_profile_round_trips() {
        for p in [
            PerfProfile::NOMINAL,
            PerfProfile::uniform(2_500),
            PerfProfile { cpu_mult: 10_000, disk_mult: 3_000, nic_mult: 1 },
        ] {
            assert_eq!(PerfProfile::from_bytes(&p.to_bytes()).unwrap(), p);
        }
    }

    #[test]
    fn profile_scaling_is_identity_at_nominal() {
        assert_eq!(PerfProfile::scale_bw(120 * ByteSize::MIB, 10_000), 120 * ByteSize::MIB);
        assert_eq!(PerfProfile::scale_bw(100, 5_000), 50);
        assert_eq!(PerfProfile::scale_bw(100, 0), 1, "zero multiplier floors at 1 B/s");
        let d = SimDuration::from_secs(4);
        assert_eq!(PerfProfile::scale_dur(d, 10_000), d);
        assert_eq!(PerfProfile::scale_dur(d, 5_000), SimDuration::from_secs(8));
    }

    #[test]
    fn decay_slides_from_nominal_to_floor() {
        let m = DegradeModel::Decay {
            from: SimTime(1_000_000),
            ramp: SimDuration::from_secs(10),
            floor: PerfProfile::uniform(2_000),
        };
        assert!(m.profile_at(SimTime::ZERO).is_nominal());
        let mid = m.profile_at(SimTime(6_000_000)); // halfway down the ramp
        assert_eq!(mid.cpu_mult, 6_000);
        let low = m.profile_at(SimTime(60_000_000));
        assert_eq!(low, PerfProfile::uniform(2_000), "holds at the floor");
    }

    #[test]
    fn window_and_periodic_models_toggle() {
        let w = DegradeModel::Window {
            from: SimTime(5_000_000),
            until: SimTime(10_000_000),
            during: PerfProfile::uniform(5_000),
        };
        assert!(w.profile_at(SimTime(4_999_999)).is_nominal());
        assert_eq!(w.profile_at(SimTime(5_000_000)).nic_mult, 5_000);
        assert!(w.profile_at(SimTime(10_000_000)).is_nominal());

        let p = DegradeModel::Periodic {
            from: SimTime::ZERO,
            on: SimDuration::from_secs(2),
            off: SimDuration::from_secs(3),
            during: PerfProfile::uniform(1_000),
        };
        assert_eq!(p.profile_at(SimTime(1_000_000)).disk_mult, 1_000);
        assert!(p.profile_at(SimTime(3_000_000)).is_nominal());
        assert_eq!(p.profile_at(SimTime(6_000_000)).disk_mult, 1_000, "second period");
    }

    #[test]
    fn skewed_preset_is_a_pure_function_of_seed() {
        let a = HeterogeneousClusterSpec::skewed(ClusterSpec::course_hadoop(8), 42);
        let b = HeterogeneousClusterSpec::skewed(ClusterSpec::course_hadoop(8), 42);
        assert_eq!(a, b);
        assert!(!a.models.is_empty());
        assert!(a.models.iter().all(|(n, _)| (n.0 as usize) < 8));
        let c = HeterogeneousClusterSpec::skewed(ClusterSpec::course_hadoop(8), 43);
        assert_ne!(a, c, "different seeds skew differently");
    }
}
