//! The two cluster architectures of the paper's Figure 1.
//!
//! * **Figure 1(a)** — a typical HPC cluster: diskless compute nodes reach
//!   a parallel storage system through its *aggregate* bandwidth; every
//!   byte of input crosses the network.
//! * **Figure 1(b)** — a Hadoop cluster: each compute node carries its own
//!   disks, so a data-local read touches no network at all.
//!
//! `ClusterNet` owns one FIFO [`PipeResource`] per node NIC, per node disk,
//! per rack uplink, plus (HPC only) the shared-storage pipe, and charges
//! store-and-forward transfers across them. The per-pipe byte counters are
//! the raw data behind the Figure 1 experiment.

use std::collections::BTreeMap;

use hl_common::prelude::*;
use hl_common::units::ByteSize;
use hl_metrics::MetricsRegistry;

use crate::node::{ClusterSpec, DegradeModel, PerfProfile};
use crate::resource::{Charge, PipeResource};

/// Which Figure 1 architecture a cluster uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetArchitecture {
    /// Figure 1(b): storage on the compute nodes (data locality possible).
    HadoopLocalDisks {
        /// Bandwidth of each rack's uplink into the core switch, bytes/s.
        rack_uplink_bw: u64,
    },
    /// Figure 1(a): compute nodes share a parallel file system with a fixed
    /// aggregate bandwidth, reached across the core network.
    HpcParallelFs {
        /// Aggregate parallel-FS bandwidth, bytes/s (shared by everyone).
        storage_aggregate_bw: u64,
        /// Rack uplink bandwidth, bytes/s.
        rack_uplink_bw: u64,
    },
}

impl NetArchitecture {
    /// Hadoop layout with a 10 GbE-class rack uplink.
    pub fn hadoop_local_disks() -> Self {
        NetArchitecture::HadoopLocalDisks { rack_uplink_bw: 1170 * ByteSize::MIB }
    }

    /// HPC layout with the given parallel-storage aggregate bandwidth.
    pub fn hpc_parallel_fs(storage_aggregate_bw: u64) -> Self {
        NetArchitecture::HpcParallelFs {
            storage_aggregate_bw,
            rack_uplink_bw: 1170 * ByteSize::MIB,
        }
    }

    fn rack_uplink_bw(&self) -> u64 {
        match self {
            NetArchitecture::HadoopLocalDisks { rack_uplink_bw } => *rack_uplink_bw,
            NetArchitecture::HpcParallelFs { rack_uplink_bw, .. } => *rack_uplink_bw,
        }
    }
}

/// All bandwidth resources of one simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterNet {
    topology: Topology,
    nics: Vec<PipeResource>,
    disks: Vec<PipeResource>,
    uplinks: Vec<PipeResource>,
    shared_storage: Option<PipeResource>,
    remote_bytes: u64,
    /// Per-node [`DegradeModel`]s (node index → model). Nodes without an
    /// entry run at [`PerfProfile::NOMINAL`]; every disk/NIC charge for a
    /// degraded node consults its model at charge time.
    degrades: BTreeMap<u32, DegradeModel>,
}

impl ClusterNet {
    /// Build the resource graph for a cluster spec.
    pub fn new(spec: &ClusterSpec) -> Self {
        let topology = spec.topology.clone();
        let nics = topology
            .nodes()
            .map(|n| PipeResource::new(format!("{n}.nic"), spec.node.nic_bw))
            .collect();
        let disks = topology
            .nodes()
            .map(|n| PipeResource::new(format!("{n}.disk"), spec.node.disk_bw))
            .collect();
        let uplink_bw = spec.architecture.rack_uplink_bw();
        let uplinks = (0..topology.num_racks() as u32)
            .map(|r| PipeResource::new(format!("{}.uplink", RackId(r)), uplink_bw))
            .collect();
        let shared_storage = match spec.architecture {
            NetArchitecture::HpcParallelFs { storage_aggregate_bw, .. } => {
                Some(PipeResource::new("parallel-fs", storage_aggregate_bw))
            }
            NetArchitecture::HadoopLocalDisks { .. } => None,
        };
        ClusterNet {
            topology,
            nics,
            disks,
            uplinks,
            shared_storage,
            remote_bytes: 0,
            degrades: BTreeMap::new(),
        }
    }

    /// The cluster's rack topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Install (or replace) a node's degradation model. Affects every
    /// subsequent disk/NIC charge for that node; CPU scaling is read by
    /// the task engine through [`ClusterNet::node_profile`].
    pub fn set_node_model(&mut self, node: NodeId, model: DegradeModel) {
        self.degrades.insert(node.0, model);
    }

    /// Restore a node to nominal performance.
    pub fn clear_node_model(&mut self, node: NodeId) {
        self.degrades.remove(&node.0);
    }

    /// The node's effective performance profile at `now`.
    pub fn node_profile(&self, node: NodeId, now: SimTime) -> PerfProfile {
        self.degrades.get(&node.0).map_or(PerfProfile::NOMINAL, |m| m.profile_at(now))
    }

    fn disk_mult(&self, node: NodeId, now: SimTime) -> u32 {
        self.degrades.get(&node.0).map_or(PerfProfile::NOMINAL_BP, |m| m.profile_at(now).disk_mult)
    }

    fn nic_mult(&self, node: NodeId, now: SimTime) -> u32 {
        self.degrades.get(&node.0).map_or(PerfProfile::NOMINAL_BP, |m| m.profile_at(now).nic_mult)
    }

    /// True for Figure 1(a) clusters.
    pub fn has_shared_storage(&self) -> bool {
        self.shared_storage.is_some()
    }

    /// Sequential read from a node's local disk.
    pub fn read_local_disk(&mut self, now: SimTime, node: NodeId, bytes: u64) -> Charge {
        let mult = self.disk_mult(node, now);
        self.disks[node.0 as usize].charge_scaled(now, bytes, mult)
    }

    /// Sequential write to a node's local disk.
    pub fn write_local_disk(&mut self, now: SimTime, node: NodeId, bytes: u64) -> Charge {
        let mult = self.disk_mult(node, now);
        self.disks[node.0 as usize].charge_scaled(now, bytes, mult)
    }

    /// Node-to-node transfer: source NIC → (rack uplinks if cross-rack) →
    /// destination NIC, store-and-forward.
    pub fn transfer(&mut self, now: SimTime, src: NodeId, dst: NodeId, bytes: u64) -> Charge {
        if src == dst {
            // Loopback: no network resources touched.
            return Charge { start: now, end: now };
        }
        self.remote_bytes += bytes;
        let src_mult = self.nic_mult(src, now);
        let hop1 = self.nics[src.0 as usize].charge_scaled(now, bytes, src_mult);
        let mut at = hop1.end;
        let (src_rack, dst_rack) = (self.topology.rack(src), self.topology.rack(dst));
        if src_rack != dst_rack {
            // Rack uplinks are switch hardware, not node hardware: a
            // degraded *node* never slows its rack's shared uplink.
            let up = self.uplinks[src_rack.0 as usize].charge(at, bytes);
            let down = self.uplinks[dst_rack.0 as usize].charge(up.end, bytes);
            at = down.end;
        }
        let dst_mult = self.nic_mult(dst, at);
        let hop2 = self.nics[dst.0 as usize].charge_scaled(at, bytes, dst_mult);
        Charge { start: now, end: hop2.end }
    }

    /// Read `bytes` that physically live on `holder` from `reader`:
    /// holder's disk, then the network if they differ.
    pub fn read_remote(
        &mut self,
        now: SimTime,
        reader: NodeId,
        holder: NodeId,
        bytes: u64,
    ) -> Charge {
        let disk = self.read_local_disk(now, holder, bytes);
        if reader == holder {
            return Charge { start: now, end: disk.end };
        }
        let net = self.transfer(disk.end, holder, reader, bytes);
        Charge { start: now, end: net.end }
    }

    /// Read from the shared parallel FS (Figure 1(a) only): storage pipe,
    /// rack uplink, then the reader's NIC. Calling this on a
    /// Hadoop-architecture cluster (no shared store) is a wiring error,
    /// reported as [`HlError::Internal`].
    pub fn read_shared_storage(
        &mut self,
        now: SimTime,
        reader: NodeId,
        bytes: u64,
    ) -> Result<Charge> {
        let storage = self.shared_storage.as_mut().ok_or_else(|| {
            HlError::Internal("read_shared_storage on a local-disk cluster".into())
        })?;
        self.remote_bytes += bytes;
        let s = storage.charge(now, bytes);
        let rack = self.topology.rack(reader);
        let up = self.uplinks[rack.0 as usize].charge(s.end, bytes);
        let mult = self.nic_mult(reader, up.end);
        let nic = self.nics[reader.0 as usize].charge_scaled(up.end, bytes, mult);
        Ok(Charge { start: now, end: nic.end })
    }

    /// Write to the shared parallel FS (Figure 1(a) only). Same contract
    /// as [`ClusterNet::read_shared_storage`]: no shared store is a
    /// wiring error, not a panic.
    pub fn write_shared_storage(
        &mut self,
        now: SimTime,
        writer: NodeId,
        bytes: u64,
    ) -> Result<Charge> {
        // Check before charging the NIC/uplink: the error path must not
        // leave half a transfer accounted against the pipes.
        if self.shared_storage.is_none() {
            return Err(HlError::Internal("write_shared_storage on a local-disk cluster".into()));
        }
        let mult = self.nic_mult(writer, now);
        let nic = self.nics[writer.0 as usize].charge_scaled(now, bytes, mult);
        let rack = self.topology.rack(writer);
        let up = self.uplinks[rack.0 as usize].charge(nic.end, bytes);
        self.remote_bytes += bytes;
        let Some(storage) = self.shared_storage.as_mut() else {
            return Err(HlError::Internal("write_shared_storage on a local-disk cluster".into()));
        };
        let s = storage.charge(up.end, bytes);
        Ok(Charge { start: now, end: s.end })
    }

    /// Bytes that crossed any network link (the data-locality metric).
    pub fn remote_bytes(&self) -> u64 {
        self.remote_bytes
    }

    /// Bytes moved through a node's NIC.
    pub fn nic_bytes(&self, node: NodeId) -> u64 {
        self.nics[node.0 as usize].total_bytes()
    }

    /// Bytes served by the shared parallel FS (zero on Hadoop clusters).
    pub fn shared_storage_bytes(&self) -> u64 {
        self.shared_storage.as_ref().map_or(0, |s| s.total_bytes())
    }

    /// Utilization of the shared parallel FS pipe at `now`.
    pub fn shared_storage_utilization(&self, now: SimTime) -> f64 {
        self.shared_storage.as_ref().map_or(0.0, |s| s.utilization(now))
    }

    /// Export the network's instruments into `reg` under the "network"
    /// daemon: per-pipe cumulative bytes and current queue backlog (how
    /// far `free_at` runs ahead of `now` — the store-and-forward analog of
    /// queue depth), plus the cluster-wide remote-bytes total. All gauges:
    /// they are sampled levels of pipe state, re-set on every export.
    pub fn export_metrics(&self, now: SimTime, reg: &mut MetricsRegistry) {
        fn g(n: u64) -> i64 {
            i64::try_from(n).unwrap_or(i64::MAX)
        }
        let pipes = self
            .nics
            .iter()
            .chain(self.disks.iter())
            .chain(self.uplinks.iter())
            .chain(self.shared_storage.iter());
        for p in pipes {
            reg.set_gauge("network", &format!("{}.bytes", p.name), g(p.total_bytes()));
            let backlog = p.free_at().since(now.min(p.free_at())).as_micros();
            reg.set_gauge("network", &format!("{}.queue_micros", p.name), g(backlog));
        }
        reg.set_gauge("network", "remote.bytes", g(self.remote_bytes));
    }

    /// Reset byte/busy accounting on every pipe (between experiment runs).
    pub fn reset_accounting(&mut self) {
        for p in self
            .nics
            .iter_mut()
            .chain(self.disks.iter_mut())
            .chain(self.uplinks.iter_mut())
            .chain(self.shared_storage.iter_mut())
        {
            p.reset_accounting();
        }
        self.remote_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ClusterSpec;

    fn hadoop(nodes: usize, racks: usize) -> ClusterNet {
        ClusterNet::new(&ClusterSpec::hadoop_racked(nodes, racks))
    }

    #[test]
    fn local_read_touches_no_network() {
        let mut net = hadoop(4, 1);
        let c = net.read_remote(SimTime::ZERO, NodeId(0), NodeId(0), 120 * ByteSize::MIB);
        assert_eq!(c.end, SimTime(1_000_000)); // 120 MiB at 120 MiB/s disk
        assert_eq!(net.remote_bytes(), 0);
        assert_eq!(net.nic_bytes(NodeId(0)), 0);
    }

    #[test]
    fn rack_local_read_crosses_two_nics_only() {
        let mut net = hadoop(4, 1);
        let bytes = 117 * ByteSize::MIB;
        let c = net.read_remote(SimTime::ZERO, NodeId(0), NodeId(1), bytes);
        // disk (117/120 s) + src nic (1 s) + dst nic (1 s), store-and-forward
        let expect = SimDuration::for_transfer(bytes, 120 * ByteSize::MIB)
            + SimDuration::from_secs(1)
            + SimDuration::from_secs(1);
        assert_eq!(c.end.since(SimTime::ZERO), expect);
        assert_eq!(net.remote_bytes(), bytes);
    }

    #[test]
    fn cross_rack_read_also_charges_uplinks() {
        let mut net_flat = hadoop(4, 1);
        let mut net_racked = hadoop(4, 2);
        let bytes = 117 * ByteSize::MIB;
        // node0 -> node2 is same-rack in both striped(4,2) and flat.
        let same = net_flat.read_remote(SimTime::ZERO, NodeId(2), NodeId(0), bytes);
        // node0 -> node1 is cross-rack when striped over 2 racks.
        let cross = net_racked.read_remote(SimTime::ZERO, NodeId(1), NodeId(0), bytes);
        assert!(cross.end > same.end, "cross-rack must be slower than in-rack");
    }

    #[test]
    fn loopback_transfer_is_free() {
        let mut net = hadoop(2, 1);
        let c = net.transfer(SimTime(77), NodeId(1), NodeId(1), ByteSize::GIB);
        assert_eq!(c.start, c.end);
        assert_eq!(net.remote_bytes(), 0);
    }

    #[test]
    fn shared_storage_serializes_the_whole_cluster() {
        let spec = ClusterSpec::hpc_shared_storage(8, 200 * ByteSize::MIB);
        let mut net = ClusterNet::new(&spec);
        assert!(net.has_shared_storage());
        // 8 nodes each read 200 MiB concurrently: aggregate pipe serves them
        // one at a time, so the last finishes at ~8 s even though each
        // node's NIC could take it in ~1.7 s.
        let mut last = SimTime::ZERO;
        for n in 0..8 {
            let c = net.read_shared_storage(SimTime::ZERO, NodeId(n), 200 * ByteSize::MIB).unwrap();
            last = last.max(c.end);
        }
        assert!(last >= SimTime(8_000_000), "storage pipe must serialize: {last}");
        assert_eq!(net.shared_storage_bytes(), 8 * 200 * ByteSize::MIB);
    }

    #[test]
    fn hadoop_cluster_parallel_local_reads_dont_contend() {
        let mut net = hadoop(8, 1);
        let mut last = SimTime::ZERO;
        for n in 0..8 {
            let c = net.read_local_disk(SimTime::ZERO, NodeId(n), 120 * ByteSize::MIB);
            last = last.max(c.end);
        }
        assert_eq!(last, SimTime(1_000_000), "independent disks work in parallel");
    }

    #[test]
    fn shared_io_on_hadoop_is_an_error_not_a_panic() {
        let mut net = hadoop(2, 1);
        assert!(net.read_shared_storage(SimTime::ZERO, NodeId(0), 1).is_err());
        assert!(net.write_shared_storage(SimTime::ZERO, NodeId(0), 1).is_err());
        // The failed write must not count against any pipe.
        assert_eq!(net.remote_bytes(), 0);
        assert_eq!(net.nic_bytes(NodeId(0)), 0);
    }

    #[test]
    fn export_metrics_reports_link_bytes_and_queue_depth() {
        let mut net = hadoop(2, 1);
        let c = net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 117 * ByteSize::MIB);
        let mut reg = MetricsRegistry::new();
        net.export_metrics(SimTime::ZERO, &mut reg);
        let snap = reg.snapshot(SimTime::ZERO);
        let mib117 = i64::try_from(117 * ByteSize::MIB).unwrap();
        assert_eq!(snap.gauge("network", "node000.nic.bytes"), mib117);
        assert_eq!(snap.gauge("network", "node001.nic.bytes"), mib117);
        assert_eq!(snap.gauge("network", "remote.bytes"), mib117);
        // Sampled at time zero, the destination NIC is still draining.
        assert!(snap.gauge("network", "node001.nic.queue_micros") > 0);
        // Sampled after the transfer completes, the backlog is gone.
        net.export_metrics(c.end, &mut reg);
        let snap = reg.snapshot(c.end);
        assert_eq!(snap.gauge("network", "node001.nic.queue_micros"), 0);
    }

    #[test]
    fn degraded_node_slows_disk_and_nic_charges() {
        use crate::node::{DegradeModel, PerfProfile};
        let mut nominal = hadoop(4, 1);
        let mut degraded = hadoop(4, 1);
        degraded.set_node_model(NodeId(1), DegradeModel::Static(PerfProfile::uniform(5_000)));
        let bytes = 117 * ByteSize::MIB;

        let d0 = nominal.read_local_disk(SimTime::ZERO, NodeId(1), bytes);
        let d1 = degraded.read_local_disk(SimTime::ZERO, NodeId(1), bytes);
        assert_eq!(d1.end.since(SimTime::ZERO).0, 2 * d0.end.since(SimTime::ZERO).0);

        // A transfer *into* the degraded node pays its half-speed NIC.
        let t0 = nominal.transfer(SimTime::ZERO, NodeId(0), NodeId(1), bytes);
        let t1 = degraded.transfer(SimTime::ZERO, NodeId(0), NodeId(1), bytes);
        assert!(t1.end > t0.end, "degraded NIC must slow the transfer");
        // Other nodes are untouched.
        let o0 = nominal.read_local_disk(SimTime::ZERO, NodeId(2), bytes);
        let o1 = degraded.read_local_disk(SimTime::ZERO, NodeId(2), bytes);
        assert_eq!(o0.end, o1.end);
    }

    #[test]
    fn time_varying_model_is_sampled_at_charge_time() {
        use crate::node::{DegradeModel, PerfProfile};
        let mut net = hadoop(2, 1);
        net.set_node_model(
            NodeId(0),
            DegradeModel::Window {
                from: SimTime(10_000_000),
                until: SimTime(20_000_000),
                during: PerfProfile::uniform(2_500),
            },
        );
        let bytes = 120 * ByteSize::MIB; // 1 s at nominal disk speed
        let before = net.read_local_disk(SimTime::ZERO, NodeId(0), bytes);
        assert_eq!(before.end, SimTime(1_000_000), "nominal before the window");
        let inside = net.read_local_disk(SimTime(10_000_000), NodeId(0), bytes);
        assert_eq!(
            inside.end.since(inside.start),
            SimDuration::from_secs(4),
            "quarter speed inside the window"
        );
        let after = net.read_local_disk(SimTime(30_000_000), NodeId(0), bytes);
        assert_eq!(after.end.since(after.start), SimDuration::from_secs(1));
        net.clear_node_model(NodeId(0));
        assert!(net.node_profile(NodeId(0), SimTime(15_000_000)).is_nominal());
    }

    #[test]
    fn reset_accounting_zeroes_counters() {
        let mut net = hadoop(2, 1);
        net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 1000);
        assert!(net.remote_bytes() > 0);
        net.reset_accounting();
        assert_eq!(net.remote_bytes(), 0);
        assert_eq!(net.nic_bytes(NodeId(0)), 0);
    }
}
