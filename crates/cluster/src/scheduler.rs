//! A PBS/Moab-like batch scheduler, as the course used on Palmetto.
//!
//! What the paper needs from it:
//! * students submit reservations for N nodes × walltime and queue FIFO;
//! * higher-priority research jobs can **preempt** student jobs
//!   ("their jobs can be preempted from the system by higher priority
//!   research jobs");
//! * released nodes are handed to the next request *immediately*, but the
//!   cleanup script that would sweep ghost daemons only runs periodically
//!   (the paper's 15-minute wait);
//! * walltime expiry force-releases nodes.

use std::collections::{BTreeMap, VecDeque};

use hl_common::prelude::*;

/// Priority classes on the shared machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Student coursework (preemptible).
    Student,
    /// Research workloads (may preempt students).
    Research,
}

/// A request for nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReservationRequest {
    /// Owner (user name) — also the port-registry owner string.
    pub user: String,
    /// Number of nodes wanted.
    pub nodes: usize,
    /// Maximum hold time; the scheduler force-releases after this.
    pub walltime: SimDuration,
    /// Queue priority class.
    pub priority: Priority,
}

/// Identifier of a queued or running reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReservationId(pub u64);

/// A granted allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservation {
    /// Its id.
    pub id: ReservationId,
    /// The original request.
    pub request: ReservationRequest,
    /// Nodes granted.
    pub nodes: Vec<NodeId>,
    /// When it started.
    pub started_at: SimTime,
    /// When walltime expires.
    pub expires_at: SimTime,
}

/// What happened on a scheduler tick.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TickOutcome {
    /// Reservations that started this tick.
    pub started: Vec<Reservation>,
    /// Reservations force-ended (walltime) this tick.
    pub expired: Vec<Reservation>,
    /// Reservations preempted by research jobs this tick.
    pub preempted: Vec<Reservation>,
}

/// The batch scheduler.
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    total_nodes: usize,
    free: Vec<NodeId>,
    queue: VecDeque<(ReservationId, ReservationRequest, SimTime)>,
    running: BTreeMap<ReservationId, Reservation>,
    next_id: u64,
    /// Period of the ghost-daemon cleanup cron (paper: 15 minutes).
    pub cleanup_period: SimDuration,
    last_cleanup: SimTime,
}

impl BatchScheduler {
    /// Scheduler over `total_nodes` initially-free nodes.
    pub fn new(total_nodes: usize) -> Self {
        BatchScheduler {
            total_nodes,
            free: (0..total_nodes as u32).rev().map(NodeId).collect(),
            queue: VecDeque::new(),
            running: BTreeMap::new(),
            next_id: 1,
            cleanup_period: SimDuration::from_mins(15),
            last_cleanup: SimTime::ZERO,
        }
    }

    /// Submit a request; it queues FIFO within its priority class.
    pub fn submit(&mut self, now: SimTime, request: ReservationRequest) -> ReservationId {
        let id = ReservationId(self.next_id);
        self.next_id += 1;
        if request.priority == Priority::Research {
            // Research jobs jump the student queue.
            let pos = self
                .queue
                .iter()
                .position(|(_, r, _)| r.priority == Priority::Student)
                .unwrap_or(self.queue.len());
            self.queue.insert(pos, (id, request, now));
        } else {
            self.queue.push_back((id, request, now));
        }
        id
    }

    /// Run one scheduling pass at `now`: expire walltimes, preempt students
    /// if a research job needs nodes, start whatever fits, FIFO order.
    pub fn tick(&mut self, now: SimTime) -> TickOutcome {
        let mut outcome = TickOutcome::default();

        // 1. Walltime expiry.
        let expired_ids: Vec<_> =
            self.running.values().filter(|r| r.expires_at <= now).map(|r| r.id).collect();
        for id in expired_ids {
            // Ids were collected from `running` above; a miss means the
            // table changed under us — skip rather than panic the daemon.
            let Some(res) = self.running.remove(&id) else { continue };
            self.free.extend(res.nodes.iter().copied());
            outcome.expired.push(res);
        }

        // 2. Preemption: if the head of the queue is research and cannot
        //    fit, evict student reservations (youngest first) until it can.
        if let Some((_, head, _)) = self.queue.front() {
            if head.priority == Priority::Research && head.nodes <= self.total_nodes {
                while self.free.len() < head.nodes {
                    let victim = self
                        .running
                        .values()
                        .filter(|r| r.request.priority == Priority::Student)
                        .max_by_key(|r| r.started_at)
                        .map(|r| r.id);
                    match victim.and_then(|id| self.running.remove(&id)) {
                        Some(res) => {
                            self.free.extend(res.nodes.iter().copied());
                            outcome.preempted.push(res);
                        }
                        None => break,
                    }
                }
            }
        }

        // 3. Start from the queue head while it fits (strict FIFO: a stuck
        //    head blocks the queue, as PBS default behaviour did).
        while let Some((_, req, _)) = self.queue.front() {
            if req.nodes > self.free.len() {
                break;
            }
            let Some((id, request, submitted)) = self.queue.pop_front() else { break };
            // The fit check above guarantees this subtraction; a failure
            // means free shrank mid-pass — requeue the head and stop.
            let Some(split) = self.free.len().checked_sub(request.nodes) else {
                self.queue.push_front((id, request, submitted));
                break;
            };
            let mut nodes = self.free.split_off(split);
            nodes.sort_unstable();
            let res = Reservation {
                id,
                nodes,
                started_at: now,
                expires_at: now + request.walltime,
                request,
            };
            self.running.insert(id, res.clone());
            outcome.started.push(res);
        }

        outcome
    }

    /// Voluntarily end a reservation (the student's job script finished).
    pub fn release(&mut self, id: ReservationId) -> Option<Reservation> {
        let res = self.running.remove(&id)?;
        self.free.extend(res.nodes.iter().copied());
        Some(res)
    }

    /// True when the periodic cleanup cron should fire at `now`; advances
    /// the cron clock when it does.
    pub fn cleanup_due(&mut self, now: SimTime) -> bool {
        if now.since(self.last_cleanup) >= self.cleanup_period {
            self.last_cleanup = now;
            true
        } else {
            false
        }
    }

    /// Currently running reservation, by id.
    pub fn running(&self, id: ReservationId) -> Option<&Reservation> {
        self.running.get(&id)
    }

    /// Number of free nodes.
    pub fn free_nodes(&self) -> usize {
        self.free.len()
    }

    /// Number of queued (not yet started) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Overall utilization: busy nodes / total (the paper cites ~90% on the
    /// shared machine).
    pub fn utilization(&self) -> f64 {
        if self.total_nodes == 0 {
            return 0.0;
        }
        (self.total_nodes - self.free.len()) as f64 / self.total_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(user: &str, nodes: usize) -> ReservationRequest {
        ReservationRequest {
            user: user.into(),
            nodes,
            walltime: SimDuration::from_hours(2),
            priority: Priority::Student,
        }
    }

    #[test]
    fn fifo_placement_with_lowest_nodes_first() {
        let mut s = BatchScheduler::new(8);
        s.submit(SimTime::ZERO, req("alice", 3));
        s.submit(SimTime::ZERO, req("bob", 4));
        let out = s.tick(SimTime::ZERO);
        assert_eq!(out.started.len(), 2);
        assert_eq!(out.started[0].nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(out.started[1].nodes, vec![NodeId(3), NodeId(4), NodeId(5), NodeId(6)]);
        assert_eq!(s.free_nodes(), 1);
        assert!((s.utilization() - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn head_of_queue_blocks_strictly() {
        let mut s = BatchScheduler::new(4);
        s.submit(SimTime::ZERO, req("big", 4));
        s.tick(SimTime::ZERO);
        s.submit(SimTime::ZERO, req("huge", 3));
        s.submit(SimTime::ZERO, req("tiny", 1));
        let out = s.tick(SimTime(1));
        // Even though tiny would fit nothing starts: huge blocks the head.
        assert!(out.started.is_empty());
        assert_eq!(s.queue_len(), 2);
    }

    #[test]
    fn walltime_expiry_force_releases() {
        let mut s = BatchScheduler::new(2);
        let mut r = req("alice", 2);
        r.walltime = SimDuration::from_mins(30);
        s.submit(SimTime::ZERO, r);
        s.tick(SimTime::ZERO);
        assert_eq!(s.free_nodes(), 0);
        let out = s.tick(SimTime::ZERO + SimDuration::from_mins(31));
        assert_eq!(out.expired.len(), 1);
        assert_eq!(s.free_nodes(), 2);
    }

    #[test]
    fn research_jobs_preempt_students() {
        let mut s = BatchScheduler::new(8);
        s.submit(SimTime::ZERO, req("alice", 4));
        s.submit(SimTime::ZERO, req("bob", 4));
        s.tick(SimTime::ZERO);
        assert_eq!(s.free_nodes(), 0);
        s.submit(
            SimTime(10),
            ReservationRequest {
                user: "research".into(),
                nodes: 6,
                walltime: SimDuration::from_hours(12),
                priority: Priority::Research,
            },
        );
        let out = s.tick(SimTime(10));
        // Bob (youngest... both same start; max_by_key picks one) — at least
        // one student preempted and research started.
        assert!(!out.preempted.is_empty());
        assert_eq!(out.started.len(), 1);
        assert_eq!(out.started[0].request.user, "research");
    }

    #[test]
    fn research_jumps_the_student_queue() {
        let mut s = BatchScheduler::new(2);
        s.submit(SimTime::ZERO, req("filler", 2));
        s.tick(SimTime::ZERO);
        s.submit(SimTime::ZERO, req("student-waiting", 2));
        s.submit(
            SimTime(1),
            ReservationRequest {
                user: "research".into(),
                nodes: 2,
                walltime: SimDuration::from_hours(1),
                priority: Priority::Research,
            },
        );
        let out = s.tick(SimTime(2));
        assert_eq!(out.started[0].request.user, "research");
    }

    #[test]
    fn voluntary_release_frees_nodes() {
        let mut s = BatchScheduler::new(4);
        let id = s.submit(SimTime::ZERO, req("alice", 4));
        s.tick(SimTime::ZERO);
        assert!(s.running(id).is_some());
        let res = s.release(id).unwrap();
        assert_eq!(res.request.user, "alice");
        assert_eq!(s.free_nodes(), 4);
        assert!(s.release(id).is_none());
    }

    proptest::proptest! {
        /// Random submit/tick/release/expire sequences never double-allocate
        /// a node, and free + allocated always equals the pool size.
        #[test]
        fn prop_allocation_is_conservative(
            ops in proptest::collection::vec((0u8..4, 1usize..5, 1u64..5), 1..60),
        ) {
            let total = 8;
            let mut s = BatchScheduler::new(total);
            let mut t = SimTime::ZERO;
            let mut ids: Vec<ReservationId> = Vec::new();
            for (op, nodes, mins) in ops {
                match op {
                    0 => {
                        let id = s.submit(t, ReservationRequest {
                            user: "u".into(),
                            nodes,
                            walltime: SimDuration::from_mins(mins * 10),
                            priority: if mins % 2 == 0 { Priority::Student } else { Priority::Research },
                        });
                        ids.push(id);
                    }
                    1 => {
                        t += SimDuration::from_mins(mins);
                        let out = s.tick(t);
                        for r in out.started.iter() { ids.push(r.id); }
                    }
                    2 => {
                        // Release the most recent reservation. Keep its id
                        // tracked: releasing a *queued* id is a no-op and it
                        // may still start on a later tick.
                        if let Some(&id) = ids.last() {
                            s.release(id);
                        }
                    }
                    _ => {
                        t += SimDuration::from_mins(mins * 30);
                        s.tick(t);
                    }
                }
                // Invariant: every running reservation's nodes are disjoint
                // and free + allocated == total. (ids can contain
                // duplicates — submit and tick both record them — so check
                // each reservation once.)
                let uniq: std::collections::BTreeSet<ReservationId> =
                    ids.iter().copied().collect();
                let mut seen = std::collections::BTreeSet::new();
                let mut allocated = 0usize;
                for id in &uniq {
                    if let Some(r) = s.running(*id) {
                        for n in &r.nodes {
                            proptest::prop_assert!(seen.insert(*n), "node {n} double-allocated");
                        }
                        allocated += r.nodes.len();
                    }
                }
                proptest::prop_assert_eq!(s.free_nodes() + allocated, total);
            }
        }
    }

    #[test]
    fn cleanup_cron_fires_every_period() {
        let mut s = BatchScheduler::new(1);
        assert!(!s.cleanup_due(SimTime::ZERO + SimDuration::from_mins(5)));
        assert!(s.cleanup_due(SimTime::ZERO + SimDuration::from_mins(15)));
        assert!(!s.cleanup_due(SimTime::ZERO + SimDuration::from_mins(16)));
        assert!(s.cleanup_due(SimTime::ZERO + SimDuration::from_mins(31)));
    }
}
