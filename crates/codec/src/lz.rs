//! The raw LZ77 block format: a greedy hash-chain matcher in the LZ4
//! family, chosen for the same reason the course clusters ran LZO — the
//! decode side is a straight byte-copy loop, so the CPU spent per saved
//! disk/NIC byte is small enough for compression to win on I/O-bound jobs
//! (the tradeoff the paper's wordcount study measures).
//!
//! Block layout is a sequence of *sequences*:
//!
//! ```text
//! sequence := token | [literal-length ext] | literals
//!             | match-offset (2 bytes LE) | [match-length ext]
//! token    := (literal_len nibble << 4) | (match_len - 4) nibble
//! ```
//!
//! A nibble of 15 spills into extension bytes (add each byte, stop at the
//! first byte != 255). The final sequence is literals-only: the block ends
//! after its literals, with no offset. Matches are at least [`MIN_MATCH`]
//! bytes and reach back at most [`MAX_OFFSET`] bytes; overlapping copies
//! are legal (that is how runs compress).

use hl_common::prelude::*;

/// Shortest match worth encoding (below this a literal is cheaper).
pub const MIN_MATCH: usize = 4;

/// Farthest a match may reach back (2-byte offset).
pub const MAX_OFFSET: usize = 0xFFFF;

/// Hash-table size: 2^13 slots of last-seen positions.
const HASH_BITS: u32 = 13;

#[inline]
fn hash4(v: u32) -> usize {
    // Knuth multiplicative hash over the 4-byte window.
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

/// Append a length value that overflowed its 4-bit token nibble.
fn write_len_ext(mut v: usize, out: &mut Vec<u8>) {
    debug_assert!(v >= 15);
    v -= 15;
    while v >= 255 {
        out.push(255);
        v -= 255;
    }
    out.push(v as u8);
}

/// Emit one sequence: `literals` then a match of `mlen` at `offset` back.
fn emit_match(literals: &[u8], offset: u16, mlen: usize, out: &mut Vec<u8>) {
    debug_assert!(mlen >= MIN_MATCH && offset >= 1);
    let lit_nibble = literals.len().min(15) as u8;
    let match_nibble = (mlen - MIN_MATCH).min(15) as u8;
    out.push((lit_nibble << 4) | match_nibble);
    if literals.len() >= 15 {
        write_len_ext(literals.len(), out);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&offset.to_le_bytes());
    if mlen - MIN_MATCH >= 15 {
        write_len_ext(mlen - MIN_MATCH, out);
    }
}

/// Emit the final, literals-only sequence (always present, possibly empty,
/// so the decoder has an unambiguous end-of-block).
fn emit_final(literals: &[u8], out: &mut Vec<u8>) {
    let lit_nibble = literals.len().min(15) as u8;
    out.push(lit_nibble << 4);
    if literals.len() >= 15 {
        write_len_ext(literals.len(), out);
    }
    out.extend_from_slice(literals);
}

/// Compress one block. Never fails; worst case the output is the input
/// plus sequence overhead (the framing layer falls back to stored frames
/// when that happens).
pub fn compress_block(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len() / 2 + 16);
    // Slot holds position + 1; 0 means empty.
    let mut table = vec![0u32; 1 << HASH_BITS];
    let mut anchor = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= src.len() {
        let v = u32::from_le_bytes([src[i], src[i + 1], src[i + 2], src[i + 3]]);
        let slot = hash4(v);
        let candidate = table[slot] as usize;
        table[slot] = (i + 1) as u32;
        if candidate > 0 {
            let c = candidate - 1;
            if i - c <= MAX_OFFSET && src[c..c + MIN_MATCH] == src[i..i + MIN_MATCH] {
                let mut mlen = MIN_MATCH;
                while i + mlen < src.len() && src[c + mlen] == src[i + mlen] {
                    mlen += 1;
                }
                emit_match(&src[anchor..i], (i - c) as u16, mlen, &mut out);
                i += mlen;
                anchor = i;
                continue;
            }
        }
        i += 1;
    }
    emit_final(&src[anchor..], &mut out);
    out
}

fn eof(what: &str) -> HlError {
    HlError::Codec(format!("lz block truncated reading {what}"))
}

/// Read a nibble-overflow length extension.
fn read_len_ext(src: &[u8], i: &mut usize) -> Result<usize> {
    let mut v = 15usize;
    loop {
        let b = *src.get(*i).ok_or_else(|| eof("length extension"))?;
        *i += 1;
        v += b as usize;
        if b != 255 {
            return Ok(v);
        }
    }
}

/// Decompress one block that must expand to exactly `raw_len` bytes.
pub fn decompress_block(src: &[u8], raw_len: usize) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0usize;
    if src.is_empty() {
        return Err(eof("token"));
    }
    loop {
        let token = *src.get(i).ok_or_else(|| eof("token"))?;
        i += 1;
        let mut lit = (token >> 4) as usize;
        if lit == 15 {
            lit = read_len_ext(src, &mut i)?;
        }
        let lit_end =
            i.checked_add(lit).filter(|&e| e <= src.len()).ok_or_else(|| eof("literals"))?;
        out.extend_from_slice(&src[i..lit_end]);
        i = lit_end;
        if out.len() > raw_len {
            return Err(HlError::Codec("lz block expands past its declared length".into()));
        }
        if i == src.len() {
            break; // final, literals-only sequence
        }
        if i + 2 > src.len() {
            return Err(eof("match offset"));
        }
        let offset = u16::from_le_bytes([src[i], src[i + 1]]) as usize;
        i += 2;
        let mut mlen = (token & 0x0F) as usize;
        if mlen == 15 {
            mlen = read_len_ext(src, &mut i)?;
        }
        mlen += MIN_MATCH;
        if offset == 0 || offset > out.len() {
            return Err(HlError::Codec(format!(
                "lz match offset {offset} outside the {} bytes decoded so far",
                out.len()
            )));
        }
        if out.len() + mlen > raw_len {
            return Err(HlError::Codec("lz block expands past its declared length".into()));
        }
        // Byte-wise copy: offsets shorter than the match length are legal
        // overlapping copies (run-length encoding in LZ77 clothing).
        for _ in 0..mlen {
            let b = out[out.len() - offset];
            out.push(b);
        }
    }
    if out.len() != raw_len {
        return Err(HlError::Codec(format!(
            "lz block decoded to {} bytes, frame declared {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(src: &[u8]) {
        let packed = compress_block(src);
        let unpacked = decompress_block(&packed, src.len()).unwrap();
        assert_eq!(unpacked, src);
    }

    #[test]
    fn block_round_trips_on_edge_shapes() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abcd");
        round_trip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        round_trip("the quick brown fox jumps over the lazy dog ".repeat(40).as_bytes());
        // Exactly-min-match repeats and a long literal tail.
        let mut v = b"wxyzwxyz".to_vec();
        v.extend((0u16..400).flat_map(|n| n.to_be_bytes()));
        round_trip(&v);
    }

    #[test]
    fn repetitive_input_compresses_hard() {
        let src = b"hadoop ".repeat(10_000);
        let packed = compress_block(&src);
        assert!(
            packed.len() * 10 < src.len(),
            "{} bytes only packed to {}",
            src.len(),
            packed.len()
        );
        assert_eq!(decompress_block(&packed, src.len()).unwrap(), src);
    }

    #[test]
    fn corrupt_blocks_are_errors_not_panics() {
        let src = b"mapreduce shuffles sorted runs ".repeat(64);
        let packed = compress_block(&src);
        // Truncations anywhere must error (never panic, never OOM).
        for cut in 0..packed.len() {
            assert!(decompress_block(&packed[..cut], src.len()).is_err());
        }
        // Wrong declared length is caught.
        assert!(decompress_block(&packed, src.len() - 1).is_err());
        assert!(decompress_block(&packed, src.len() + 1).is_err());
        // A zero offset is invalid.
        assert!(decompress_block(&[0x01, b'x', 0x00, 0x00], 10).is_err());
    }

    proptest! {
        #[test]
        fn prop_block_round_trips_arbitrary(src in proptest::collection::vec(any::<u8>(), 0..4096)) {
            round_trip(&src);
        }

        #[test]
        fn prop_block_round_trips_repetitive(
            unit in proptest::collection::vec(0u8..4, 1..12),
            reps in 1usize..600,
        ) {
            round_trip(&unit.repeat(reps));
        }

        #[test]
        fn prop_decoder_rejects_garbage_without_panicking(
            junk in proptest::collection::vec(any::<u8>(), 0..512),
            raw_len in 0usize..2048,
        ) {
            // Any byte soup either decodes to exactly raw_len bytes or errors.
            if let Ok(out) = decompress_block(&junk, raw_len) {
                prop_assert_eq!(out.len(), raw_len);
            }
        }
    }
}
