//! `hl-codec`: a pure-Rust, zero-dependency, LZO-class splittable block
//! codec for HadoopLab's byte paths.
//!
//! The paper's clusters taught compression as a CPU-vs-I/O tradeoff: LZO
//! on the wordcount corpus traded a little CPU for a lot of disk and
//! network (the arXiv:1307.1517 study HadoopLab's ROADMAP item 3 cites).
//! This crate supplies the mechanism: [`lz`] is the raw LZ4-family block
//! format, [`frame`] wraps blocks in a sync-marked, CRC-protected,
//! *splittable* container, and [`Codec`]/[`CodecId`] are what the DFS
//! client, the map-output spill path, and `JobConf` plumb around.
//!
//! Costs are charged by the DES, not measured: [`COMPRESS_BYTES_PER_SEC`]
//! and [`DECOMPRESS_BYTES_PER_SEC`] are the nominal single-core codec
//! throughputs (LZO-class: decode much faster than encode), scaled per
//! node by `PerfProfile` at the charge sites.

#![warn(missing_docs)]

pub mod frame;
pub mod lz;

pub use frame::{
    compress_container, compress_to_frames, decode_frame, decode_frames_from, decompress_container,
    encode_frame, find_sync, parse_frame, FrameHeader, FRAME_RAW_CHUNK, SYNC_MARKER,
};

use hl_common::prelude::*;
use hl_common::writable::Writable;

/// Nominal single-core compression throughput the DES charges (bytes of
/// *input* per simulated second), before `PerfProfile` scaling.
pub const COMPRESS_BYTES_PER_SEC: u64 = 150 * 1024 * 1024;

/// Nominal single-core decompression throughput (bytes of *output* per
/// simulated second) — LZO-class codecs decode several times faster than
/// they encode.
pub const DECOMPRESS_BYTES_PER_SEC: u64 = 500 * 1024 * 1024;

/// Which codec encoded a payload. Serialized into frame headers, the
/// per-file flag in the NameNode's namespace, and the edit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum CodecId {
    /// Passthrough: bytes stored verbatim.
    #[default]
    Null = 0,
    /// The LZ77 greedy matcher in [`lz`].
    Hlz = 1,
}

impl CodecId {
    /// Configuration-file name (`mapred.output.compression.codec` value).
    pub fn name(self) -> &'static str {
        match self {
            CodecId::Null => "none",
            CodecId::Hlz => "hlz",
        }
    }

    /// Parse a configuration-file name.
    pub fn parse(name: &str) -> Result<Self> {
        match name {
            "none" | "null" => Ok(CodecId::Null),
            "hlz" => Ok(CodecId::Hlz),
            other => Err(HlError::Config(format!("unknown compression codec {other:?}"))),
        }
    }
}

impl std::fmt::Display for CodecId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Writable for CodecId {
    fn write(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        match u8::read(buf)? {
            0 => Ok(CodecId::Null),
            1 => Ok(CodecId::Hlz),
            t => Err(HlError::Codec(format!("unknown codec id {t}"))),
        }
    }
}

/// A block compressor/decompressor. Implementations are stateless; the
/// framing layer ([`frame`]) adds lengths, CRCs, and sync markers.
pub trait Codec {
    /// Which [`CodecId`] this codec answers to.
    fn id(&self) -> CodecId;

    /// Compress one block. Infallible; callers compare lengths and keep
    /// the raw bytes when compression does not pay (stored frames).
    fn compress_block(&self, src: &[u8]) -> Vec<u8>;

    /// Decompress one block that must expand to exactly `raw_len` bytes.
    fn decompress_block(&self, src: &[u8], raw_len: usize) -> Result<Vec<u8>>;
}

/// The passthrough codec: compress and decompress are both the identity.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCodec;

impl Codec for NullCodec {
    fn id(&self) -> CodecId {
        CodecId::Null
    }

    fn compress_block(&self, src: &[u8]) -> Vec<u8> {
        src.to_vec()
    }

    fn decompress_block(&self, src: &[u8], raw_len: usize) -> Result<Vec<u8>> {
        if src.len() != raw_len {
            return Err(HlError::Codec(format!(
                "stored payload is {} bytes, frame declared {raw_len}",
                src.len()
            )));
        }
        Ok(src.to_vec())
    }
}

/// The LZ77 greedy-matcher codec (see [`lz`] for the format).
#[derive(Debug, Clone, Copy, Default)]
pub struct HlzCodec;

impl Codec for HlzCodec {
    fn id(&self) -> CodecId {
        CodecId::Hlz
    }

    fn compress_block(&self, src: &[u8]) -> Vec<u8> {
        lz::compress_block(src)
    }

    fn decompress_block(&self, src: &[u8], raw_len: usize) -> Result<Vec<u8>> {
        lz::decompress_block(src, raw_len)
    }
}

/// Look a codec up by id (both are zero-sized, so statics suffice).
pub fn codec_for(id: CodecId) -> &'static dyn Codec {
    match id {
        CodecId::Null => &NullCodec,
        CodecId::Hlz => &HlzCodec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_id_round_trips() {
        for id in [CodecId::Null, CodecId::Hlz] {
            assert_eq!(CodecId::from_bytes(&id.to_bytes()).unwrap(), id);
            assert_eq!(CodecId::parse(id.name()).unwrap(), id);
        }
        assert!(CodecId::from_bytes(&[7]).is_err());
        assert!(CodecId::parse("lzo2").is_err());
        assert_eq!(CodecId::parse("null").unwrap(), CodecId::Null);
        assert_eq!(CodecId::default(), CodecId::Null);
    }

    #[test]
    fn trait_objects_round_trip_via_either_codec() {
        let data = b"JobTracker assigns map tasks near their blocks ".repeat(100);
        for id in [CodecId::Null, CodecId::Hlz] {
            let codec = codec_for(id);
            assert_eq!(codec.id(), id);
            let packed = codec.compress_block(&data);
            assert_eq!(codec.decompress_block(&packed, data.len()).unwrap(), data);
        }
        // The null codec refuses a length mismatch.
        assert!(NullCodec.decompress_block(b"abc", 2).is_err());
    }
}
