//! The splittable container: compressed data travels as a sequence of
//! self-describing *frames*, each opened by an 8-byte sync marker and a
//! [`FrameHeader`] carrying the uncompressed length and a CRC32 of the
//! uncompressed bytes.
//!
//! The design copies what made LZO files splittable on the course
//! clusters: because every frame is independently decodable and announces
//! itself with a marker, a reader dropped at an arbitrary byte offset can
//! scan forward to the next marker ([`find_sync`]) and decode from there —
//! exactly what an `InputSplit` needs. The DFS writer additionally cuts
//! HDFS blocks on frame boundaries, so every block boundary *is* a sync
//! boundary and per-block splits decode without touching a neighbor.
//!
//! Integrity layering: the DataNode's 512-byte [`ChunkedChecksum`] catches
//! bit rot on the stored (compressed) bytes before any decode runs; the
//! frame CRC is a second, end-to-end check over the *uncompressed* bytes,
//! so a codec bug (or rot that slipped past) can never silently hand a
//! job corrupted records.
//!
//! [`ChunkedChecksum`]: hl_common::checksum::ChunkedChecksum

use hl_common::checksum::Crc32;
use hl_common::prelude::*;
use hl_common::writable::{read_vu64, write_vu64, Writable};

use crate::{codec_for, CodecId};

/// Frame boundary marker. Like a SequenceFile sync marker, it is a fixed
/// improbable byte string; candidates are verified by fully parsing (and
/// CRC-checking) the frame they claim to open, so payload bytes that
/// happen to collide are rejected.
pub const SYNC_MARKER: [u8; 8] = [0x48, 0x4C, 0x5A, 0x31, 0xC3, 0xA9, 0x55, 0xE7];

/// Uncompressed bytes per frame. Small enough that a frame never straddles
/// the simulator's (tiny, teaching-scale) DFS blocks awkwardly, large
/// enough for the matcher to find real redundancy.
pub const FRAME_RAW_CHUNK: usize = 64 * 1024;

/// Upper bound a decoder will accept for one frame's uncompressed length —
/// an allocation guard against corrupt or hostile headers.
pub const MAX_FRAME_RAW_LEN: u64 = 16 * 1024 * 1024;

/// Everything after a frame's sync marker, before its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// How the payload is encoded: [`CodecId::Null`] means stored
    /// verbatim (the fallback when compression would not shrink a chunk).
    pub method: CodecId,
    /// Uncompressed payload length.
    pub raw_len: u64,
    /// Stored payload length.
    pub comp_len: u64,
    /// CRC32 over the *uncompressed* bytes.
    pub crc: u32,
}

impl Writable for FrameHeader {
    fn write(&self, buf: &mut Vec<u8>) {
        self.method.write(buf);
        write_vu64(self.raw_len, buf);
        write_vu64(self.comp_len, buf);
        self.crc.write(buf);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(FrameHeader {
            method: CodecId::read(buf)?,
            raw_len: read_vu64(buf)?,
            comp_len: read_vu64(buf)?,
            crc: u32::read(buf)?,
        })
    }
}

/// Encode one chunk as a complete frame (marker + header + payload).
/// Falls back to a stored ([`CodecId::Null`]) frame when the codec fails
/// to shrink the chunk, so incompressible data costs only header overhead.
pub fn encode_frame(id: CodecId, chunk: &[u8]) -> Vec<u8> {
    let packed = codec_for(id).compress_block(chunk);
    let (method, payload) =
        if packed.len() < chunk.len() { (id, packed) } else { (CodecId::Null, chunk.to_vec()) };
    let header = FrameHeader {
        method,
        raw_len: chunk.len() as u64,
        comp_len: payload.len() as u64,
        crc: Crc32::checksum(chunk),
    };
    let mut frame = Vec::with_capacity(SYNC_MARKER.len() + 16 + payload.len());
    frame.extend_from_slice(&SYNC_MARKER);
    header.write(&mut frame);
    frame.extend_from_slice(&payload);
    frame
}

/// Split `data` into [`FRAME_RAW_CHUNK`]-sized chunks and encode each as
/// its own frame. Empty input yields zero frames.
pub fn compress_to_frames(id: CodecId, data: &[u8]) -> Vec<Vec<u8>> {
    data.chunks(FRAME_RAW_CHUNK).map(|chunk| encode_frame(id, chunk)).collect()
}

/// Compress `data` into a single contiguous container (the frames,
/// concatenated).
pub fn compress_container(id: CodecId, data: &[u8]) -> Vec<u8> {
    compress_to_frames(id, data).concat()
}

/// Parse the frame starting exactly at `at`. Returns the header, the
/// payload slice, and the offset one past the frame. Does *not* CRC-check
/// the payload — [`decode_frame`] does.
pub fn parse_frame(bytes: &[u8], at: usize) -> Result<(FrameHeader, &[u8], usize)> {
    let rest = bytes.get(at..).ok_or_else(|| HlError::Codec("frame offset past the end".into()))?;
    if rest.len() < SYNC_MARKER.len() || rest[..SYNC_MARKER.len()] != SYNC_MARKER {
        return Err(HlError::Codec(format!("no sync marker at offset {at}")));
    }
    let mut buf = &rest[SYNC_MARKER.len()..];
    let before = buf.len();
    let header = FrameHeader::read(&mut buf)?;
    if header.raw_len > MAX_FRAME_RAW_LEN {
        return Err(HlError::Codec(format!("frame claims {} raw bytes", header.raw_len)));
    }
    if header.method == CodecId::Null && header.comp_len != header.raw_len {
        return Err(HlError::Codec("stored frame with comp_len != raw_len".into()));
    }
    let header_len = before - buf.len();
    let comp_len = usize::try_from(header.comp_len)
        .map_err(|_| HlError::Codec("frame comp_len overflows usize".into()))?;
    let payload_at = SYNC_MARKER.len() + header_len;
    let payload = rest
        .get(payload_at..payload_at + comp_len)
        .ok_or_else(|| HlError::Codec("frame payload truncated".into()))?;
    Ok((header, payload, at + payload_at + comp_len))
}

/// Decode one parsed frame to its uncompressed bytes, verifying the CRC.
pub fn decode_frame(header: &FrameHeader, payload: &[u8]) -> Result<Vec<u8>> {
    let raw_len = usize::try_from(header.raw_len)
        .map_err(|_| HlError::Codec("frame raw_len overflows usize".into()))?;
    let raw = codec_for(header.method).decompress_block(payload, raw_len)?;
    let crc = Crc32::checksum(&raw);
    if crc != header.crc {
        return Err(HlError::Codec(format!(
            "frame CRC mismatch: header says {:08x}, decoded bytes hash to {crc:08x}",
            header.crc
        )));
    }
    Ok(raw)
}

/// Decode every frame from offset `at` (which must be a frame boundary)
/// to the end of `bytes`. `decompress_container` is the `at == 0` case.
pub fn decode_frames_from(bytes: &[u8], at: usize) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    let mut pos = at;
    while pos < bytes.len() {
        let (header, payload, next) = parse_frame(bytes, pos)?;
        out.extend_from_slice(&decode_frame(&header, payload)?);
        pos = next;
    }
    Ok(out)
}

/// Decode a whole container back to its original bytes.
pub fn decompress_container(bytes: &[u8]) -> Result<Vec<u8>> {
    decode_frames_from(bytes, 0)
}

/// Find the first *valid* frame boundary at or after `from`: the next
/// sync-marker candidate whose frame fully parses and CRC-verifies.
/// Returns `None` when no complete frame starts in the remaining bytes —
/// a reader dropped past the last boundary owns nothing of this container
/// (the standard splittable-container contract).
pub fn find_sync(bytes: &[u8], from: usize) -> Option<usize> {
    let mut pos = from;
    while pos + SYNC_MARKER.len() <= bytes.len() {
        if bytes[pos..pos + SYNC_MARKER.len()] == SYNC_MARKER {
            if let Ok((header, payload, _)) = parse_frame(bytes, pos) {
                if decode_frame(&header, payload).is_ok() {
                    return Some(pos);
                }
            }
        }
        pos += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frame_header_round_trips() {
        for header in [
            FrameHeader { method: CodecId::Null, raw_len: 0, comp_len: 0, crc: 0 },
            FrameHeader {
                method: CodecId::Hlz,
                raw_len: 65_536,
                comp_len: 1_234,
                crc: 0xDEAD_BEEF,
            },
        ] {
            assert_eq!(FrameHeader::from_bytes(&header.to_bytes()).unwrap(), header);
        }
        // Unknown method byte is a codec error.
        assert!(FrameHeader::from_bytes(&[9, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn container_round_trips_and_shrinks_text() {
        let data = b"six years of student cluster logs ".repeat(8_000);
        let packed = compress_container(CodecId::Hlz, &data);
        assert!(packed.len() * 4 < data.len());
        assert_eq!(decompress_container(&packed).unwrap(), data);
        // Null container stores verbatim (frames add only header overhead).
        let stored = compress_container(CodecId::Null, &data);
        assert!(stored.len() > data.len() && stored.len() < data.len() + data.len() / 100);
        assert_eq!(decompress_container(&stored).unwrap(), data);
        // Empty container.
        assert!(compress_container(CodecId::Hlz, b"").is_empty());
        assert_eq!(decompress_container(b"").unwrap(), b"");
    }

    #[test]
    fn incompressible_chunks_fall_back_to_stored_frames() {
        // LCG byte soup the matcher can't compress.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..40_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                (state >> 56) as u8
            })
            .collect();
        let packed = compress_container(CodecId::Hlz, &data);
        let (header, _, _) = parse_frame(&packed, 0).unwrap();
        assert_eq!(header.method, CodecId::Null, "stored fallback must engage");
        assert!(packed.len() < data.len() + 64);
        assert_eq!(decompress_container(&packed).unwrap(), data);
    }

    #[test]
    fn corrupt_frames_fail_crc_before_reaching_the_caller() {
        let data = b"block reports stream back in ".repeat(3_000);
        let packed = compress_container(CodecId::Hlz, &data);
        // Flip one payload byte in the middle frame: either the LZ parse
        // fails or the CRC catches it — never silent corruption.
        let mut rotted = packed.clone();
        let mid = packed.len() / 2;
        rotted[mid] ^= 0xA5;
        assert!(decompress_container(&rotted).is_err());
        // Truncation is caught too.
        assert!(decompress_container(&packed[..packed.len() - 1]).is_err());
        // A header that lies about raw_len is an allocation-guarded error.
        let mut huge = packed;
        huge.truncate(SYNC_MARKER.len());
        FrameHeader { method: CodecId::Hlz, raw_len: u64::MAX, comp_len: 1, crc: 0 }
            .write(&mut huge);
        huge.push(0);
        assert!(decompress_container(&huge).is_err());
    }

    #[test]
    fn find_sync_skips_lookalike_markers_inside_payloads() {
        // A payload that *contains* the sync marker as literal bytes.
        let mut data = Vec::new();
        for _ in 0..50 {
            data.extend_from_slice(&SYNC_MARKER);
            data.extend_from_slice(b"decoy");
        }
        let frames = compress_to_frames(CodecId::Null, &data);
        let container = frames.concat();
        // From offset 1 the scan passes every embedded decoy (their
        // "frames" fail to parse/verify) and lands on the next real frame.
        assert_eq!(find_sync(&container, 0), Some(0));
        let second_frame_at = frames[0].len();
        if frames.len() > 1 {
            assert_eq!(find_sync(&container, 1), Some(second_frame_at));
        } else {
            assert_eq!(find_sync(&container, 1), None);
        }
    }

    fn chunked_suffix(data: &[u8], frame_index: usize) -> &[u8] {
        &data[(frame_index * FRAME_RAW_CHUNK).min(data.len())..]
    }

    #[test]
    fn split_boundary_decode_recovers_every_suffix() {
        let data = b"every frame is independently decodable ".repeat(12_000);
        let frames = compress_to_frames(CodecId::Hlz, &data);
        let container = frames.concat();
        let mut boundary = 0usize;
        for (k, frame) in frames.iter().enumerate() {
            assert_eq!(find_sync(&container, boundary), Some(boundary));
            assert_eq!(decode_frames_from(&container, boundary).unwrap(), chunked_suffix(&data, k));
            boundary += frame.len();
        }
        assert_eq!(find_sync(&container, container.len().saturating_sub(7)), None);
    }

    /// Local case budget, overridable by `PROPTEST_CASES` so the CI
    /// `codec-fuzz` job can soak the same properties much harder than a
    /// developer `cargo test` does.
    fn fuzz_cases(default_cases: u32) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default_cases)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: fuzz_cases(64), ..ProptestConfig::default() })]

        #[test]
        fn prop_container_round_trips(
            data in proptest::collection::vec(any::<u8>(), 0..(3 * FRAME_RAW_CHUNK / 2)),
            id in prop_oneof![Just(CodecId::Null), Just(CodecId::Hlz)],
        ) {
            let packed = compress_container(id, &data);
            prop_assert_eq!(decompress_container(&packed).unwrap(), data);
        }

        #[test]
        fn prop_container_round_trips_repetitive(
            unit in proptest::collection::vec(any::<u8>(), 1..24),
            reps in 1usize..8_000,
        ) {
            let data = unit.repeat(reps);
            let packed = compress_container(CodecId::Hlz, &data);
            prop_assert_eq!(decompress_container(&packed).unwrap(), data);
        }

        #[test]
        fn prop_find_sync_from_any_cut_decodes_a_true_suffix(
            unit in proptest::collection::vec(any::<u8>(), 1..16),
            reps in 1usize..20_000,
            cut_fraction in 0.0f64..1.0,
        ) {
            let data = unit.repeat(reps);
            let container = compress_container(CodecId::Hlz, &data);
            let cut = (container.len() as f64 * cut_fraction) as usize;
            match find_sync(&container, cut) {
                None => {
                    // No frame boundary at/after the cut: the cut sits
                    // inside the final frame (or past the end).
                    let frames = compress_to_frames(CodecId::Hlz, &data);
                    let last_boundary = container.len() - frames.last().map_or(0, |f| f.len());
                    prop_assert!(cut > last_boundary);
                }
                Some(at) => {
                    let decoded = decode_frames_from(&container, at).unwrap();
                    // The recovered bytes are exactly one of the chunk
                    // suffixes of the original data.
                    let n_frames = data.len().div_ceil(FRAME_RAW_CHUNK);
                    let matched = (0..=n_frames)
                        .any(|k| decoded.as_slice() == chunked_suffix(&data, k));
                    prop_assert!(matched, "decode from sync is not a chunk suffix");
                }
            }
        }
    }
}
