//! The item-level structural pass: struct/enum/impl/fn spans.
//!
//! The token rules (R1–R5) need nothing beyond a faithful token stream,
//! but R6 (writable-field-coverage) asks a *structural* question: "is
//! every named field of this struct referenced inside the `write` and
//! `read` bodies of its `impl Writable`?" Answering it requires knowing
//! where items begin and end. This module builds exactly that much
//! structure — no types, no expressions — on top of the existing lexer
//! and the same brace-depth discipline `scan::mark_test_regions` uses:
//!
//! * [`StructDef`]: name plus every named field with its exact span
//!   (tuple and unit structs carry no named fields and are recorded
//!   fieldless);
//! * enum names (so a rule can tell "type is an enum" from "type is
//!   defined elsewhere");
//! * [`ImplBlock`]: trait path tail + implementing type, the body's
//!   token range, and every directly-nested `fn` with *its* body range.
//!
//! Everything is spans over the shared token vector — rules slice
//! `sf.tokens[range]` and ask token-level questions inside a
//! structurally-located region.

use crate::lexer::TokKind;
use crate::scan::ScannedFile;
use std::ops::Range;

/// One named struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    pub name: String,
    pub line: u32,
    pub col: u32,
}

/// A `struct` item and its named fields (empty for tuple/unit structs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    pub name: String,
    pub line: u32,
    pub col: u32,
    pub fields: Vec<FieldDef>,
    /// True for tuple structs (`struct Wrap(u64);`) — they have positional
    /// fields a name-based coverage rule cannot track.
    pub tuple: bool,
    /// Declared under `#[cfg(test)]` / `#[test]`.
    pub in_test: bool,
}

/// A directly-nested `fn` inside an impl body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    pub name: String,
    pub line: u32,
    pub col: u32,
    /// Token-index range of the fn body, braces excluded.
    pub body: Range<usize>,
}

/// An `impl` block header plus its method spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplBlock {
    /// Last identifier of the trait path (`Writable` for
    /// `hl_common::writable::Writable`), `None` for inherent impls.
    pub trait_name: Option<String>,
    /// Head identifier of the implementing type, generics stripped;
    /// `"(tuple)"` for tuple impls, empty for `$t` macro templates.
    pub type_name: String,
    pub line: u32,
    pub col: u32,
    /// True for `impl .. for $t` inside `macro_rules!` templates.
    pub macro_template: bool,
    /// Token-index range of the impl body, braces excluded.
    pub body: Range<usize>,
    /// Directly-nested functions, in source order.
    pub fns: Vec<FnSpan>,
    /// Declared under `#[cfg(test)]` / `#[test]`.
    pub in_test: bool,
}

/// Everything the structural rules need from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub structs: Vec<StructDef>,
    /// Names of enums declared in this file.
    pub enums: Vec<String>,
    pub impls: Vec<ImplBlock>,
}

impl FileItems {
    /// The struct named `name`, if this file declares one.
    pub fn struct_named(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// True when this file declares an enum named `name`.
    pub fn has_enum(&self, name: &str) -> bool {
        self.enums.iter().any(|e| e == name)
    }
}

/// Walk the token stream and collect item spans.
pub fn collect_items(sf: &ScannedFile) -> FileItems {
    let toks = &sf.tokens;
    let mut items = FileItems::default();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match toks[i].text.as_str() {
            "struct" => {
                let next = parse_struct(sf, i, &mut items);
                i = next;
            }
            "enum" => {
                if let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    items.enums.push(name.text.clone());
                }
                i += 1;
            }
            "impl" => {
                let next = parse_impl(sf, i, &mut items);
                i = next;
            }
            // `fn` introduces a body we must not mine for `struct` tokens?
            // Local structs inside fns are legal Rust; recording them is
            // harmless (names still map to their fields), so no special
            // casing here.
            _ => i += 1,
        }
    }
    items
}

/// Skip a balanced `<...>` generics group starting at `i` (if present);
/// returns the index after it. Plain angle-depth counting is safe in item
/// headers — shift operators cannot appear there.
fn skip_generics(sf: &ScannedFile, mut i: usize) -> usize {
    let toks = &sf.tokens;
    if toks.get(i).is_none_or(|t| t.text != "<") {
        return i;
    }
    let mut depth = 0i32;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Find the matching close brace for the open brace at `open`; returns its
/// index (or the end of the stream for unbalanced input). Shared with the
/// config-key census (`confkeys`), which walks `mod keys` bodies.
pub(crate) fn matching_brace(sf: &ScannedFile, open: usize) -> usize {
    let toks = &sf.tokens;
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    toks.len()
}

/// Parse a `struct` item whose `struct` keyword sits at `kw`; records it
/// and returns the index to resume scanning from.
fn parse_struct(sf: &ScannedFile, kw: usize, items: &mut FileItems) -> usize {
    let toks = &sf.tokens;
    let Some(name_tok) = toks.get(kw + 1).filter(|t| t.kind == TokKind::Ident) else {
        return kw + 1;
    };
    let in_test = sf.in_test[kw];
    let mut def = StructDef {
        name: name_tok.text.clone(),
        line: name_tok.line,
        col: name_tok.col,
        fields: Vec::new(),
        tuple: false,
        in_test,
    };
    let mut i = skip_generics(sf, kw + 2);
    // Scan forward past a possible `where` clause to the body opener. A
    // where clause contains `<`/`>` bounds but never braces, so the first
    // `{`, `(` or `;` decides the struct's shape.
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => {
                let close = matching_brace(sf, i);
                collect_named_fields(sf, i + 1..close, &mut def.fields);
                items.structs.push(def);
                return close + 1;
            }
            "(" => {
                def.tuple = true;
                items.structs.push(def);
                return i + 1;
            }
            ";" => {
                items.structs.push(def);
                return i + 1;
            }
            _ => i += 1,
        }
    }
    items.structs.push(def);
    i
}

/// Collect `name: Type` fields at the top nesting level of a struct body.
///
/// Grammar handled: optional attributes (`#[serde(..)]`), optional
/// visibility (`pub`, `pub(crate)`, `pub(in path)`), then `ident :` —
/// everything after the `:` up to the next top-level `,` is the type and
/// is skipped by depth counting over `(`/`[`/`{`/`<`.
fn collect_named_fields(sf: &ScannedFile, range: Range<usize>, out: &mut Vec<FieldDef>) {
    let toks = &sf.tokens;
    let mut i = range.start;
    while i < range.end {
        // Skip attributes.
        while toks.get(i).is_some_and(|t| t.text == "#") {
            if toks.get(i + 1).is_some_and(|t| t.text == "[") {
                let mut depth = 0i32;
                i += 1;
                while i < range.end {
                    match toks[i].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        // Skip visibility.
        if toks.get(i).is_some_and(|t| t.text == "pub") {
            i += 1;
            if toks.get(i).is_some_and(|t| t.text == "(") {
                let mut depth = 0i32;
                while i < range.end {
                    match toks[i].text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
        }
        // The field itself.
        let (Some(name), Some(colon)) = (toks.get(i), toks.get(i + 1)) else { break };
        if name.kind == TokKind::Ident && colon.text == ":" {
            out.push(FieldDef { name: name.text.clone(), line: name.line, col: name.col });
        }
        // Skip the type: to the next `,` at depth 0 (angles included —
        // `Vec<(A, B)>` must not split on its inner comma).
        i += 2;
        let mut depth = 0i32;
        while i < range.end {
            match toks[i].text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                "," if depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
}

/// Parse an `impl` item whose `impl` keyword sits at `kw`; records it
/// (with nested fn spans) and returns the resume index.
fn parse_impl(sf: &ScannedFile, kw: usize, items: &mut FileItems) -> usize {
    let toks = &sf.tokens;
    let impl_tok = &toks[kw];
    let mut j = skip_generics(sf, kw + 1);
    // Collect the first path: either the trait (when a `for` follows at
    // angle depth 0) or the implementing type of an inherent impl.
    let mut first_last_ident: Option<String> = None;
    let mut first_head: Option<(String, bool)> = None; // (head ident, is_macro)
    let mut adepth = 0i32;
    let mut for_at = None;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "<" => adepth += 1,
            ">" => adepth -= 1,
            "for" if adepth == 0 && t.kind == TokKind::Ident => {
                for_at = Some(j);
                break;
            }
            "{" | ";" if adepth == 0 => break,
            "(" => {
                if first_head.is_none() {
                    first_head = Some(("(tuple)".to_string(), false));
                }
            }
            "$" => {
                if first_head.is_none() {
                    first_head = Some((String::new(), true));
                }
            }
            _ => {
                if t.kind == TokKind::Ident {
                    if first_head.is_none() {
                        first_head = Some((t.text.clone(), false));
                    }
                    first_last_ident = Some(t.text.clone());
                }
            }
        }
        j += 1;
    }
    // Resolve the implementing type (and trait, if any).
    let (trait_name, type_name, macro_template) = match for_at {
        Some(f) => {
            let mut k = f + 1;
            while k < toks.len()
                && (toks[k].text == "&"
                    || toks[k].kind == TokKind::Lifetime
                    || toks[k].text == "mut")
            {
                k += 1;
            }
            let (ty, mac) = match toks.get(k) {
                Some(t) if t.text == "(" => ("(tuple)".to_string(), false),
                Some(t) if t.text == "$" => (String::new(), true),
                Some(t) => (t.text.clone(), false),
                None => (String::new(), false),
            };
            j = k;
            (first_last_ident, ty, mac)
        }
        None => {
            let (ty, mac) = first_head.unwrap_or((String::new(), false));
            (None, ty, mac)
        }
    };
    // Find the body opener.
    while j < toks.len() && toks[j].text != "{" {
        if toks[j].text == ";" {
            return j + 1; // `impl Trait for T;` — no body to mine
        }
        j += 1;
    }
    if j >= toks.len() {
        return j;
    }
    let open = j;
    let close = matching_brace(sf, open);
    let fns = collect_fns(sf, open + 1..close);
    items.impls.push(ImplBlock {
        trait_name,
        type_name,
        line: impl_tok.line,
        col: impl_tok.col,
        macro_template,
        body: open + 1..close,
        fns,
        in_test: sf.in_test[kw],
    });
    close + 1
}

/// Find `fn name { .. }` items directly nested in `range` (an impl body),
/// skipping over nested braces so closures and block expressions inside
/// one fn body never read as sibling fns.
fn collect_fns(sf: &ScannedFile, range: Range<usize>) -> Vec<FnSpan> {
    let toks = &sf.tokens;
    let mut fns = Vec::new();
    let mut i = range.start;
    while i < range.end {
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text == "fn" {
            let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            // The signature holds no braces (types and where clauses are
            // brace-free), so the next `{` opens the body; a `;` first
            // means a trait-method declaration without a body.
            let mut j = i + 2;
            while j < range.end && toks[j].text != "{" && toks[j].text != ";" {
                j += 1;
            }
            if j >= range.end || toks[j].text == ";" {
                i = j + 1;
                continue;
            }
            let close = matching_brace(sf, j);
            fns.push(FnSpan {
                name: name_tok.text.clone(),
                line: name_tok.line,
                col: name_tok.col,
                body: j + 1..close,
            });
            i = close + 1;
        } else if t.text == "{" {
            // Const/static initializers etc.: skip their blocks whole.
            i = matching_brace(sf, i) + 1;
        } else {
            i += 1;
        }
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> FileItems {
        collect_items(&ScannedFile::new(src))
    }

    #[test]
    fn named_struct_fields_with_spans() {
        let it = items(
            "pub struct Lease {\n    /// doc\n    pub path: String,\n    holder: String,\n    pub(crate) renewed_at: SimTime,\n    #[allow(dead_code)]\n    state: LeaseState,\n}",
        );
        let s = it.struct_named("Lease").unwrap();
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["path", "holder", "renewed_at", "state"]);
        assert_eq!((s.fields[0].line, s.fields[0].col), (3, 9));
        assert_eq!((s.fields[3].line, s.fields[3].col), (7, 5));
        assert!(!s.tuple);
    }

    #[test]
    fn generic_types_do_not_split_fields() {
        let it = items("struct S { a: Vec<(u32, String)>, b: BTreeMap<String, Vec<u8>>, c: u8 }");
        let s = it.struct_named("S").unwrap();
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn tuple_and_unit_structs_are_fieldless() {
        let it = items("struct Wrap(pub u64);\nstruct Marker;\nstruct G<T>(T);");
        assert!(it.struct_named("Wrap").unwrap().tuple);
        assert!(it.struct_named("Wrap").unwrap().fields.is_empty());
        assert!(!it.struct_named("Marker").unwrap().tuple);
        assert!(it.struct_named("G").unwrap().tuple);
    }

    #[test]
    fn enums_are_recorded_by_name() {
        let it = items("enum Fault { A { x: u8 }, B }\nstruct NotEnum { y: u8 }");
        assert!(it.has_enum("Fault"));
        assert!(!it.has_enum("NotEnum"));
        // Variant fields never leak into struct defs.
        assert!(it.struct_named("Fault").is_none());
    }

    #[test]
    fn impl_blocks_with_trait_and_fns() {
        let src = "impl Writable for Lease {\n    fn write(&self, buf: &mut Vec<u8>) { self.path.write(buf); }\n    fn read(buf: &mut &[u8]) -> Result<Self> { Ok(Lease { path: String::read(buf)? }) }\n}";
        let it = items(src);
        assert_eq!(it.impls.len(), 1);
        let im = &it.impls[0];
        assert_eq!(im.trait_name.as_deref(), Some("Writable"));
        assert_eq!(im.type_name, "Lease");
        let fn_names: Vec<&str> = im.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fn_names, vec!["write", "read"]);
    }

    #[test]
    fn inherent_impls_and_path_traits() {
        let it = items(
            "impl Lease { fn touch(&mut self) {} }\nimpl hl_common::writable::Writable for EditOp { fn write(&self, b: &mut Vec<u8>) {} fn read(b: &mut &[u8]) -> Result<Self> { todo!() } }",
        );
        assert_eq!(it.impls.len(), 2);
        assert_eq!(it.impls[0].trait_name, None);
        assert_eq!(it.impls[0].type_name, "Lease");
        assert_eq!(it.impls[1].trait_name.as_deref(), Some("Writable"));
        assert_eq!(it.impls[1].type_name, "EditOp");
    }

    #[test]
    fn closures_inside_fn_bodies_do_not_split_spans() {
        let src = "impl T for S {\n    fn a(&self) { let f = |x: u8| { x + 1 }; f(1); }\n    fn b(&self) {}\n}";
        let it = items(src);
        let names: Vec<&str> = it.impls[0].fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn generic_impl_headers_resolve_type_after_for() {
        let it = items("impl<A: Writable, B: Writable> Writable for Pair<A, B> { fn write(&self, b: &mut Vec<u8>) {} }");
        assert_eq!(it.impls[0].trait_name.as_deref(), Some("Writable"));
        assert_eq!(it.impls[0].type_name, "Pair");
    }

    #[test]
    fn macro_template_impls_are_marked() {
        let it = items("macro_rules! m { ($t:ty) => { impl Writable for $t { fn write(&self, b: &mut Vec<u8>) {} } } }");
        assert_eq!(it.impls.len(), 1);
        assert!(it.impls[0].macro_template);
    }

    #[test]
    fn test_region_items_are_flagged() {
        let it = items(
            "struct Prod { x: u8 }\n#[cfg(test)]\nmod tests {\n    struct TestOnly { y: u8 }\n    impl Writable for TestOnly { fn write(&self, b: &mut Vec<u8>) {} }\n}",
        );
        assert!(!it.struct_named("Prod").unwrap().in_test);
        assert!(it.struct_named("TestOnly").unwrap().in_test);
        assert!(it.impls[0].in_test);
    }

    #[test]
    fn where_clauses_do_not_derail_struct_bodies() {
        let it = items("struct S<T> where T: Clone { inner: T, n: usize }");
        let s = it.struct_named("S").unwrap();
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["inner", "n"]);
    }
}
