//! A minimal reader/writer for the TOML subset the lint's data files use:
//! top-level `key = value` pairs and `[[table]]` arrays whose entries hold
//! string and integer values. Both `lint-baseline.toml` and
//! `writable-manifest.toml` are machine-written in exactly this shape, so
//! a full TOML implementation (an external dependency) buys nothing.

use std::collections::BTreeMap;

/// One `[[name]]` entry: key → string value (integers kept as strings).
pub type Entry = BTreeMap<String, String>;

/// Parsed document: top-level keys plus ordered `[[array]]` entries.
#[derive(Debug, Default, Clone)]
pub struct Doc {
    pub top: Entry,
    /// (array name, entry) in file order.
    pub entries: Vec<(String, Entry)>,
}

/// Parse the subset. Unknown syntax is an error naming the line — these
/// files are generated, so leniency would only hide corruption.
pub fn parse(text: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    let mut current: Option<usize> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            doc.entries.push((name.trim().to_string(), Entry::new()));
            current = Some(doc.entries.len() - 1);
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {}: expected `key = value`, got `{line}`", idx + 1));
        };
        let key = key.trim().to_string();
        let value = parse_value(value.trim())
            .ok_or_else(|| format!("line {}: unsupported value `{}`", idx + 1, value.trim()))?;
        match current {
            Some(i) => {
                doc.entries[i].1.insert(key, value);
            }
            None => {
                doc.top.insert(key, value);
            }
        }
    }
    Ok(doc)
}

fn parse_value(v: &str) -> Option<String> {
    if let Some(s) = v.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        // Generated strings never contain escapes beyond `\\` and `\"`.
        return Some(s.replace("\\\"", "\"").replace("\\\\", "\\"));
    }
    if !v.is_empty() && v.chars().all(|c| c.is_ascii_digit()) {
        return Some(v.to_string());
    }
    None
}

/// Quote a string value.
pub fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_top_keys_and_entries() {
        let doc = parse(
            "# header\nversion = 1\n\n[[entry]]\nrule = \"R1\"\ncount = 5\n\n[[entry]]\nrule = \"R2\"\ncount = 0\n",
        )
        .unwrap();
        assert_eq!(doc.top.get("version").map(String::as_str), Some("1"));
        assert_eq!(doc.entries.len(), 2);
        assert_eq!(doc.entries[0].1.get("rule").map(String::as_str), Some("R1"));
        assert_eq!(doc.entries[1].1.get("count").map(String::as_str), Some("0"));
    }

    #[test]
    fn rejects_garbage_with_line_number() {
        let err = parse("version = 1\nwhat is this\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn quote_round_trips() {
        let q = quote("a \"b\" \\ c");
        assert_eq!(parse_value(&q).unwrap(), "a \"b\" \\ c");
    }
}
