//! R4: Writable completeness against the round-trip test manifest.
//!
//! `crates/lint/writable-manifest.toml` registers every type that
//! implements `Writable`, naming the round-trip test that covers it.
//! The rule fails in both directions:
//!
//! * an `impl Writable for T` whose `T` has no manifest entry — the type
//!   ships without round-trip coverage;
//! * a manifest entry whose named test file no longer exists or no longer
//!   contains the named test function — coverage rotted out from under
//!   the registration.

use crate::rules::{RuleId, Violation, WritableImpl};
use crate::toml_subset;
use std::collections::BTreeMap;
use std::path::Path;

/// Parsed manifest: type name → `path/to/file.rs::test_fn_name`.
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    pub types: BTreeMap<String, String>,
}

impl Manifest {
    /// Parse `writable-manifest.toml`.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = toml_subset::parse(text)?;
        let mut types = BTreeMap::new();
        for (name, entry) in &doc.entries {
            if name != "type" {
                return Err(format!("unexpected table [[{name}]] in manifest"));
            }
            let ty = entry
                .get("name")
                .ok_or_else(|| "manifest entry missing `name`".to_string())?
                .clone();
            let test = entry
                .get("test")
                .ok_or_else(|| format!("manifest entry for `{ty}` missing `test`"))?
                .clone();
            if types.insert(ty.clone(), test).is_some() {
                return Err(format!("duplicate manifest entry for `{ty}`"));
            }
        }
        Ok(Manifest { types })
    }

    /// Evaluate R4 over all collected impls, with filesystem access to
    /// verify that registered tests still exist. `root` is the workspace
    /// root; `impls` is `(file, WritableImpl)` for every non-test impl.
    pub fn check(&self, root: &Path, impls: &[(String, WritableImpl)]) -> Vec<Violation> {
        let mut out = Vec::new();
        for (file, im) in impls {
            if im.macro_template {
                continue; // `$t` templates: covered via their expansions
            }
            if !self.types.contains_key(&im.type_name) {
                out.push(Violation {
                    rule: RuleId::R4,
                    file: file.clone(),
                    line: im.line,
                    col: im.col,
                    message: format!(
                        "`impl Writable for {}` is not registered in \
                         crates/lint/writable-manifest.toml — add a \
                         round-trip test and a [[type]] entry naming it",
                        im.type_name
                    ),
                    waived: false,
                });
            }
        }
        // Integrity of the registrations themselves.
        for (ty, test_ref) in &self.types {
            let Some((path, test_fn)) = test_ref.rsplit_once("::") else {
                out.push(manifest_violation(format!(
                    "manifest entry `{ty}`: test ref `{test_ref}` is not \
                     `path/to/file.rs::test_fn`"
                )));
                continue;
            };
            match std::fs::read_to_string(root.join(path)) {
                Ok(src) => {
                    let defines = src
                        .match_indices(test_fn)
                        .any(|(i, _)| src[..i].trim_end().ends_with("fn"));
                    if !defines {
                        out.push(manifest_violation(format!(
                            "manifest entry `{ty}`: {path} no longer defines \
                             a test fn `{test_fn}`"
                        )));
                    }
                }
                Err(_) => out.push(manifest_violation(format!(
                    "manifest entry `{ty}`: test file {path} does not exist"
                ))),
            }
        }
        out
    }
}

fn manifest_violation(message: String) -> Violation {
    Violation {
        rule: RuleId::R4,
        file: "crates/lint/writable-manifest.toml".to_string(),
        line: 1,
        col: 1,
        message,
        waived: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_manifest() {
        let m = Manifest::parse(
            "[[type]]\nname = \"Cell\"\ntest = \"crates/hbase/src/cell.rs::writable_round_trip\"\n",
        )
        .unwrap();
        assert_eq!(
            m.types.get("Cell").map(String::as_str),
            Some("crates/hbase/src/cell.rs::writable_round_trip")
        );
        assert!(Manifest::parse("[[type]]\nname = \"X\"\n").is_err());
    }

    #[test]
    fn unregistered_impl_is_flagged() {
        let m = Manifest::default();
        let impls = vec![(
            "crates/x/src/lib.rs".to_string(),
            WritableImpl { type_name: "Mystery".into(), line: 4, col: 1, macro_template: false },
        )];
        let v = m.check(Path::new("/nonexistent"), &impls);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, RuleId::R4);
        assert_eq!(v[0].line, 4);
        assert!(v[0].message.contains("Mystery"));
    }

    #[test]
    fn macro_templates_are_exempt() {
        let m = Manifest::default();
        let impls = vec![(
            "crates/x/src/lib.rs".to_string(),
            WritableImpl { type_name: String::new(), line: 9, col: 1, macro_template: true },
        )];
        assert!(m.check(Path::new("/nonexistent"), &impls).is_empty());
    }

    #[test]
    fn rotten_registration_is_flagged() {
        let mut m = Manifest::default();
        m.types.insert("Ghost".into(), "no/such/file.rs::round_trip".into());
        let v = m.check(Path::new("/nonexistent"), &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("does not exist"));
    }
}
