//! `hadooplab-lint` — the workspace invariant checker.
//!
//! The paper's operational stories (daemon crashes, safe-mode restarts,
//! ghost daemons) only reproduce credibly if the NameNode/DataNode/
//! JobTracker analogs *degrade* instead of panicking, and if the cluster
//! simulator is deterministic enough to replay them. This crate enforces
//! those properties as machine-checked invariants with a ratcheted
//! baseline: pre-existing violations are grandfathered in
//! `lint-baseline.toml`, new ones fail CI, and the baseline may only
//! shrink.
//!
//! Run it with `cargo run -p lint --release -- check`. See
//! `DESIGN.md` § "Invariants & lint" for the rule catalog and waiver
//! policy.

pub mod baseline;
pub mod confkeys;
pub mod items;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod scan;
pub mod toml_subset;
pub mod workspace;

use baseline::Baseline;
use manifest::Manifest;
use rules::{RuleId, Violation};
use scan::ScannedFile;
use std::path::Path;

/// Lint one source buffer with every rule enabled, ignoring path scoping.
/// This is the entry point the fixture tests drive; R4 runs against the
/// provided `manifest` with no filesystem integrity pass.
pub fn lint_source_all_rules(file: &str, src: &str, manifest: &Manifest) -> Vec<Violation> {
    let sf = ScannedFile::new(src);
    let mut violations = rules::lint_tokens(file, &sf, &RuleId::all());
    let impls: Vec<_> =
        rules::collect_writable_impls(&sf).into_iter().map(|im| (file.to_string(), im)).collect();
    for (f, im) in &impls {
        if !im.macro_template && !manifest.types.contains_key(&im.type_name) {
            let mut v = Violation {
                rule: RuleId::R4,
                file: f.clone(),
                line: im.line,
                col: im.col,
                message: format!(
                    "`impl Writable for {}` is not registered in the round-trip manifest",
                    im.type_name
                ),
                waived: false,
            };
            v.waived = sf.is_waived(RuleId::R4, im.line);
            violations.push(v);
        }
    }
    violations.sort_by_key(|v| (v.line, v.col, v.rule));
    violations
}

/// Result of linting the whole workspace.
pub struct WorkspaceLint {
    /// Every violation, waived ones included (sorted by file/line/col).
    pub violations: Vec<Violation>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl WorkspaceLint {
    /// The violations that count against the baseline.
    pub fn active(&self) -> Vec<Violation> {
        self.violations.iter().filter(|v| !v.waived).cloned().collect()
    }

    /// Active-violation count for one rule.
    pub fn rule_count(&self, rule: RuleId) -> usize {
        self.violations.iter().filter(|v| !v.waived && v.rule == rule).count()
    }

    /// Build the baseline this state would ratchet to.
    pub fn to_baseline(&self) -> Baseline {
        Baseline::from_violations(&self.active())
    }
}

/// Lint every production source file under `root` with path-based rule
/// scoping, plus the workspace-level R4 manifest check.
pub fn lint_workspace(root: &Path) -> Result<WorkspaceLint, String> {
    let files = workspace::source_files(root)
        .map_err(|e| format!("scanning workspace at {}: {e}", root.display()))?;
    let manifest_path = root.join("crates/lint/writable-manifest.toml");
    let manifest = match std::fs::read_to_string(&manifest_path) {
        Ok(text) => {
            Manifest::parse(&text).map_err(|e| format!("{}: {e}", manifest_path.display()))?
        }
        Err(_) => Manifest::default(), // absent manifest: every impl flags
    };

    // Lex everything up front: the per-file rules, the R4 manifest pass,
    // and the R7 key census all read from the same scanned set.
    let scanned: Vec<(String, ScannedFile)> =
        files.iter().map(|(rel, src)| (rel.clone(), ScannedFile::new(src))).collect();

    let mut violations = Vec::new();
    let mut impls: Vec<(String, rules::WritableImpl)> = Vec::new();
    for (rel, sf) in &scanned {
        let scoped = rules::rules_for_path(rel);
        violations.extend(rules::lint_tokens(rel, sf, &scoped));
        for im in rules::collect_writable_impls(sf) {
            // Waivers apply to R4 like any other rule.
            if !im.macro_template
                && !manifest.types.contains_key(&im.type_name)
                && sf.is_waived(RuleId::R4, im.line)
            {
                violations.push(Violation {
                    rule: RuleId::R4,
                    file: rel.clone(),
                    line: im.line,
                    col: im.col,
                    message: format!("`impl Writable for {}` unregistered (waived)", im.type_name),
                    waived: true,
                });
                continue;
            }
            impls.push((rel.clone(), im));
        }
    }
    violations.extend(manifest.check(root, &impls));
    violations.extend(confkeys::check_keys(&scanned));
    violations
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(WorkspaceLint { violations, files_scanned: files.len() })
}
