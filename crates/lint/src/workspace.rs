//! Workspace discovery: which files get linted.
//!
//! Production source trees only — `crates/*/src/**/*.rs` plus the root
//! `src/`. Integration tests, benches, and examples are test-adjacent
//! code where `unwrap()` is idiomatic; the rules' scope is the code that
//! runs inside the simulated cluster. The lint's own fixture corpus is
//! excluded by construction (it lives under `crates/lint/tests/`).

use std::fs;
use std::path::{Path, PathBuf};

/// Every lintable `(workspace-relative path, source)` pair, sorted by
/// path for deterministic reports.
pub fn source_files(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                walk_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, &mut files)?;
    }
    let mut out = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        out.push((rel, src));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)?.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
