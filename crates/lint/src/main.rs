//! CLI for `hadooplab-lint`.
//!
//! ```text
//! cargo run -p lint --release -- check              # enforce the ratchet
//! cargo run -p lint --release -- check --format=github  # CI annotations
//! cargo run -p lint --release -- check --format=json    # machine-readable
//! cargo run -p lint --release -- baseline           # re-tighten lint-baseline.toml
//! cargo run -p lint --release -- stats              # per-rule burndown table
//! cargo run -p lint --release -- dump FILE          # all-rules report for one file
//! ```
//!
//! Exit codes: 0 clean / ratchet respected, 1 regression, 2 usage or I/O
//! error.

use lint::baseline::Baseline;
use lint::manifest::Manifest;
use lint::rules::{RuleId, Violation};
use std::path::PathBuf;
use std::process::ExitCode;

const BASELINE_FILE: &str = "lint-baseline.toml";

/// Output mode for `check`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Human-readable report (the default).
    Text,
    /// GitHub Actions workflow commands: every violation in a regressed
    /// bucket becomes an `::error file=..,line=..,col=..` annotation on
    /// the diff, followed by the plain-text summary (Actions ignores
    /// non-command lines).
    Github,
    /// One JSON object on stdout: counts, per-rule totals, regressions,
    /// and every violation with its span.
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root: Option<PathBuf> = None;
    let mut force_grow = false;
    let mut dump_file = None;
    let mut format = Format::Text;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                root = args.get(i).map(PathBuf::from);
            }
            "--force-grow" => force_grow = true,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str).and_then(parse_format) {
                    Some(f) => format = f,
                    None => return usage(),
                }
            }
            s if s.starts_with("--format=") => match parse_format(&s["--format=".len()..]) {
                Some(f) => format = f,
                None => return usage(),
            },
            "check" | "baseline" | "stats" if cmd.is_none() => cmd = Some(args[i].clone()),
            "dump" if cmd.is_none() => {
                cmd = Some("dump".into());
                i += 1;
                dump_file = args.get(i).cloned();
            }
            other => {
                eprintln!("hadooplab-lint: unknown argument `{other}`");
                return usage();
            }
        }
        i += 1;
    }

    // Default root: the workspace containing this crate (so the binary
    // works from any cwd), overridable with --root.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    match cmd.as_deref() {
        Some("check") => cmd_check(&root, format),
        Some("baseline") => cmd_baseline(&root, force_grow),
        Some("stats") => cmd_stats(&root),
        Some("dump") => match dump_file {
            Some(f) => cmd_dump(&f),
            None => usage(),
        },
        _ => usage(),
    }
}

fn parse_format(s: &str) -> Option<Format> {
    match s {
        "text" => Some(Format::Text),
        "github" => Some(Format::Github),
        "json" => Some(Format::Json),
        _ => None,
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: hadooplab-lint [--root DIR] \
         <check [--format=text|github|json] | baseline [--force-grow] | stats | dump FILE>"
    );
    ExitCode::from(2)
}

fn load_baseline(root: &std::path::Path) -> Result<Baseline, String> {
    let path = root.join(BASELINE_FILE);
    match std::fs::read_to_string(&path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(_) => Ok(Baseline::default()),
    }
}

fn cmd_check(root: &std::path::Path, format: Format) -> ExitCode {
    let ws = match lint::lint_workspace(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("hadooplab-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load_baseline(root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("hadooplab-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let active = ws.active();
    let report = baseline.compare(&active);

    if format == Format::Json {
        print_json(&ws, &baseline, &active, &report);
        return if report.regressions.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if format == Format::Github {
        // Annotations first: Actions picks `::error` lines out of the log
        // and pins them to the diff at file/line/col.
        for (rule, file, _, _) in &report.regressions {
            for v in active.iter().filter(|v| v.rule == *rule && &v.file == file) {
                println!(
                    "::error file={},line={},col={},title=hadooplab-lint {} [{}]::{}",
                    gh_property(&v.file),
                    v.line,
                    v.col,
                    v.rule,
                    v.rule.name(),
                    gh_message(&v.message)
                );
            }
        }
    }

    let waived = ws.violations.len() - active.len();
    println!(
        "hadooplab-lint: scanned {} files — {} active violations ({} grandfathered allowed), {} waived",
        ws.files_scanned,
        active.len(),
        baseline.total(),
        waived
    );
    for rule in RuleId::all() {
        println!(
            "  {rule} [{}]: {} active / {} allowed",
            rule.name(),
            ws.rule_count(rule),
            baseline.rule_total(rule)
        );
    }

    if !report.improvements.is_empty() {
        println!("\nratchet can be tightened ({} buckets improved):", report.improvements.len());
        for (rule, file, base, cur) in &report.improvements {
            println!("  {rule} {file}: {base} -> {cur}");
        }
        println!("  run `cargo run -p lint -- baseline` and commit the shrunken file");
    }

    if report.regressions.is_empty() {
        println!("\nOK: no new violations");
        return ExitCode::SUCCESS;
    }

    println!("\nFAIL: new violations beyond the baseline:");
    for (rule, file, base, cur) in &report.regressions {
        println!("  {rule} {file}: {cur} found, {base} allowed — new sites:");
        // Show each active violation in the regressed bucket; the newest
        // ones are indistinguishable from grandfathered ones at token
        // level, so print all with a count header.
        for v in active.iter().filter(|v| v.rule == *rule && &v.file == file) {
            println!("    {v}");
        }
    }
    println!(
        "\nfix the new sites, add `// lint:allow(Rn): reason` waivers where the\n\
         invariant genuinely cannot hold, or (for deliberate policy changes)\n\
         regenerate with `cargo run -p lint -- baseline --force-grow`"
    );
    ExitCode::FAILURE
}

/// Escape a workflow-command property value (`file=` etc.).
fn gh_property(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
        .replace(':', "%3A")
        .replace(',', "%2C")
}

/// Escape a workflow-command message body.
fn gh_message(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn print_json(
    ws: &lint::WorkspaceLint,
    baseline: &Baseline,
    active: &[Violation],
    report: &lint::baseline::RatchetReport,
) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", ws.files_scanned));
    out.push_str(&format!("  \"active\": {},\n", active.len()));
    out.push_str(&format!("  \"waived\": {},\n", ws.violations.len() - active.len()));
    out.push_str(&format!("  \"grandfathered\": {},\n", baseline.total()));
    out.push_str("  \"rules\": [\n");
    let rules: Vec<String> = RuleId::all()
        .iter()
        .map(|&r| {
            format!(
                "    {{\"rule\": {}, \"name\": {}, \"active\": {}, \"allowed\": {}}}",
                json_str(&r.to_string()),
                json_str(r.name()),
                ws.rule_count(r),
                baseline.rule_total(r)
            )
        })
        .collect();
    out.push_str(&rules.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str("  \"regressions\": [\n");
    let regs: Vec<String> = report
        .regressions
        .iter()
        .map(|(rule, file, allowed, found)| {
            format!(
                "    {{\"rule\": {}, \"file\": {}, \"allowed\": {allowed}, \"found\": {found}}}",
                json_str(&rule.to_string()),
                json_str(file)
            )
        })
        .collect();
    out.push_str(&regs.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str("  \"violations\": [\n");
    let vs: Vec<String> = ws
        .violations
        .iter()
        .map(|v| {
            format!(
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \
                 \"waived\": {}, \"message\": {}}}",
                json_str(&v.rule.to_string()),
                json_str(&v.file),
                v.line,
                v.col,
                v.waived,
                json_str(&v.message)
            )
        })
        .collect();
    out.push_str(&vs.join(",\n"));
    out.push_str("\n  ]\n}");
    println!("{out}");
}

fn cmd_baseline(root: &std::path::Path, force_grow: bool) -> ExitCode {
    let ws = match lint::lint_workspace(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("hadooplab-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let old = match load_baseline(root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("hadooplab-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let new = ws.to_baseline();
    let grown = old.growth_against(&new);
    if !grown.is_empty() && !force_grow {
        eprintln!("hadooplab-lint: refusing to grow the ratchet (fix these or pass --force-grow):");
        for (rule, file, was, now) in grown {
            eprintln!("  {rule} {file}: {was} -> {now}");
        }
        return ExitCode::FAILURE;
    }
    let path = root.join(BASELINE_FILE);
    if let Err(e) = std::fs::write(&path, new.serialize()) {
        eprintln!("hadooplab-lint: writing {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!(
        "wrote {} ({} grandfathered violations, was {})",
        path.display(),
        new.total(),
        old.total()
    );
    ExitCode::SUCCESS
}

/// The burndown table: per-rule active vs grandfathered counts plus the
/// bucket list, as markdown (pastes straight into a CI job summary).
fn cmd_stats(root: &std::path::Path) -> ExitCode {
    let ws = match lint::lint_workspace(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("hadooplab-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load_baseline(root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("hadooplab-lint: {e}");
            return ExitCode::from(2);
        }
    };
    println!("### hadooplab-lint burndown\n");
    println!("| rule | invariant | active | grandfathered | status |");
    println!("|------|-----------|-------:|--------------:|--------|");
    for rule in RuleId::all() {
        let active = ws.rule_count(rule) as u64;
        let allowed = baseline.rule_total(rule);
        let status = if active == 0 && allowed == 0 {
            "clean".to_string()
        } else if active < allowed {
            format!("{allowed} to burn down (ratchet can tighten)")
        } else {
            format!("{allowed} to burn down")
        };
        println!("| {rule} | {} | {active} | {allowed} | {status} |", rule.name());
    }
    let buckets = baseline.entries();
    println!(
        "\n{} grandfathered violation(s) across {} bucket(s); {} file(s) scanned.",
        baseline.total(),
        buckets.len(),
        ws.files_scanned
    );
    for (rule, file, count) in buckets {
        println!("- `{file}`: {count} × {rule}");
    }
    ExitCode::SUCCESS
}

fn cmd_dump(file: &str) -> ExitCode {
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hadooplab-lint: reading {file}: {e}");
            return ExitCode::from(2);
        }
    };
    // All rules, no path scoping, empty manifest (every impl reports).
    let manifest = Manifest::default();
    for v in lint::lint_source_all_rules(file, &src, &manifest) {
        println!("{v}");
    }
    ExitCode::SUCCESS
}
