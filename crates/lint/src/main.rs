//! CLI for `hadooplab-lint`.
//!
//! ```text
//! cargo run -p lint --release -- check        # enforce the ratchet
//! cargo run -p lint --release -- baseline     # re-tighten lint-baseline.toml
//! cargo run -p lint --release -- dump FILE    # all-rules report for one file
//! ```
//!
//! Exit codes: 0 clean / ratchet respected, 1 regression, 2 usage or I/O
//! error.

use lint::baseline::Baseline;
use lint::manifest::Manifest;
use lint::rules::RuleId;
use std::path::PathBuf;
use std::process::ExitCode;

const BASELINE_FILE: &str = "lint-baseline.toml";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root: Option<PathBuf> = None;
    let mut force_grow = false;
    let mut dump_file = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                root = args.get(i).map(PathBuf::from);
            }
            "--force-grow" => force_grow = true,
            "check" | "baseline" if cmd.is_none() => cmd = Some(args[i].clone()),
            "dump" if cmd.is_none() => {
                cmd = Some("dump".into());
                i += 1;
                dump_file = args.get(i).cloned();
            }
            other => {
                eprintln!("hadooplab-lint: unknown argument `{other}`");
                return usage();
            }
        }
        i += 1;
    }

    // Default root: the workspace containing this crate (so the binary
    // works from any cwd), overridable with --root.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    match cmd.as_deref() {
        Some("check") => cmd_check(&root),
        Some("baseline") => cmd_baseline(&root, force_grow),
        Some("dump") => match dump_file {
            Some(f) => cmd_dump(&f),
            None => usage(),
        },
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: hadooplab-lint [--root DIR] <check | baseline [--force-grow] | dump FILE>");
    ExitCode::from(2)
}

fn load_baseline(root: &std::path::Path) -> Result<Baseline, String> {
    let path = root.join(BASELINE_FILE);
    match std::fs::read_to_string(&path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(_) => Ok(Baseline::default()),
    }
}

fn cmd_check(root: &std::path::Path) -> ExitCode {
    let ws = match lint::lint_workspace(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("hadooplab-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match load_baseline(root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("hadooplab-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let active = ws.active();
    let report = baseline.compare(&active);

    let waived = ws.violations.len() - active.len();
    println!(
        "hadooplab-lint: scanned {} files — {} active violations ({} grandfathered allowed), {} waived",
        ws.files_scanned,
        active.len(),
        baseline.total(),
        waived
    );
    for rule in RuleId::all() {
        println!(
            "  {rule} [{}]: {} active / {} allowed",
            rule.name(),
            ws.rule_count(rule),
            baseline.rule_total(rule)
        );
    }

    if !report.improvements.is_empty() {
        println!("\nratchet can be tightened ({} buckets improved):", report.improvements.len());
        for (rule, file, base, cur) in &report.improvements {
            println!("  {rule} {file}: {base} -> {cur}");
        }
        println!("  run `cargo run -p lint -- baseline` and commit the shrunken file");
    }

    if report.regressions.is_empty() {
        println!("\nOK: no new violations");
        return ExitCode::SUCCESS;
    }

    println!("\nFAIL: new violations beyond the baseline:");
    for (rule, file, base, cur) in &report.regressions {
        println!("  {rule} {file}: {cur} found, {base} allowed — new sites:");
        // Show each active violation in the regressed bucket; the newest
        // ones are indistinguishable from grandfathered ones at token
        // level, so print all with a count header.
        for v in active.iter().filter(|v| v.rule == *rule && &v.file == file) {
            println!("    {v}");
        }
    }
    println!(
        "\nfix the new sites, add `// lint:allow(Rn): reason` waivers where the\n\
         invariant genuinely cannot hold, or (for deliberate policy changes)\n\
         regenerate with `cargo run -p lint -- baseline --force-grow`"
    );
    ExitCode::FAILURE
}

fn cmd_baseline(root: &std::path::Path, force_grow: bool) -> ExitCode {
    let ws = match lint::lint_workspace(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("hadooplab-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let old = match load_baseline(root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("hadooplab-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let new = ws.to_baseline();
    let grown = old.growth_against(&new);
    if !grown.is_empty() && !force_grow {
        eprintln!("hadooplab-lint: refusing to grow the ratchet (fix these or pass --force-grow):");
        for (rule, file, was, now) in grown {
            eprintln!("  {rule} {file}: {was} -> {now}");
        }
        return ExitCode::FAILURE;
    }
    let path = root.join(BASELINE_FILE);
    if let Err(e) = std::fs::write(&path, new.serialize()) {
        eprintln!("hadooplab-lint: writing {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!(
        "wrote {} ({} grandfathered violations, was {})",
        path.display(),
        new.total(),
        old.total()
    );
    ExitCode::SUCCESS
}

fn cmd_dump(file: &str) -> ExitCode {
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hadooplab-lint: reading {file}: {e}");
            return ExitCode::from(2);
        }
    };
    // All rules, no path scoping, empty manifest (every impl reports).
    let manifest = Manifest::default();
    for v in lint::lint_source_all_rules(file, &src, &manifest) {
        println!("{v}");
    }
    ExitCode::SUCCESS
}
