//! A self-contained Rust lexer with full line:column spans.
//!
//! The rules in this crate are *token-level* invariants (`.unwrap()`
//! call-sites, `panic!` macro invocations, `as u32` cast pairs, `impl
//! Writable for T` headers), so a faithful tokenizer is all the parsing
//! they need. What matters — and what naive `grep` gets wrong — is that
//! occurrences inside string literals, comments, and doc-text must *not*
//! count, while every real token must carry an exact span for reporting
//! and for waiver matching. This lexer handles the complete Rust literal
//! grammar: nested block comments, raw strings with arbitrary `#` fences,
//! byte/C-string prefixes, char-literal vs. lifetime disambiguation.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `impl`, `for`, `u32`, ...).
    Ident,
    /// A lifetime (`'a`, `'_`) — distinct so `'a` never reads as a char.
    Lifetime,
    /// Single punctuation character (`.`, `!`, `(`, `<`, ...).
    Punct,
    /// String / char / byte-string literal (text excludes quotes).
    StrLit,
    /// Numeric literal, suffix included (`0`, `0x7F`, `1_000u64`, `2.5`).
    NumLit,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// A comment, kept out of the token stream but retained for waivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment body without the `//` / `/*` markers.
    pub text: String,
    /// Line the comment starts on.
    pub line: u32,
    /// True when a non-comment token precedes it on the same line
    /// (a trailing comment waives its own line; a standalone one, the next).
    pub trailing: bool,
}

/// Lex `src` into tokens plus a side-channel of comments.
///
/// The lexer never fails: bytes it cannot classify become single-char
/// `Punct` tokens, so rules degrade gracefully on exotic input instead of
/// masking a whole file.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: std::marker::PhantomData<&'a str>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
    /// Line number of the most recently pushed token (for `trailing`).
    last_token_line: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            src: std::marker::PhantomData,
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            comments: Vec::new(),
            last_token_line: 0,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.last_token_line = line;
        self.tokens.push(Token { kind, text, line, col });
    }

    fn run(mut self) -> (Vec<Token>, Vec<Comment>) {
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(line),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line, col),
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c if c == '_' || c.is_alphabetic() => self.ident(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
        (self.tokens, self.comments)
    }

    fn line_comment(&mut self, line: u32) {
        let trailing = self.last_token_line == line;
        self.bump();
        self.bump(); // consume `//`
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment { text, line, trailing });
    }

    fn block_comment(&mut self, line: u32) {
        let trailing = self.last_token_line == line;
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1u32;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    text.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break, // unterminated — tolerate
            }
        }
        self.comments.push(Comment { text, line, trailing });
    }

    /// A plain (escaped) string literal; the opening `"` is at the cursor.
    fn string(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek() {
            match c {
                '\\' => {
                    self.bump();
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                '"' => {
                    self.bump();
                    break;
                }
                _ => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(TokKind::StrLit, text, line, col);
    }

    /// A raw string: cursor sits on `r`'s following char run of `#`s or `"`.
    /// `fences` has already counted the `#`s.
    fn raw_string(&mut self, line: u32, col: u32, fences: usize) {
        for _ in 0..fences {
            self.bump(); // the `#`s
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.peek() {
            if c == '"' {
                // Check for `"` followed by exactly `fences` `#`s.
                let mut ok = true;
                for i in 0..fences {
                    if self.peek_at(1 + i) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump();
                    for _ in 0..fences {
                        self.bump();
                    }
                    break 'outer;
                }
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::StrLit, text, line, col);
    }

    /// `'` at the cursor: decide char literal vs lifetime.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // the quote
        match self.peek() {
            Some('\\') => {
                // Escaped char literal: '\n', '\'', '\u{1F600}'.
                self.bump();
                let mut text = String::from("\\");
                while let Some(c) = self.peek() {
                    if c == '\'' {
                        self.bump();
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokKind::StrLit, text, line, col);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                // Could be 'a' (char) or 'a / 'static (lifetime): scan the
                // ident run and look for a closing quote.
                let mut len = 0usize;
                while let Some(n) = self.peek_at(len) {
                    if n == '_' || n.is_alphanumeric() {
                        len += 1;
                    } else {
                        break;
                    }
                }
                if self.peek_at(len) == Some('\'') {
                    // Char literal (single scalar like 'x' — multi-char ident
                    // runs before a quote only occur in malformed source).
                    let mut text = String::new();
                    for _ in 0..len {
                        if let Some(ch) = self.bump() {
                            text.push(ch);
                        }
                    }
                    self.bump(); // closing quote
                    self.push(TokKind::StrLit, text, line, col);
                } else {
                    let mut text = String::from("'");
                    for _ in 0..len {
                        if let Some(ch) = self.bump() {
                            text.push(ch);
                        }
                    }
                    self.push(TokKind::Lifetime, text, line, col);
                }
            }
            _ => {
                // Stray quote (e.g. inside macro) — emit as punct.
                self.push(TokKind::Punct, "'".to_string(), line, col);
            }
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        // Integer / prefix part: digits, underscores, hex/bin/oct letters,
        // and type suffixes are all alphanumeric — consume the run.
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fraction: a `.` followed by a digit (not `..` range, not method).
        if self.peek() == Some('.') {
            if let Some(n) = self.peek_at(1) {
                if n.is_ascii_digit() {
                    text.push('.');
                    self.bump();
                    while let Some(c) = self.peek() {
                        if c.is_alphanumeric() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        self.push(TokKind::NumLit, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String-literal prefixes: r"", r#""#, b"", br#""#, c"", cr"".
        match (text.as_str(), self.peek()) {
            ("r" | "br" | "cr", Some('"')) => return self.raw_string(line, col, 0),
            ("r" | "br" | "cr", Some('#')) => {
                // Count fences; only a raw string if a quote follows them
                // (otherwise it's `r#ident` — a raw identifier... which the
                // ident pass above already split; `#` here means fences).
                let mut fences = 0usize;
                while self.peek_at(fences) == Some('#') {
                    fences += 1;
                }
                if self.peek_at(fences) == Some('"') {
                    return self.raw_string(line, col, fences);
                }
            }
            ("b" | "c", Some('"')) => {
                // Byte/C string: lex body like a normal string.
                return self.string(line, col);
            }
            ("b", Some('\'')) => {
                // Byte char b'x'.
                return self.char_or_lifetime(line, col);
            }
            _ => {}
        }
        self.push(TokKind::Ident, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).0.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts_with_spans() {
        let (toks, _) = lex("let x = a.unwrap();");
        let unwrap = toks.iter().find(|t| t.text == "unwrap").unwrap();
        assert_eq!(unwrap.kind, TokKind::Ident);
        assert_eq!((unwrap.line, unwrap.col), (1, 11));
        assert!(toks.iter().any(|t| t.kind == TokKind::Punct && t.text == "."));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "x.unwrap() panic!"; s"#);
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "panic"));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::StrLit));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r#\"has \"quotes\" and .unwrap()\"#; done";
        let toks = kinds(src);
        assert!(toks.iter().any(|(_, t)| t == "done"));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds("let a = b\"panic!\"; let c = c\"todo!\"; end");
        assert!(toks.iter().any(|(_, t)| t == "end"));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "panic"));
    }

    #[test]
    fn comments_are_side_channel_and_nested() {
        let (toks, comments) = lex("code(); // trailing note\n/* a /* nested */ block */\nmore();");
        assert!(toks.iter().any(|t| t.text == "more"));
        assert_eq!(comments.len(), 2);
        assert!(comments[0].trailing);
        assert_eq!(comments[0].text, " trailing note");
        assert!(!comments[1].trailing);
        assert!(comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetime_vs_char() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.clone()).collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::StrLit).map(|t| t.text.clone()).collect();
        assert_eq!(chars, vec!["x", "\\n"]);
    }

    #[test]
    fn numbers_including_suffixes_and_ranges() {
        let toks = kinds("0 1_000u64 0x7F 2.5 0..5");
        let nums: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::NumLit).map(|(_, t)| t.clone()).collect();
        assert_eq!(nums, vec!["0", "1_000u64", "0x7F", "2.5", "0", "5"]);
    }

    #[test]
    fn line_and_col_track_newlines() {
        let (toks, _) = lex("a\n  b\n    c");
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        let c = toks.iter().find(|t| t.text == "c").unwrap();
        assert_eq!((b.line, b.col), (2, 3));
        assert_eq!((c.line, c.col), (3, 5));
    }
}
