//! The eight workspace invariants: token-level rules R1–R5, structural
//! rules R6–R8.
//!
//! | id | name                       | scope (production code only)            |
//! |----|----------------------------|-----------------------------------------|
//! | R1 | panic-free-daemons         | dfs, cluster, provision, mapreduce::engine |
//! | R2 | sim-time                   | sim-facing crates (dfs, cluster,        |
//! |    |                            | mapreduce, provision, hbase, core,      |
//! |    |                            | chaos, metrics)                         |
//! | R3 | lossless-casts             | sortbuf / merge / block hot paths       |
//! | R4 | writable-manifest          | whole workspace (`impl Writable` headers) |
//! | R5 | counters-hygiene           | whole workspace (`incr*(.., 0)` call-sites) |
//! | R6 | writable-field-coverage    | whole workspace (struct fields vs their |
//! |    |                            | `impl Writable` write/read bodies)      |
//! | R7 | config-key-hygiene         | `Configuration::get*` literals everywhere |
//! |    |                            | but `common/src/config.rs`; key census  |
//! |    |                            | at workspace level (see `confkeys`)     |
//! | R8 | deterministic-collections  | sim-facing crates (same scope as R2)    |
//!
//! Every rule reports `file:line:col`, an explanation, and the waiver
//! syntax; violations inside `#[cfg(test)]` regions are skipped, and
//! `// lint:allow(Rn): reason` comments downgrade a hit to "waived".
//! R6 additionally honors the per-field `// lint: skip-field(reason)`
//! waiver for fields that intentionally do not serialize.

use crate::items::FileItems;
use crate::lexer::{TokKind, Token};
use crate::scan::ScannedFile;
use std::fmt;

/// Stable rule identifier (what baselines and waivers reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
}

impl RuleId {
    /// Parse "R1".."R8" (case-insensitive).
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.to_ascii_uppercase().as_str() {
            "R1" => Some(RuleId::R1),
            "R2" => Some(RuleId::R2),
            "R3" => Some(RuleId::R3),
            "R4" => Some(RuleId::R4),
            "R5" => Some(RuleId::R5),
            "R6" => Some(RuleId::R6),
            "R7" => Some(RuleId::R7),
            "R8" => Some(RuleId::R8),
            _ => None,
        }
    }

    /// Short human name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::R1 => "panic-free-daemons",
            RuleId::R2 => "sim-time",
            RuleId::R3 => "lossless-casts",
            RuleId::R4 => "writable-manifest",
            RuleId::R5 => "counters-hygiene",
            RuleId::R6 => "writable-field-coverage",
            RuleId::R7 => "config-key-hygiene",
            RuleId::R8 => "deterministic-collections",
        }
    }

    /// All rules, in report order.
    pub fn all() -> [RuleId; 8] {
        [
            RuleId::R1,
            RuleId::R2,
            RuleId::R3,
            RuleId::R4,
            RuleId::R5,
            RuleId::R6,
            RuleId::R7,
            RuleId::R8,
        ]
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One rule hit at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub rule: RuleId,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// True when a `lint:allow` comment covers it (reported, not counted).
    pub waived: bool,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = if self.waived { " (waived)" } else { "" };
        write!(
            f,
            "{}:{}:{}: {} [{}]{} {}",
            self.file,
            self.line,
            self.col,
            self.rule,
            self.rule.name(),
            w,
            self.message
        )
    }
}

/// Which rules apply to a workspace-relative file path.
///
/// Fixture tests bypass this via [`lint_source_all_rules`]; the CLI goes
/// through it so scope changes live in exactly one place.
pub fn rules_for_path(path: &str) -> Vec<RuleId> {
    let mut rules = Vec::new();
    let daemon_crate = path.starts_with("crates/dfs/src/")
        || path.starts_with("crates/cluster/src/")
        || path.starts_with("crates/provision/src/")
        || path == "crates/mapreduce/src/engine.rs";
    if daemon_crate {
        rules.push(RuleId::R1);
    }
    let sim_facing = path.starts_with("crates/dfs/src/")
        || path.starts_with("crates/cluster/src/")
        || path.starts_with("crates/mapreduce/src/")
        || path.starts_with("crates/provision/src/")
        || path.starts_with("crates/hbase/src/")
        || path.starts_with("crates/core/src/")
        || path.starts_with("crates/chaos/src/")
        || path.starts_with("crates/metrics/src/");
    if sim_facing {
        rules.push(RuleId::R2);
    }
    let hot_path = path == "crates/mapreduce/src/sortbuf.rs"
        || path == "crates/mapreduce/src/merge.rs"
        || path == "crates/dfs/src/block.rs";
    if hot_path {
        rules.push(RuleId::R3);
    }
    // R4's per-file half (impl collection), R5, and R6 are workspace-wide.
    rules.push(RuleId::R5);
    rules.push(RuleId::R6);
    // R7's call-site half runs everywhere except the config module itself
    // (which is where the bare key strings legitimately live). Its key
    // census half is workspace-level; see `confkeys::check_keys`.
    if path != crate::confkeys::CONFIG_PATH {
        rules.push(RuleId::R7);
    }
    // R8 shares R2's sim-facing scope: nondeterministic iteration order is
    // only a bug where it can leak into the trace hash.
    if sim_facing {
        rules.push(RuleId::R8);
    }
    rules
}

/// Evaluate `rules` against one scanned file. R4 is not in this list —
/// it needs the cross-file manifest and runs at workspace level via
/// [`collect_writable_impls`].
pub fn lint_tokens(file: &str, sf: &ScannedFile, rules: &[RuleId]) -> Vec<Violation> {
    let mut out = Vec::new();
    // R6 is the only per-file rule that needs the item-level pass; build it
    // once, only when asked for.
    let items =
        if rules.contains(&RuleId::R6) { Some(crate::items::collect_items(sf)) } else { None };
    for &rule in rules {
        match rule {
            RuleId::R1 => rule_r1(file, sf, &mut out),
            RuleId::R2 => rule_r2(file, sf, &mut out),
            RuleId::R3 => rule_r3(file, sf, &mut out),
            RuleId::R4 => {} // workspace-level; see manifest::check
            RuleId::R5 => rule_r5(file, sf, &mut out),
            RuleId::R6 => {
                if let Some(items) = &items {
                    rule_r6(file, sf, items, &mut out);
                }
            }
            RuleId::R7 => rule_r7_call_sites(file, sf, &mut out),
            RuleId::R8 => rule_r8(file, sf, &mut out),
        }
    }
    out.sort_by_key(|v| (v.line, v.col, v.rule));
    out
}

fn push(
    out: &mut Vec<Violation>,
    sf: &ScannedFile,
    rule: RuleId,
    file: &str,
    t: &Token,
    message: String,
) {
    out.push(Violation {
        rule,
        file: file.to_string(),
        line: t.line,
        col: t.col,
        message,
        waived: sf.is_waived(rule, t.line),
    });
}

/// R1: no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` in daemon-path production code.
fn rule_r1(file: &str, sf: &ScannedFile, out: &mut Vec<Violation>) {
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        if sf.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let text = toks[i].text.as_str();
        let next_is = |s: &str| toks.get(i + 1).is_some_and(|t| t.text == s);
        let prev_is = |s: &str| i > 0 && toks[i - 1].text == s;
        match text {
            "unwrap" | "expect" if prev_is(".") && next_is("(") => {
                push(
                    out,
                    sf,
                    RuleId::R1,
                    file,
                    &toks[i],
                    format!(
                        ".{text}() in a daemon path — degrade via a \
                         `common::error::HlError` return instead \
                         (waive: `// lint:allow(R1): reason`)"
                    ),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented" if next_is("!") => {
                push(
                    out,
                    sf,
                    RuleId::R1,
                    file,
                    &toks[i],
                    format!(
                        "{text}! in a daemon path — daemons must degrade, \
                         not crash; return `HlError::Internal` \
                         (waive: `// lint:allow(R1): reason`)"
                    ),
                );
            }
            _ => {}
        }
    }
}

/// R2: no wall-clock or unseeded randomness in sim-facing code. All time
/// must flow through `common::simtime`; all RNGs must be seeded.
fn rule_r2(file: &str, sf: &ScannedFile, out: &mut Vec<Violation>) {
    for (i, tok) in sf.tokens.iter().enumerate() {
        if sf.in_test[i] || tok.kind != TokKind::Ident {
            continue;
        }
        let what = match tok.text.as_str() {
            "Instant" => "std::time::Instant (wall clock)",
            "SystemTime" => "std::time::SystemTime (wall clock)",
            "thread_rng" => "rand::thread_rng (unseeded RNG)",
            "from_entropy" => "SeedableRng::from_entropy (unseeded RNG)",
            "OsRng" => "rand::rngs::OsRng (unseeded RNG)",
            _ => continue,
        };
        push(
            out,
            sf,
            RuleId::R2,
            file,
            tok,
            format!(
                "{what} breaks simulation determinism — use \
                 `common::simtime::{{SimTime, SimDuration}}` / a seeded \
                 `ChaCha8Rng` (waive: `// lint:allow(R2): reason`)"
            ),
        );
    }
}

/// R3: narrowing `as` casts on the sort/merge/block hot paths. Lengths and
/// offsets must use `try_into()` (or carry a waiver arguing the bound).
fn rule_r3(file: &str, sf: &ScannedFile, out: &mut Vec<Violation>) {
    const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
    let toks = &sf.tokens;
    for i in 0..toks.len().saturating_sub(1) {
        if sf.in_test[i] {
            continue;
        }
        if toks[i].kind == TokKind::Ident && toks[i].text == "as" {
            let target = toks[i + 1].text.as_str();
            if toks[i + 1].kind == TokKind::Ident && (NARROW.contains(&target) || target == "usize")
            {
                push(
                    out,
                    sf,
                    RuleId::R3,
                    file,
                    &toks[i],
                    format!(
                        "`as {target}` narrowing cast on a hot path — \
                         silently truncates large lengths/offsets; use \
                         `try_into()` (waive: `// lint:allow(R3): reason` \
                         stating the bound)"
                    ),
                );
            }
        }
    }
}

/// R5: `incr(.., 0)` / `incr_task(.., 0)` / `incr_fs(.., 0)` — a zero
/// increment used to pre-register a counter. `touch`/`touch_task` is the
/// idiom; a zero delta reads as a bug.
fn rule_r5(file: &str, sf: &ScannedFile, out: &mut Vec<Violation>) {
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        if sf.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if !matches!(name, "incr" | "incr_task" | "incr_fs") {
            continue;
        }
        if toks.get(i + 1).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        // Walk to the matching `)`.
        let mut depth = 0i32;
        let mut close = None;
        for (k, t) in toks.iter().enumerate().skip(i + 1) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            close = Some(k);
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        let Some(close) = close else { continue };
        // Final argument must be the standalone literal `0` — i.e. the
        // token before `)` is `0` and the one before that is `,` (so
        // `x.0`, `len - 0`, etc. don't match).
        if close >= 2
            && toks[close - 1].kind == TokKind::NumLit
            && toks[close - 1].text == "0"
            && toks[close - 2].text == ","
        {
            let suggest = match name {
                "incr" => "touch",
                "incr_task" => "touch_task",
                _ => "touch",
            };
            push(
                out,
                sf,
                RuleId::R5,
                file,
                &toks[i],
                format!(
                    "`{name}(.., 0)` zero-delta counter registration — use \
                     `Counters::{suggest}` (waive: `// lint:allow(R5): reason`)"
                ),
            );
        }
    }
}

/// R6: every named field of a struct with a same-file `impl Writable`
/// must be referenced in both the `write` and the `read` (or
/// `read_fields`) method bodies. A field that serializes but never
/// deserializes — or vice versa — silently corrupts restart recovery.
///
/// Scope notes: enums and tuple structs are skipped (their round-trip
/// correctness is the R4 manifest's job — positional/variant coverage
/// is not name-trackable); so are impls for types declared in another
/// file and `$t` macro templates. The per-field waiver is
/// `// lint: skip-field(reason)` on (or directly above) the field.
fn rule_r6(file: &str, sf: &ScannedFile, items: &FileItems, out: &mut Vec<Violation>) {
    let mentions = |body: &std::ops::Range<usize>, name: &str| {
        sf.tokens[body.clone()].iter().any(|t| t.kind == TokKind::Ident && t.text == name)
    };
    for imp in &items.impls {
        if imp.in_test || imp.macro_template || imp.trait_name.as_deref() != Some("Writable") {
            continue;
        }
        let Some(st) = items.struct_named(&imp.type_name) else { continue };
        if st.tuple || st.in_test || st.fields.is_empty() {
            continue;
        }
        let write_fn = imp.fns.iter().find(|f| f.name == "write");
        let read_fn = imp.fns.iter().find(|f| f.name == "read" || f.name == "read_fields");
        // Impls that delegate both directions wholesale (no write/read
        // bodies here) can't be field-checked.
        let (Some(wf), Some(rf)) = (write_fn, read_fn) else { continue };
        for field in &st.fields {
            let in_write = mentions(&wf.body, &field.name);
            let in_read = mentions(&rf.body, &field.name);
            if in_write && in_read {
                continue;
            }
            let missing = match (in_write, in_read) {
                (false, false) => "either `write` or `read`",
                (false, true) => "`write`",
                (true, false) => "`read`",
                (true, true) => unreachable!(),
            };
            out.push(Violation {
                rule: RuleId::R6,
                file: file.to_string(),
                line: field.line,
                col: field.col,
                message: format!(
                    "field `{}` of `{}` is not referenced in {} of its \
                     `impl Writable` — every field must round-trip \
                     (waive: `// lint: skip-field(reason)` on the field)",
                    field.name, st.name, missing
                ),
                waived: sf.is_field_skipped(field.line) || sf.is_waived(RuleId::R6, field.line),
            });
        }
    }
}

/// The `Configuration` getters whose first argument must be a `keys::`
/// constant outside `common/src/config.rs` (R7's call-site half).
const CONFIG_GETTERS: [&str; 6] =
    ["get_u64", "get_u32", "get_usize", "get_f64", "get_bool", "get_or"];

/// R7 (call-site half): a `Configuration::get*` call whose key argument
/// is a bare string literal. Key strings live in `config::keys`; a
/// stringly call-site can drift from the declared key and silently read
/// the default forever. The census half (every key has a `with_defaults`
/// entry, no dead keys) is workspace-level — see `confkeys::check_keys`.
fn rule_r7_call_sites(file: &str, sf: &ScannedFile, out: &mut Vec<Violation>) {
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        if sf.in_test[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        if !CONFIG_GETTERS.contains(&name) {
            continue;
        }
        // `.get_u64("literal"` — method call with a string-literal key.
        if i == 0 || toks[i - 1].text != "." {
            continue;
        }
        if toks.get(i + 1).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        let Some(arg) = toks.get(i + 2) else { continue };
        if arg.kind != TokKind::StrLit {
            continue;
        }
        push(
            out,
            sf,
            RuleId::R7,
            file,
            &toks[i],
            format!(
                "`.{name}({})` with a bare key string — use a \
                 `config::keys::` constant so call-sites can't drift from \
                 the declared key (waive: `// lint:allow(R7): reason`)",
                arg.text
            ),
        );
    }
}

/// R8: `HashMap`/`HashSet` in sim-facing code. Their iteration order is
/// randomized per-process (SipHash seeding), so any trace, snapshot, or
/// scheduling decision that walks one diverges between runs and breaks
/// the chaos soak's trace-hash determinism. Use `BTreeMap`/`BTreeSet`
/// or a sorted `Vec`.
fn rule_r8(file: &str, sf: &ScannedFile, out: &mut Vec<Violation>) {
    for (i, tok) in sf.tokens.iter().enumerate() {
        if sf.in_test[i] || tok.kind != TokKind::Ident {
            continue;
        }
        let (what, instead) = match tok.text.as_str() {
            "HashMap" => ("HashMap", "BTreeMap"),
            "HashSet" => ("HashSet", "BTreeSet"),
            _ => continue,
        };
        push(
            out,
            sf,
            RuleId::R8,
            file,
            tok,
            format!(
                "`{what}` in sim-facing code — iteration order is \
                 process-randomized and breaks trace-hash determinism; \
                 use `{instead}` or a sorted `Vec` \
                 (waive: `// lint:allow(R8): reason`)"
            ),
        );
    }
}

/// A `impl Writable for T` header found in a file (R4's raw material).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritableImpl {
    /// The implementing type's head identifier (`Cell`, `Vec`, `(tuple)`),
    /// generic arguments stripped.
    pub type_name: String,
    pub line: u32,
    pub col: u32,
    /// True for `impl Writable for $t { .. }` inside `macro_rules!` — the
    /// expansion sites, not the template, are what need coverage.
    pub macro_template: bool,
}

/// Find every `impl [<..>] [path::]Writable for Type` header outside test
/// code.
pub fn collect_writable_impls(sf: &ScannedFile) -> Vec<WritableImpl> {
    let toks = &sf.tokens;
    let mut found = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if sf.in_test[i] || toks[i].kind != TokKind::Ident || toks[i].text != "impl" {
            i += 1;
            continue;
        }
        let impl_tok = &toks[i];
        let mut j = i + 1;
        // Skip a generics block `<...>` (tokens are single chars, so count
        // plain angle depth; no shift operators appear in an impl header).
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut adepth = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => adepth += 1,
                    ">" => {
                        adepth -= 1;
                        if adepth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Collect the trait path until `for` / `{` / `(` — at angle depth 0
        // so `Pair<A, B>`-style trait generics don't hide the `for`.
        let mut trait_last_ident: Option<&str> = None;
        let mut adepth = 0i32;
        let mut for_at = None;
        while j < toks.len() {
            let t = &toks[j];
            match t.text.as_str() {
                "<" => adepth += 1,
                ">" => adepth -= 1,
                "for" if adepth == 0 && t.kind == TokKind::Ident => {
                    for_at = Some(j);
                    break;
                }
                "{" | ";" if adepth == 0 => break,
                _ => {
                    if t.kind == TokKind::Ident {
                        trait_last_ident = Some(t.text.as_str());
                    }
                }
            }
            j += 1;
        }
        let (Some(for_at), Some("Writable")) = (for_at, trait_last_ident) else {
            i += 1;
            continue;
        };
        // The implementing type: first meaningful token after `for`.
        let mut k = for_at + 1;
        // Skip leading `&`, lifetimes, `mut`.
        while k < toks.len()
            && (toks[k].text == "&" || toks[k].kind == TokKind::Lifetime || toks[k].text == "mut")
        {
            k += 1;
        }
        if let Some(t) = toks.get(k) {
            let (type_name, macro_template) = if t.text == "(" {
                ("(tuple)".to_string(), false)
            } else if t.text == "$" {
                (String::new(), true)
            } else {
                (t.text.clone(), false)
            };
            found.push(WritableImpl {
                type_name,
                line: impl_tok.line,
                col: impl_tok.col,
                macro_template,
            });
        }
        i = k + 1;
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_rules(src: &str) -> Vec<Violation> {
        let sf = ScannedFile::new(src);
        lint_tokens("test.rs", &sf, &RuleId::all())
    }

    fn active(src: &str) -> Vec<Violation> {
        all_rules(src).into_iter().filter(|v| !v.waived).collect()
    }

    #[test]
    fn r1_catches_unwrap_expect_and_panic_macros() {
        let v = active(
            "fn f() -> u8 {\n  let x = g().unwrap();\n  let y = h().expect(\"no\");\n  panic!(\"bad\");\n}",
        );
        let r1: Vec<_> = v.iter().filter(|v| v.rule == RuleId::R1).collect();
        assert_eq!(r1.len(), 3);
        assert_eq!((r1[0].line, r1[0].col), (2, 15));
        assert_eq!(r1[1].line, 3);
        assert_eq!(r1[2].line, 4);
    }

    #[test]
    fn r1_ignores_unwrap_or_and_field_names() {
        let v = active("fn f() { let x = g().unwrap_or(0); s.expect_count += 1; }");
        assert!(v.iter().all(|v| v.rule != RuleId::R1));
    }

    #[test]
    fn r1_skips_test_code_and_strings_and_comments() {
        let v = active(
            "// a comment mentioning panic!(\"x\") and .unwrap()\nfn f() { let s = \"panic!\"; }\n#[cfg(test)]\nmod tests {\n  fn t() { g().unwrap(); panic!(\"ok in tests\"); }\n}",
        );
        assert!(v.iter().all(|v| v.rule != RuleId::R1));
    }

    #[test]
    fn r2_catches_wall_clock_and_unseeded_rng() {
        let v = active(
            "fn f() {\n  let t = std::time::Instant::now();\n  let s = SystemTime::now();\n  let r = thread_rng();\n}",
        );
        let r2: Vec<_> = v.iter().filter(|v| v.rule == RuleId::R2).collect();
        assert_eq!(r2.len(), 3);
        assert_eq!((r2[0].line, r2[0].col), (2, 22));
    }

    #[test]
    fn r2_allows_sim_time_and_seeded_rng() {
        let v = active(
            "fn f(now: SimTime) { let d = SimDuration::from_secs(1); let r = ChaCha8Rng::seed_from_u64(7); }",
        );
        assert!(v.iter().all(|v| v.rule != RuleId::R2));
    }

    #[test]
    fn r3_catches_narrowing_but_not_widening() {
        let v =
            active("fn f(n: u64) { let a = n as u32; let b = n as usize; let c = 3u32 as u64; }");
        let r3: Vec<_> = v.iter().filter(|v| v.rule == RuleId::R3).collect();
        assert_eq!(r3.len(), 2);
        assert!(r3[0].message.contains("as u32"));
        assert!(r3[1].message.contains("as usize"));
    }

    #[test]
    fn r5_catches_zero_delta_incr_only() {
        let v = active(
            "fn f(c: &mut Counters) {\n  c.incr_task(T::MapOutputBytes, 0);\n  c.incr(\"g\", \"n\", 0);\n  c.incr_task(T::MapOutputBytes, 10);\n  c.incr(\"g\", \"n\", x.0);\n}",
        );
        let r5: Vec<_> = v.iter().filter(|v| v.rule == RuleId::R5).collect();
        assert_eq!(r5.len(), 2);
        assert_eq!(r5[0].line, 2);
        assert_eq!(r5[1].line, 3);
        assert!(r5[0].message.contains("touch_task"));
    }

    #[test]
    fn waiver_downgrades_to_waived() {
        let v = all_rules(
            "fn f(n: u64) {\n  // lint:allow(R3): n < 100 by construction\n  let a = n as u32;\n}",
        );
        let r3: Vec<_> = v.iter().filter(|v| v.rule == RuleId::R3).collect();
        assert_eq!(r3.len(), 1);
        assert!(r3[0].waived);
    }

    #[test]
    fn r6_flags_field_missing_from_write_or_read() {
        let v = active(
            "struct Rec { a: u64, b: u64, c: u64 }\n\
             impl Writable for Rec {\n\
             \x20 fn write(&self, buf: &mut Vec<u8>) { w(self.a); w(self.b); }\n\
             \x20 fn read(buf: &mut &[u8]) -> Result<Self> { Ok(Rec { a: r(buf)?, c: 0 }) }\n\
             }",
        );
        let r6: Vec<_> = v.iter().filter(|v| v.rule == RuleId::R6).collect();
        // `b` serializes but never deserializes; `c` appears in read's
        // struct literal but never in write.
        assert_eq!(r6.len(), 2);
        assert!(r6[0].message.contains("`b`"));
        assert!(r6[0].message.contains("`read`"));
        assert!(r6[1].message.contains("`c`"));
        assert!(r6[1].message.contains("`write`"));
        assert_eq!((r6[0].line, r6[0].col), (1, 22));
    }

    #[test]
    fn r6_accepts_full_coverage_and_skip_field_waiver() {
        let v = all_rules(
            "struct Rec {\n\
             \x20 a: u64,\n\
             \x20 cache: u64, // lint: skip-field(rebuilt on load)\n\
             }\n\
             impl Writable for Rec {\n\
             \x20 fn write(&self, buf: &mut Vec<u8>) { w(self.a); }\n\
             \x20 fn read(buf: &mut &[u8]) -> Result<Self> { Ok(Rec { a: r(buf)?, cache: 0 }) }\n\
             }",
        );
        let r6: Vec<_> = v.iter().filter(|v| v.rule == RuleId::R6).collect();
        assert_eq!(r6.len(), 1);
        assert!(r6[0].waived, "skip-field must downgrade to waived");
    }

    #[test]
    fn r6_skips_enums_tuple_structs_and_foreign_types() {
        let v = active(
            "enum Op { A, B }\n\
             impl Writable for Op { fn write(&self, b: &mut Vec<u8>) {} fn read(b: &mut &[u8]) -> Result<Self> { Ok(Op::A) } }\n\
             struct Wrap(u64);\n\
             impl Writable for Wrap { fn write(&self, b: &mut Vec<u8>) {} fn read(b: &mut &[u8]) -> Result<Self> { Ok(Wrap(0)) } }\n\
             impl Writable for Elsewhere { fn write(&self, b: &mut Vec<u8>) {} fn read(b: &mut &[u8]) -> Result<Self> { todo() } }",
        );
        assert!(v.iter().all(|v| v.rule != RuleId::R6));
    }

    #[test]
    fn r7_flags_bare_string_keys_but_not_const_keys() {
        let v = active(
            "fn f(conf: &Configuration) {\n\
             \x20 let a = conf.get_u64(\"dfs.block.size\", 0);\n\
             \x20 let b = conf.get_u64(keys::DFS_BLOCK_SIZE, 0);\n\
             \x20 let c = conf.get_bool(keys::MAPRED_SPECULATIVE);\n\
             \x20 let d = map.get(\"unrelated\");\n\
             }",
        );
        let r7: Vec<_> = v.iter().filter(|v| v.rule == RuleId::R7).collect();
        assert_eq!(r7.len(), 1);
        assert_eq!((r7[0].line, r7[0].col), (2, 16));
        assert!(r7[0].message.contains("dfs.block.size"));
    }

    #[test]
    fn r8_flags_hash_collections_outside_tests() {
        let v = active(
            "use std::collections::HashMap;\n\
             fn f() { let s: HashSet<u32> = HashSet::new(); }\n\
             #[cfg(test)]\nmod t { use std::collections::HashMap; }",
        );
        let r8: Vec<_> = v.iter().filter(|v| v.rule == RuleId::R8).collect();
        assert_eq!(r8.len(), 3);
        assert_eq!((r8[0].line, r8[0].col), (1, 23));
        assert!(r8[0].message.contains("BTreeMap"));
        assert!(r8[1].message.contains("BTreeSet"));
    }

    #[test]
    fn collect_writable_impls_handles_generics_paths_macros() {
        let sf = ScannedFile::new(
            "impl Writable for Cell { }\n\
             impl<A: Writable, B: Writable> Writable for Pair<A, B> { }\n\
             impl hl_common::writable::Writable for EditOp { }\n\
             impl Writable for (A, B) { }\n\
             impl Writable for $t { }\n\
             impl Display for NotWritable { }\n\
             #[cfg(test)]\nmod t { impl Writable for TestOnly {} }",
        );
        let impls = collect_writable_impls(&sf);
        let names: Vec<_> =
            impls.iter().filter(|i| !i.macro_template).map(|i| i.type_name.as_str()).collect();
        assert_eq!(names, vec!["Cell", "Pair", "EditOp", "(tuple)"]);
        assert_eq!(impls.iter().filter(|i| i.macro_template).count(), 1);
        assert_eq!(impls[0].line, 1);
        assert_eq!(impls[1].line, 2);
    }
}
