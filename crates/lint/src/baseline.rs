//! The ratchet: a checked-in census of pre-existing violations.
//!
//! `lint-baseline.toml` maps `(rule, file)` to the number of grandfathered
//! violations. `check` fails when any current count *exceeds* its baseline
//! (a regression); `baseline` rewrites the file and refuses to let any
//! count grow, so the only legal direction over time is down. When a file
//! improves, `check` keeps passing but nags until the baseline is
//! re-tightened — the burn-down is visible in every diff of this file.

use crate::rules::{RuleId, Violation};
use crate::toml_subset;
use std::collections::BTreeMap;

/// `(rule, file) → allowed count`, plus everything needed to diff.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(RuleId, String), u64>,
}

/// Outcome of comparing current violations against a baseline.
#[derive(Debug, Default)]
pub struct RatchetReport {
    /// Buckets whose count grew: (rule, file, baseline, current).
    pub regressions: Vec<(RuleId, String, u64, u64)>,
    /// Buckets whose count shrank (baseline should be re-tightened).
    pub improvements: Vec<(RuleId, String, u64, u64)>,
}

impl Baseline {
    /// Build a baseline from a violation list (waived ones excluded).
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut counts: BTreeMap<(RuleId, String), u64> = BTreeMap::new();
        for v in violations.iter().filter(|v| !v.waived) {
            *counts.entry((v.rule, v.file.clone())).or_default() += 1;
        }
        Baseline { counts }
    }

    /// Parse the serialized form.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = toml_subset::parse(text)?;
        let mut counts = BTreeMap::new();
        for (name, entry) in &doc.entries {
            if name != "entry" {
                return Err(format!("unexpected table [[{name}]] in baseline"));
            }
            let rule = entry
                .get("rule")
                .and_then(|r| RuleId::parse(r))
                .ok_or_else(|| "baseline entry missing/invalid `rule`".to_string())?;
            let file = entry
                .get("file")
                .ok_or_else(|| "baseline entry missing `file`".to_string())?
                .clone();
            let count: u64 = entry
                .get("count")
                .and_then(|c| c.parse().ok())
                .ok_or_else(|| "baseline entry missing/invalid `count`".to_string())?;
            if counts.insert((rule, file.clone()), count).is_some() {
                return Err(format!("duplicate baseline entry for {rule} {file}"));
            }
        }
        Ok(Baseline { counts })
    }

    /// Serialize (sorted, stable — diffs of this file are the burn-down
    /// chart).
    pub fn serialize(&self) -> String {
        let mut out = String::from(
            "# hadooplab-lint baseline — the violation ratchet.\n\
             #\n\
             # Each entry grandfathers pre-existing violations of one rule in one\n\
             # file. `cargo run -p lint -- check` fails if any count is exceeded;\n\
             # `cargo run -p lint -- baseline` re-tightens counts and refuses to\n\
             # let any grow. Fix violations; don't grow this file.\n\
             version = 1\n",
        );
        let total: u64 = self.counts.values().sum();
        out.push_str(&format!(
            "# {} grandfathered violations across {} buckets\n",
            total,
            self.counts.len()
        ));
        for ((rule, file), count) in &self.counts {
            out.push_str(&format!(
                "\n[[entry]]\nrule = {}\nfile = {}\ncount = {}\n",
                toml_subset::quote(&rule.to_string()),
                toml_subset::quote(file),
                count
            ));
        }
        out
    }

    /// Allowed count for a bucket (0 when absent).
    pub fn allowed(&self, rule: RuleId, file: &str) -> u64 {
        self.counts.get(&(rule, file.to_string())).copied().unwrap_or(0)
    }

    /// Total grandfathered count for one rule.
    pub fn rule_total(&self, rule: RuleId) -> u64 {
        self.counts.iter().filter(|((r, _), _)| *r == rule).map(|(_, c)| *c).sum()
    }

    /// Sum over every bucket.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Every bucket in sorted (rule, file) order — the burndown list.
    pub fn entries(&self) -> Vec<(RuleId, &str, u64)> {
        self.counts.iter().map(|((r, f), &c)| (*r, f.as_str(), c)).collect()
    }

    /// Compare current (non-waived) violations against this baseline.
    pub fn compare(&self, current: &[Violation]) -> RatchetReport {
        let now = Baseline::from_violations(current);
        let mut report = RatchetReport::default();
        let mut keys: Vec<&(RuleId, String)> =
            self.counts.keys().chain(now.counts.keys()).collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            let base = self.counts.get(key).copied().unwrap_or(0);
            let cur = now.counts.get(key).copied().unwrap_or(0);
            if cur > base {
                report.regressions.push((key.0, key.1.clone(), base, cur));
            } else if cur < base {
                report.improvements.push((key.0, key.1.clone(), base, cur));
            }
        }
        report
    }

    /// Would replacing `self` with `new` grow any bucket? Returns the
    /// offending buckets (rule, file, old, new).
    pub fn growth_against(&self, new: &Baseline) -> Vec<(RuleId, String, u64, u64)> {
        new.counts
            .iter()
            .filter_map(|((rule, file), &n)| {
                let old = self.allowed(*rule, file);
                (n > old).then(|| (*rule, file.clone(), old, n))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: RuleId, file: &str, line: u32, waived: bool) -> Violation {
        Violation { rule, file: file.into(), line, col: 1, message: String::new(), waived }
    }

    #[test]
    fn serialize_parse_round_trip() {
        let b = Baseline::from_violations(&[
            v(RuleId::R1, "a.rs", 1, false),
            v(RuleId::R1, "a.rs", 2, false),
            v(RuleId::R3, "b.rs", 9, false),
            v(RuleId::R5, "c.rs", 3, true), // waived: excluded
        ]);
        let text = b.serialize();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.allowed(RuleId::R1, "a.rs"), 2);
        assert_eq!(parsed.allowed(RuleId::R5, "c.rs"), 0);
        assert_eq!(parsed.total(), 3);
    }

    #[test]
    fn compare_finds_regressions_and_improvements() {
        let base = Baseline::from_violations(&[
            v(RuleId::R1, "a.rs", 1, false),
            v(RuleId::R1, "a.rs", 2, false),
            v(RuleId::R2, "b.rs", 1, false),
        ]);
        let current = vec![
            v(RuleId::R1, "a.rs", 1, false), // one fixed
            v(RuleId::R4, "d.rs", 7, false), // brand new
        ];
        let report = base.compare(&current);
        assert_eq!(report.regressions, vec![(RuleId::R4, "d.rs".into(), 0, 1)]);
        assert_eq!(
            report.improvements,
            vec![(RuleId::R1, "a.rs".into(), 2, 1), (RuleId::R2, "b.rs".into(), 1, 0)]
        );
    }

    #[test]
    fn growth_detection_for_ratchet() {
        let old = Baseline::from_violations(&[v(RuleId::R1, "a.rs", 1, false)]);
        let new = Baseline::from_violations(&[
            v(RuleId::R1, "a.rs", 1, false),
            v(RuleId::R1, "a.rs", 2, false),
        ]);
        assert_eq!(old.growth_against(&new), vec![(RuleId::R1, "a.rs".into(), 1, 2)]);
        assert!(new.growth_against(&old).is_empty());
    }

    #[test]
    fn parse_rejects_duplicates_and_junk() {
        assert!(Baseline::parse("[[entry]]\nrule = \"R9\"\nfile = \"x\"\ncount = 1\n").is_err());
        let dup = "[[entry]]\nrule = \"R1\"\nfile = \"x\"\ncount = 1\n\
                   [[entry]]\nrule = \"R1\"\nfile = \"x\"\ncount = 2\n";
        assert!(Baseline::parse(dup).is_err());
    }
}
