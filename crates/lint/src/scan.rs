//! Structural pass over a lexed file: which tokens are test-only code,
//! and which lines carry waiver directives.
//!
//! This is the single seam between the token stream and the rules. Rules
//! see a [`ScannedFile`] and nothing else, so swapping the hand-rolled
//! lexer for a `syn`-based backend (when the build environment has
//! network access to fetch it) means reimplementing only this module.

use crate::lexer::{lex, Comment, TokKind, Token};
use crate::rules::RuleId;
use std::collections::{BTreeMap, BTreeSet};

/// A file ready for rule evaluation.
pub struct ScannedFile {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// `in_test[i]` — token `i` lives under `#[cfg(test)]` / `#[test]`.
    pub in_test: Vec<bool>,
    /// Line → rules waived on that line (from `lint:allow` comments).
    waived_lines: BTreeMap<u32, Vec<RuleId>>,
    /// Lines carrying a `lint: skip-field(reason)` directive (R6's
    /// per-field waiver for intentionally unserialized fields).
    skip_field_lines: BTreeSet<u32>,
}

impl ScannedFile {
    /// Lex and scan `src`.
    pub fn new(src: &str) -> ScannedFile {
        let (tokens, comments) = lex(src);
        let in_test = mark_test_regions(&tokens);
        let waived_lines = collect_waivers(&comments);
        let skip_field_lines = collect_skip_fields(&comments);
        ScannedFile { tokens, in_test, waived_lines, skip_field_lines }
    }

    /// Is a violation of `rule` at `line` waived?
    ///
    /// A `// lint:allow(R3): reason` comment waives its own line and the
    /// line directly below it, so both trailing and standalone-above
    /// placements work:
    ///
    /// ```text
    /// let x = n as u32; // lint:allow(R3): n < 2^16 by construction
    ///
    /// // lint:allow(R1): poisoned mutex means the process is done anyway
    /// let g = lock.lock().unwrap();
    /// ```
    pub fn is_waived(&self, rule: RuleId, line: u32) -> bool {
        let hit = |l: &u32| self.waived_lines.get(l).is_some_and(|rs| rs.contains(&rule));
        hit(&line) || (line > 0 && hit(&(line - 1)))
    }

    /// Is the struct field declared at `line` exempt from R6 coverage?
    ///
    /// A `// lint: skip-field(reason)` comment waives the field on its own
    /// line or the line directly below — same placement rules as
    /// [`ScannedFile::is_waived`]:
    ///
    /// ```text
    /// pub cache: Vec<u8>, // lint: skip-field(rebuilt from blocks on read)
    ///
    /// // lint: skip-field(wall-clock only; never persisted)
    /// pub last_touched: SimTime,
    /// ```
    pub fn is_field_skipped(&self, line: u32) -> bool {
        self.skip_field_lines.contains(&line)
            || (line > 0 && self.skip_field_lines.contains(&(line - 1)))
    }
}

/// Compute, per token, whether it sits inside a test-only item.
///
/// Recognized markers: `#[cfg(test)]`, `#[cfg(any(.., test, ..))]`,
/// `#[test]`. `#[cfg(not(test))]` is production code and is *not*
/// marked. The marked region runs from the item's opening `{` to its
/// matching `}`; attributes on brace-less items (`#[cfg(test)] use ...;`)
/// end at the `;`.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut depth: i32 = 0;
    // Brace depth at which each active test region began; region ends when
    // depth returns to that value.
    let mut region_starts: Vec<i32> = Vec::new();
    // A test attribute was seen; waiting for the item's `{` or a `;`.
    let mut pending = false;

    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        // Attribute group: `#` `[` ... `]` (also `#![...]`).
        if t.kind == TokKind::Punct && t.text == "#" {
            let mut j = i + 1;
            if tokens.get(j).map(|t| t.text.as_str()) == Some("!") {
                j += 1;
            }
            if tokens.get(j).map(|t| t.text.as_str()) == Some("[") {
                // Find the matching `]`.
                let mut bdepth = 0i32;
                let start = j;
                let mut end = j;
                for (k, tk) in tokens.iter().enumerate().skip(start) {
                    if tk.kind == TokKind::Punct {
                        match tk.text.as_str() {
                            "[" => bdepth += 1,
                            "]" => {
                                bdepth -= 1;
                                if bdepth == 0 {
                                    end = k;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                }
                if end > start {
                    let idents: Vec<&str> = tokens[start..=end]
                        .iter()
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.as_str())
                        .collect();
                    let is_test_attr = match idents.first() {
                        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
                        Some(&"test") => true,
                        _ => false,
                    };
                    if is_test_attr {
                        pending = true;
                    }
                    // Tokens of the attribute itself inherit the current
                    // region state; skip past them.
                    let inside = !region_starts.is_empty();
                    for flag in in_test.iter_mut().take(end + 1).skip(i) {
                        *flag = inside;
                    }
                    i = end + 1;
                    continue;
                }
            }
        }

        in_test[i] = !region_starts.is_empty() || pending;

        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => {
                    if pending {
                        region_starts.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                "}" => {
                    depth -= 1;
                    if region_starts.last() == Some(&depth) {
                        region_starts.pop();
                    }
                }
                ";" if pending && region_starts.is_empty() => {
                    // `#[cfg(test)] use foo;` — item over, no braces.
                    pending = false;
                }
                _ => {}
            }
        }
        i += 1;
    }
    in_test
}

/// Collect lines carrying `lint: skip-field(reason)` directives. The
/// reason is mandatory — an empty paren pair does not waive.
fn collect_skip_fields(comments: &[Comment]) -> BTreeSet<u32> {
    let mut set = BTreeSet::new();
    for c in comments {
        // Accept both `lint: skip-field(` and `lint:skip-field(`.
        let Some(idx) = c.text.find("skip-field(") else { continue };
        let before = c.text[..idx].trim_end();
        if !before.ends_with("lint:") {
            continue;
        }
        let rest = &c.text[idx + "skip-field(".len()..];
        let has_reason = rest.find(')').is_some_and(|close| !rest[..close].trim().is_empty());
        if has_reason {
            set.insert(c.line);
        }
    }
    set
}

/// Parse `lint:allow(R1, R3)` directives out of comment text.
fn collect_waivers(comments: &[Comment]) -> BTreeMap<u32, Vec<RuleId>> {
    let mut map: BTreeMap<u32, Vec<RuleId>> = BTreeMap::new();
    for c in comments {
        let Some(idx) = c.text.find("lint:allow(") else { continue };
        let rest = &c.text[idx + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        for name in rest[..close].split(',') {
            if let Some(rule) = RuleId::parse(name.trim()) {
                map.entry(c.line).or_default().push(rule);
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scanned(src: &str) -> ScannedFile {
        ScannedFile::new(src)
    }

    fn test_flag_of(sf: &ScannedFile, ident: &str) -> bool {
        let (i, _) = sf
            .tokens
            .iter()
            .enumerate()
            .find(|(_, t)| t.text == ident)
            .unwrap_or_else(|| panic!("token {ident} not found"));
        sf.in_test[i]
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let sf = scanned(
            "fn prod() { a(); }\n#[cfg(test)]\nmod tests {\n  fn t() { b(); }\n}\nfn prod2() { c(); }",
        );
        assert!(!test_flag_of(&sf, "a"));
        assert!(test_flag_of(&sf, "b"));
        assert!(!test_flag_of(&sf, "c"));
    }

    #[test]
    fn test_fn_attr_is_marked() {
        let sf = scanned("#[test]\nfn t() { x(); }\nfn p() { y(); }");
        assert!(test_flag_of(&sf, "x"));
        assert!(!test_flag_of(&sf, "y"));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let sf = scanned("#[cfg(not(test))]\nfn p() { x(); }");
        assert!(!test_flag_of(&sf, "x"));
    }

    #[test]
    fn cfg_any_with_test_is_marked() {
        let sf = scanned("#[cfg(any(test, feature = \"slow\"))]\nfn h() { x(); }");
        assert!(test_flag_of(&sf, "x"));
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let sf = scanned("#[cfg(test)]\nuse helpers::spawn;\nfn p() { y(); }");
        assert!(test_flag_of(&sf, "spawn"));
        assert!(!test_flag_of(&sf, "y"));
    }

    #[test]
    fn attr_chain_between_cfg_test_and_item() {
        let sf = scanned("#[cfg(test)]\n#[derive(Debug)]\nstruct T { x: u8 }\nfn p() { y(); }");
        assert!(test_flag_of(&sf, "x"));
        assert!(!test_flag_of(&sf, "y"));
    }

    #[test]
    fn waiver_covers_same_and_next_line() {
        let sf = scanned("// lint:allow(R1): fine\nlet a = 1;\nlet b = 2; // lint:allow(R3)\n");
        assert!(sf.is_waived(RuleId::R1, 1));
        assert!(sf.is_waived(RuleId::R1, 2));
        assert!(!sf.is_waived(RuleId::R1, 3));
        assert!(sf.is_waived(RuleId::R3, 3));
        assert!(!sf.is_waived(RuleId::R1, 4));
    }

    #[test]
    fn skip_field_covers_same_and_next_line_and_needs_reason() {
        let sf = scanned(
            "// lint: skip-field(derived cache)\npub a: u8,\npub b: u8, // lint:skip-field(scratch)\npub x: u8,\npub y: u8,\npub c: u8, // lint: skip-field()\n",
        );
        assert!(sf.is_field_skipped(1));
        assert!(sf.is_field_skipped(2));
        assert!(sf.is_field_skipped(3));
        assert!(!sf.is_field_skipped(5));
        assert!(!sf.is_field_skipped(6)); // empty reason does not waive
                                          // A stray `skip-field(` without the `lint:` marker is inert.
        let sf2 = scanned("// see skip-field(notes) elsewhere\npub a: u8,\n");
        assert!(!sf2.is_field_skipped(2));
    }

    #[test]
    fn waiver_multiple_rules() {
        let sf = scanned("// lint:allow(R1, R2)\nx();");
        assert!(sf.is_waived(RuleId::R1, 2));
        assert!(sf.is_waived(RuleId::R2, 2));
        assert!(!sf.is_waived(RuleId::R5, 2));
    }
}
