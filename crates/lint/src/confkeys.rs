//! R7's workspace half: the config-key census.
//!
//! The call-site half (`rules::rule_r7_call_sites`) keeps bare key
//! strings out of `Configuration::get*` calls; this half keeps the
//! declared keys honest. Walking `mod keys` in `common/src/config.rs`
//! against the rest of the workspace catches two drifts the call-site
//! check cannot:
//!
//! * a key const with no `with_defaults` entry — `Configuration::
//!   with_defaults()` is the documented contract ("the stock defaults
//!   the course shipped"), and a key that silently falls through to the
//!   getter-side default value is invisible in rendered configs;
//! * a key no production or test code ever reads — dead config that
//!   suggests a consumer was deleted (or never wired) while the knob
//!   kept advertising itself.
//!
//! Both report at the key const's declaration span and honor the usual
//! `// lint:allow(R7): reason` waiver there.

use crate::items::matching_brace;
use crate::lexer::TokKind;
use crate::rules::{RuleId, Violation};
use crate::scan::ScannedFile;

/// Workspace-relative path of the config module — the one file where
/// bare key strings are legitimate, and the source of the key census.
pub const CONFIG_PATH: &str = "crates/common/src/config.rs";

/// One `pub const NAME: &str = "key.string";` inside `mod keys`.
struct KeyConst {
    name: String,
    value: String,
    line: u32,
    col: u32,
}

/// Run the census. `scanned` is every production source file, already
/// lexed, keyed by workspace-relative path. No config module in the
/// file set (e.g. fixture runs) means no census.
pub fn check_keys(scanned: &[(String, ScannedFile)]) -> Vec<Violation> {
    let Some((_, config)) = scanned.iter().find(|(rel, _)| rel == CONFIG_PATH) else {
        return Vec::new();
    };
    let keys = collect_key_consts(config);
    if keys.is_empty() {
        return Vec::new();
    }
    let defaults = with_defaults_idents(config);

    let mut out = Vec::new();
    for key in &keys {
        let waived = config.is_waived(RuleId::R7, key.line);
        if !defaults.contains(&key.name) {
            out.push(Violation {
                rule: RuleId::R7,
                file: CONFIG_PATH.to_string(),
                line: key.line,
                col: key.col,
                message: format!(
                    "config key `{}` ({}) has no `Configuration::with_defaults` \
                     entry — every declared key must ship a default \
                     (waive: `// lint:allow(R7): reason`)",
                    key.name, key.value
                ),
                waived,
            });
        }
        let referenced = scanned.iter().any(|(rel, sf)| {
            rel != CONFIG_PATH
                && sf.tokens.iter().any(|t| t.kind == TokKind::Ident && t.text == key.name)
        });
        if !referenced {
            out.push(Violation {
                rule: RuleId::R7,
                file: CONFIG_PATH.to_string(),
                line: key.line,
                col: key.col,
                message: format!(
                    "config key `{}` ({}) is never read outside the config \
                     module — dead config; delete the const or wire a \
                     consumer (waive: `// lint:allow(R7): reason`)",
                    key.name, key.value
                ),
                waived,
            });
        }
    }
    out
}

/// Every `const NAME: .. = "value";` inside `mod keys { .. }`.
fn collect_key_consts(sf: &ScannedFile) -> Vec<KeyConst> {
    let toks = &sf.tokens;
    let Some(body) = mod_keys_body(sf) else { return Vec::new() };
    let mut out = Vec::new();
    let mut i = body.0;
    while i < body.1 {
        if toks[i].kind == TokKind::Ident && toks[i].text == "const" {
            let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            // The value is the first string literal before the `;`.
            let mut value = String::new();
            let mut j = i + 2;
            while j < body.1 && toks[j].text != ";" {
                if toks[j].kind == TokKind::StrLit {
                    value = toks[j].text.clone();
                    break;
                }
                j += 1;
            }
            out.push(KeyConst { name: name.text.clone(), value, line: name.line, col: name.col });
            i = j;
        }
        i += 1;
    }
    out
}

/// Token-index range (exclusive of braces) of `mod keys { .. }`.
fn mod_keys_body(sf: &ScannedFile) -> Option<(usize, usize)> {
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "mod"
            && toks.get(i + 1).is_some_and(|t| t.text == "keys")
            && toks.get(i + 2).is_some_and(|t| t.text == "{")
        {
            return Some((i + 3, matching_brace(sf, i + 2)));
        }
    }
    None
}

/// The set of identifiers inside `fn with_defaults() { .. }` — a key
/// const referenced there (as `keys::NAME`) counts as having a default.
fn with_defaults_idents(sf: &ScannedFile) -> Vec<String> {
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "fn"
            && toks.get(i + 1).is_some_and(|t| t.text == "with_defaults")
        {
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "{" {
                j += 1;
            }
            if j == toks.len() {
                break;
            }
            let close = matching_brace(sf, j);
            return toks[j + 1..close]
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.clone())
                .collect();
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn census(files: &[(&str, &str)]) -> Vec<Violation> {
        let scanned: Vec<(String, ScannedFile)> =
            files.iter().map(|(rel, src)| (rel.to_string(), ScannedFile::new(src))).collect();
        check_keys(&scanned)
    }

    const CONFIG_SRC: &str = "pub mod keys {\n\
        \x20 pub const GOOD: &str = \"good.key\";\n\
        \x20 pub const NO_DEFAULT: &str = \"no.default\";\n\
        \x20 pub const DEAD: &str = \"dead.key\"; // lint:allow(R7): staged for PR 8\n\
        }\n\
        impl Configuration {\n\
        \x20 pub fn with_defaults() -> Self {\n\
        \x20   c.set(keys::GOOD, \"1\");\n\
        \x20   c.set(keys::DEAD, \"2\");\n\
        \x20 }\n\
        }\n";

    #[test]
    fn census_flags_missing_default_and_dead_key() {
        let vs = census(&[
            (CONFIG_PATH, CONFIG_SRC),
            ("crates/dfs/src/lib.rs", "fn f() { conf.get_u64(keys::GOOD, 0); g(NO_DEFAULT); }"),
        ]);
        // NO_DEFAULT: has a consumer but no with_defaults entry.
        // DEAD: no consumer — but carries a waiver, so it is downgraded.
        let active: Vec<_> = vs.iter().filter(|v| !v.waived).collect();
        assert_eq!(active.len(), 1);
        assert!(active[0].message.contains("NO_DEFAULT"));
        assert!(active[0].message.contains("with_defaults"));
        assert_eq!((active[0].line, active[0].col), (3, 13));
        let waived: Vec<_> = vs.iter().filter(|v| v.waived).collect();
        assert_eq!(waived.len(), 1);
        assert!(waived[0].message.contains("dead config"));
    }

    #[test]
    fn census_is_silent_with_clean_keys_or_absent_config() {
        let vs = census(&[
            (CONFIG_PATH, "pub mod keys { pub const GOOD: &str = \"g\"; }\nfn with_defaults() { c.set(keys::GOOD, \"1\"); }"),
            ("crates/dfs/src/lib.rs", "fn f() { conf.get_u64(keys::GOOD, 0); }"),
        ]);
        assert!(vs.is_empty());
        assert!(census(&[("crates/dfs/src/lib.rs", "fn f() {}")]).is_empty());
    }
}
