// R2 fixture: deterministic time and seeded randomness pass.
fn simulate(now: SimTime) -> SimTime {
    // "Instant" in a comment or string is not a violation.
    let label = "wall-clock Instant would break replay";
    let _ = label;
    let step = SimDuration::from_millis(250);
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
    let jitter = SimDuration::from_micros(rng.gen_range(0..500));
    now + step + jitter
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_use_wall_clock() {
        let _t = std::time::Instant::now();
    }
}
