//! R8 clean fixture: ordered collections only.

use std::collections::{BTreeMap, BTreeSet};

pub struct Tracker {
    pub slots: BTreeMap<u32, u64>,
    pub seen: BTreeSet<u32>,
}
