// R5 fixture: a deliberate zero increment carries a waiver.
fn merge_marker(counters: &mut Counters) {
    // lint:allow(R5): third-party report format requires an explicit 0 row
    counters.incr("Legacy Report", "PLACEHOLDER", 0);
}
