// R5 fixture: touch is the registration idiom; real increments and
// tuple-field zeros pass.
fn register(counters: &mut Counters, pair: (u64, u64)) {
    counters.touch_task(TaskCounter::MapOutputBytes);
    counters.touch("Shuffle Errors", "WRONG_MAP");
    counters.incr_task(TaskCounter::MapInputRecords, 42);
    counters.incr("Custom", "from-tuple", pair.0);
}
