// R1 fixture: waiver syntax downgrades hits to "waived".
fn locked_state(m: &std::sync::Mutex<u32>) -> u32 {
    // lint:allow(R1): a poisoned mutex means the process is already dead
    let g = m.lock().unwrap();
    *g + trailing(m)
}

fn trailing(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap() // lint:allow(R1): same poisoning argument
}
