// R1 fixture: panic-adjacent code the rule must NOT flag — combinator
// cousins, string/comment mentions, and test-only code.
fn daemon_step(x: Option<u32>) -> Result<u32, String> {
    // .unwrap() and panic!() in a comment do not count.
    let a = x.unwrap_or(7);
    let b = x.unwrap_or_else(|| 9);
    let s = "call .unwrap() then panic!(\"boom\")";
    let msg = r#"unreachable!() todo!() in a raw string"#;
    let _ = (s, msg);
    x.ok_or_else(|| "daemon degraded".to_string()).map(|v| v + a + b)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        if false {
            panic!("tests may panic");
        }
    }
}
