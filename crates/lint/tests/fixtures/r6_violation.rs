//! R6 violation fixture: `len` never deserializes, `gen` never
//! serializes.

pub struct Rec {
    pub id: u64,
    pub len: u64,
    pub gen: u64,
}

impl Writable for Rec {
    fn write(&self, buf: &mut Vec<u8>) {
        w(self.id, buf);
        w(self.len, buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        let mut out = Rec::default();
        out.id = r(buf)?;
        out.gen = r(buf)?;
        Ok(out)
    }
}
