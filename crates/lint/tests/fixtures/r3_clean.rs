// R3 fixture: widening casts and try_into pass.
fn pack(len: u32, off: usize) -> Result<(u64, u32), std::num::TryFromIntError> {
    let wide = len as u64;
    let exact: u32 = off.try_into()?;
    Ok((wide, exact))
}
