// R3 fixture: narrowing casts on lengths/offsets, with known spans.
fn pack(len: u64, off: u64) -> (u32, usize, u16) {
    let l = len as u32; // line 3, col 17
    let o = off as usize; // line 4, col 17
    let s = (len >> 3) as u16; // line 5, col 24
    (l, o, s)
}
