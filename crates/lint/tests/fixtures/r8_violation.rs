//! R8 violation fixture: hash collections in sim-facing code.

use std::collections::{HashMap, HashSet};

pub struct Tracker {
    pub slots: HashMap<u32, u64>,
}

fn f() {
    let mut s: HashSet<u32> = HashSet::new();
    s.insert(1);
}
