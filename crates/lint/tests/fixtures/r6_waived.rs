//! R6 waived fixture: a derived cache field opts out with a reason.

pub struct Rec {
    pub id: u64,
    // lint: skip-field(derived cache, rebuilt on load)
    pub cache: u64,
}

impl Writable for Rec {
    fn write(&self, buf: &mut Vec<u8>) {
        w(self.id, buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        let mut out = Rec::default();
        out.id = r(buf)?;
        Ok(out)
    }
}
