//! R6 clean fixture: every field round-trips.

pub struct Rec {
    pub id: u64,
    pub len: u64,
}

impl Writable for Rec {
    fn write(&self, buf: &mut Vec<u8>) {
        w(self.id, buf);
        w(self.len, buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(Rec { id: r(buf)?, len: r(buf)? })
    }
}
