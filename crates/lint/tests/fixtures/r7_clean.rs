//! R7 clean fixture: keys come from the `keys::` module.

fn f(conf: &Configuration) -> Result<()> {
    let a = conf.get_u64(keys::DFS_BLOCK_SIZE, 0)?;
    let b = conf.get_or(keys::IO_SORT_BYTES, "0");
    let _ = (a, b);
    Ok(())
}
