//! R8 waived fixture: a lookup-only hash map with the argument
//! recorded.

// lint:allow(R8): lookup-only table, never iterated
use std::collections::HashMap;

pub struct Cache {
    // lint:allow(R8): point lookups only; snapshot path sorts first
    pub inner: HashMap<u64, u64>,
}
