// R3 fixture: a bounded narrowing cast carries a waiver stating the bound.
fn partition_of(hash: u64, parts: u32) -> u32 {
    (hash % parts as u64) as u32 // lint:allow(R3): modulo parts < 2^32 keeps this in range
}
