// R2 fixture: a justified wall-clock read carries a waiver.
fn profile_only() -> std::time::Duration {
    // lint:allow(R2): report-only wall profiling, never fed back into sim state
    let start = std::time::Instant::now();
    start.elapsed()
}
