//! R7 violation fixture: bare key strings at getter call sites.

fn f(conf: &Configuration) -> Result<()> {
    let a = conf.get_u64("dfs.block.size", 0)?;
    let b = conf.get_bool("mapred.map.tasks.speculative.execution", true)?;
    let _ = (a, b);
    Ok(())
}
