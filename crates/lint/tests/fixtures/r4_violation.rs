// R4 fixture: `Rogue` implements Writable but is not in the manifest.
struct Rogue {
    bits: u64,
}

impl Writable for Rogue { // line 6, col 1
    fn write(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.bits.to_le_bytes());
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        let (head, rest) = buf.split_at(8);
        *buf = rest;
        Ok(Rogue { bits: u64::from_le_bytes(head.try_into().map_err(bad)?) })
    }
}
