// R2 fixture: wall-clock time and unseeded randomness, with known spans.
fn race_the_clock() -> u64 {
    let start = std::time::Instant::now(); // line 3, col 28
    let epoch = SystemTime::now(); // line 4, col 17
    let mut rng = thread_rng(); // line 5, col 19
    let _ = (start, epoch);
    rng.gen()
}
