//! R7 waived fixture: a one-off probe key with an argued waiver.

fn f(conf: &Configuration) -> Result<u64> {
    // lint:allow(R7): experiment-local key, never shipped
    conf.get_u64("bench.probe.key", 0)
}
