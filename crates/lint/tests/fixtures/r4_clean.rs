// R4 fixture: `Registered` is in the fixture manifest; generic and
// non-Writable impls do not count.
struct Registered(u32);

impl Writable for Registered {
    fn write(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0.to_le_bytes());
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        decode_u32(buf).map(Registered)
    }
}

impl std::fmt::Display for Registered {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
