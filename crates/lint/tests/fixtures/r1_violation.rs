// R1 fixture: every panic vector the rule must catch, with known spans.
fn daemon_step(x: Option<u32>) -> u32 {
    let a = x.unwrap(); // line 3, col 15
    let b = x.expect("registered"); // line 4, col 15
    if a > b {
        panic!("impossible"); // line 6, col 9
    }
    match a {
        0 => unreachable!(), // line 9, col 14
        1 => todo!(), // line 10, col 14
        _ => unimplemented!(), // line 11, col 14
    }
}
