// R5 fixture: zero-delta counter increments, with known spans.
fn register(counters: &mut Counters) {
    counters.incr_task(TaskCounter::MapOutputBytes, 0); // line 3, col 14
    counters.incr_fs(FileSystemCounter::HdfsBytesRead, 0); // line 4, col 14
    counters.incr("Shuffle Errors", "WRONG_MAP", 0); // line 5, col 14
}
