//! Fixture suite: every rule, three ways — violating, clean, waived —
//! asserting exact rule IDs and line:col spans.

use lint::manifest::Manifest;
use lint::rules::{RuleId, Violation};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn fixture_manifest() -> Manifest {
    Manifest::parse(&fixture("manifest.toml")).expect("fixture manifest parses")
}

/// Active (non-waived) violations of one rule in a fixture.
fn active(name: &str, rule: RuleId) -> Vec<Violation> {
    lint::lint_source_all_rules(name, &fixture(name), &fixture_manifest())
        .into_iter()
        .filter(|v| v.rule == rule && !v.waived)
        .collect()
}

/// Waived violations of one rule in a fixture.
fn waived(name: &str, rule: RuleId) -> Vec<Violation> {
    lint::lint_source_all_rules(name, &fixture(name), &fixture_manifest())
        .into_iter()
        .filter(|v| v.rule == rule && v.waived)
        .collect()
}

fn spans(vs: &[Violation]) -> Vec<(u32, u32)> {
    vs.iter().map(|v| (v.line, v.col)).collect()
}

#[test]
fn r1_violation_fixture_exact_spans() {
    let vs = active("r1_violation.rs", RuleId::R1);
    assert_eq!(spans(&vs), vec![(3, 15), (4, 15), (6, 9), (9, 14), (10, 14), (11, 14)]);
    assert!(vs.iter().all(|v| v.rule == RuleId::R1));
    assert!(vs[0].message.contains(".unwrap()"));
    assert!(vs[2].message.contains("panic!"));
}

#[test]
fn r1_clean_fixture_is_silent() {
    assert_eq!(active("r1_clean.rs", RuleId::R1), vec![]);
}

#[test]
fn r1_waived_fixture_reports_waived_only() {
    assert_eq!(active("r1_waived.rs", RuleId::R1), vec![]);
    let w = waived("r1_waived.rs", RuleId::R1);
    assert_eq!(spans(&w), vec![(4, 22), (9, 15)]);
}

#[test]
fn r2_violation_fixture_exact_spans() {
    let vs = active("r2_violation.rs", RuleId::R2);
    assert_eq!(spans(&vs), vec![(3, 28), (4, 17), (5, 19)]);
    assert!(vs[0].message.contains("Instant"));
    assert!(vs[2].message.contains("unseeded"));
}

#[test]
fn r2_clean_fixture_is_silent() {
    assert_eq!(active("r2_clean.rs", RuleId::R2), vec![]);
}

#[test]
fn r2_waived_fixture_reports_waived_only() {
    assert_eq!(active("r2_waived.rs", RuleId::R2), vec![]);
    assert_eq!(waived("r2_waived.rs", RuleId::R2).len(), 1);
}

#[test]
fn r3_violation_fixture_exact_spans() {
    let vs = active("r3_violation.rs", RuleId::R3);
    assert_eq!(spans(&vs), vec![(3, 17), (4, 17), (5, 24)]);
    assert!(vs[0].message.contains("as u32"));
}

#[test]
fn r3_clean_fixture_is_silent() {
    assert_eq!(active("r3_clean.rs", RuleId::R3), vec![]);
}

#[test]
fn r3_waived_fixture_reports_waived_only() {
    assert_eq!(active("r3_waived.rs", RuleId::R3), vec![]);
    let w = waived("r3_waived.rs", RuleId::R3);
    assert_eq!(spans(&w), vec![(3, 27)]);
}

#[test]
fn r4_violation_fixture_flags_unregistered_impl() {
    let vs = active("r4_violation.rs", RuleId::R4);
    assert_eq!(spans(&vs), vec![(6, 1)]);
    assert!(vs[0].message.contains("Rogue"));
}

#[test]
fn r4_clean_fixture_registered_type_passes() {
    assert_eq!(active("r4_clean.rs", RuleId::R4), vec![]);
}

#[test]
fn r5_violation_fixture_exact_spans() {
    let vs = active("r5_violation.rs", RuleId::R5);
    assert_eq!(spans(&vs), vec![(3, 14), (4, 14), (5, 14)]);
    assert!(vs[0].message.contains("touch_task"));
}

#[test]
fn r5_clean_fixture_is_silent() {
    assert_eq!(active("r5_clean.rs", RuleId::R5), vec![]);
}

#[test]
fn r5_waived_fixture_reports_waived_only() {
    assert_eq!(active("r5_waived.rs", RuleId::R5), vec![]);
    assert_eq!(waived("r5_waived.rs", RuleId::R5).len(), 1);
}

#[test]
fn r6_violation_fixture_exact_spans() {
    let vs = active("r6_violation.rs", RuleId::R6);
    assert_eq!(spans(&vs), vec![(6, 9), (7, 9)]);
    assert!(vs[0].message.contains("`len` of `Rec`"), "{}", vs[0].message);
    assert!(vs[0].message.contains("`read`"));
    assert!(vs[1].message.contains("`gen` of `Rec`"));
    assert!(vs[1].message.contains("`write`"));
}

#[test]
fn r6_clean_fixture_is_silent() {
    assert_eq!(active("r6_clean.rs", RuleId::R6), vec![]);
}

#[test]
fn r6_waived_fixture_reports_skip_field_only() {
    assert_eq!(active("r6_waived.rs", RuleId::R6), vec![]);
    let w = waived("r6_waived.rs", RuleId::R6);
    assert_eq!(spans(&w), vec![(6, 9)]);
    assert!(w[0].message.contains("either `write` or `read`"));
}

#[test]
fn r7_violation_fixture_exact_spans() {
    let vs = active("r7_violation.rs", RuleId::R7);
    assert_eq!(spans(&vs), vec![(4, 18), (5, 18)]);
    assert!(vs[0].message.contains("keys::"));
    assert!(vs[0].message.contains("dfs.block.size"));
}

#[test]
fn r7_clean_fixture_is_silent() {
    assert_eq!(active("r7_clean.rs", RuleId::R7), vec![]);
}

#[test]
fn r7_waived_fixture_reports_waived_only() {
    assert_eq!(active("r7_waived.rs", RuleId::R7), vec![]);
    assert_eq!(spans(&waived("r7_waived.rs", RuleId::R7)), vec![(5, 10)]);
}

#[test]
fn r8_violation_fixture_exact_spans() {
    let vs = active("r8_violation.rs", RuleId::R8);
    assert_eq!(spans(&vs), vec![(3, 24), (3, 33), (6, 16), (10, 16), (10, 31)]);
    assert!(vs[0].message.contains("BTreeMap"));
    assert!(vs[1].message.contains("BTreeSet"));
}

#[test]
fn r8_clean_fixture_is_silent() {
    assert_eq!(active("r8_clean.rs", RuleId::R8), vec![]);
}

#[test]
fn r8_waived_fixture_reports_waived_only() {
    assert_eq!(active("r8_waived.rs", RuleId::R8), vec![]);
    assert_eq!(spans(&waived("r8_waived.rs", RuleId::R8)), vec![(5, 23), (9, 16)]);
}

/// The acceptance bar: the fixture suite exercises all eight distinct
/// rule IDs.
#[test]
fn fixture_suite_reports_all_eight_rule_ids() {
    let mut seen = std::collections::BTreeSet::new();
    for name in [
        "r1_violation.rs",
        "r2_violation.rs",
        "r3_violation.rs",
        "r4_violation.rs",
        "r5_violation.rs",
        "r6_violation.rs",
        "r7_violation.rs",
        "r8_violation.rs",
    ] {
        for v in lint::lint_source_all_rules(name, &fixture(name), &fixture_manifest()) {
            seen.insert(v.rule);
        }
    }
    assert_eq!(seen.into_iter().collect::<Vec<_>>(), RuleId::all().to_vec());
}

/// Regenerating a baseline from the same violations — in any input
/// order, or after a parse round-trip — must produce identical bytes,
/// so `lint baseline` never churns the checked-in file.
#[test]
fn baseline_regeneration_is_byte_stable() {
    use lint::baseline::Baseline;
    let mut all = Vec::new();
    for name in ["r6_violation.rs", "r7_violation.rs", "r8_violation.rs", "r1_violation.rs"] {
        all.extend(lint::lint_source_all_rules(name, &fixture(name), &fixture_manifest()));
    }
    let first = Baseline::from_violations(&all).serialize();
    all.reverse();
    let reversed = Baseline::from_violations(&all).serialize();
    assert_eq!(first, reversed, "bucket order must not depend on input order");
    let reparsed = Baseline::parse(&first).expect("own output parses").serialize();
    assert_eq!(first, reparsed, "serialize → parse → serialize must be a fixed point");
}

/// Violations render as `file:line:col: Rn [name] message`.
#[test]
fn violation_display_format() {
    let vs = active("r1_violation.rs", RuleId::R1);
    let line = vs[0].to_string();
    assert!(line.starts_with("r1_violation.rs:3:15: R1 [panic-free-daemons]"), "{line}");
}
