//! `scale-soak` — NameNode scaling benchmark and CI gate.
//!
//! ```text
//! scale-soak                                       # 1000 DNs x 1M blocks
//! scale-soak --configs 200x100000                  # CI-sized run
//! scale-soak --configs 200x100000,1000x1000000     # both, one JSON
//! scale-soak --configs 200x100000 --check BENCH_scale.json
//! ```
//!
//! Four phases per config, mirroring a NameNode's life at scale:
//!
//! 1. **Bulk load** — create `blocks / 100` hundred-block files through the
//!    full create/add-block/complete path (namespace ops/sec).
//! 2. **Full block reports** — every DataNode reports its ~`3·blocks/nodes`
//!    replicas; per-report latency is sampled (mean / p99). With the
//!    per-node block index this is O(report), not O(cluster).
//! 3. **DES heartbeat rounds** — heartbeats for all nodes are driven
//!    through a [`TimerWheel`], so the event queue holds one entry per
//!    round instead of one per node (events/sec).
//! 4. **Checkpoint + restart** — an explicit fsimage checkpoint, a burst
//!    of tail edits, then a timed restart that loads the image and
//!    replays only the tail.
//!
//! The wall-clock numbers (ops/sec, latency, recovery time) are reported
//! for the paper's tables but *not* gated — they vary with the host. The
//! gate compares the deterministic counters (`des_events_total`,
//! `restart_tail_ops`, `report_replicas_total`, `fsimage_bytes`) against a
//! committed `BENCH_scale.json` with the same ±10% band the perf-gate
//! uses: a silent workload shrink or fsimage format bloat fails CI even
//! though the host's clock cannot.

use std::process::ExitCode;
use std::time::Instant; // lint:allow(R2): wall-clock benchmark harness, not sim logic

use hl_cluster::event::{EventQueue, TimerWheel};
use hl_common::config::keys;
use hl_common::prelude::*;
use hl_dfs::block::ReplicaMeta;
use hl_dfs::namenode::NameNode;

/// Blocks per file during bulk load — many blocks, few namespace entries,
/// like a real ingest of large files.
const BLOCKS_PER_FILE: u64 = 100;
/// Simulated heartbeat intervals driven in the DES phase.
const DES_INTERVALS: u64 = 50;
/// Files (x10 blocks) appended after the checkpoint: the edit-log tail the
/// restart must replay.
const TAIL_FILES: u64 = 200;
/// Gate tolerance: deterministic counters may drift this many percent.
const TOLERANCE_PCT: u64 = 10;

/// One config's measurements: wall-clock stats for humans, deterministic
/// counters for the gate.
struct ScaleStats {
    key: String,
    nn_ops_per_sec: u64,
    block_report_mean_us: u64,
    block_report_p99_us: u64,
    des_events_per_sec: u64,
    restart_recovery_us: u64,
    des_events_total: u64,
    restart_tail_ops: u64,
    report_replicas_total: u64,
    fsimage_bytes: u64,
}

impl ScaleStats {
    /// The deterministic counters the CI gate compares.
    fn gated(&self) -> [(&'static str, u64); 4] {
        [
            ("des_events_total", self.des_events_total),
            ("restart_tail_ops", self.restart_tail_ops),
            ("report_replicas_total", self.report_replicas_total),
            ("fsimage_bytes", self.fsimage_bytes),
        ]
    }

    fn to_json_entry(&self) -> String {
        format!(
            "  \"{}\": {{\n    \"nn_ops_per_sec\": {},\n    \"block_report_mean_us\": {},\n    \"block_report_p99_us\": {},\n    \"des_events_per_sec\": {},\n    \"restart_recovery_us\": {},\n    \"des_events_total\": {},\n    \"restart_tail_ops\": {},\n    \"report_replicas_total\": {},\n    \"fsimage_bytes\": {}\n  }}",
            self.key,
            self.nn_ops_per_sec,
            self.block_report_mean_us,
            self.block_report_p99_us,
            self.des_events_per_sec,
            self.restart_recovery_us,
            self.des_events_total,
            self.restart_tail_ops,
            self.report_replicas_total,
            self.fsimage_bytes
        )
    }
}

fn micros_u64(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn per_sec(count: u64, d: std::time::Duration) -> u64 {
    let us = micros_u64(d).max(1);
    count.saturating_mul(1_000_000) / us
}

fn node_id(i: u64) -> NodeId {
    NodeId(u32::try_from(i).unwrap_or(u32::MAX))
}

fn run_config(nodes: u64, blocks: u64) -> Result<ScaleStats> {
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 2048u64);
    config.set(keys::DFS_SAFEMODE_EXTENSION_SECS, 0u64);
    // Auto-checkpointing off: the load loop would otherwise serialize the
    // whole block map every N ops. Phase 4 checkpoints explicitly.
    config.set(keys::DFS_CHECKPOINT_OPS, 0u64);
    let topology = Topology::striped(usize::try_from(nodes).unwrap_or(usize::MAX), 20);
    let mut nn = NameNode::new(&config, topology)?;

    // Bootstrap a small placement set for bulk load (placement cost is
    // O(candidates log candidates) per block, so load with a small set).
    let bootstrap = 10u64.min(nodes);
    for i in 0..bootstrap {
        nn.register_datanode(SimTime::ZERO, node_id(i), u64::MAX / 2);
    }
    nn.safemode.update(SimTime::ZERO, 0, 0);

    // Phase 1: bulk load.
    let t_load = Instant::now(); // lint:allow(R2): benchmark harness
    nn.mkdirs("/scale")?;
    let files = blocks / BLOCKS_PER_FILE;
    let mut ids = Vec::with_capacity(usize::try_from(blocks).unwrap_or(0));
    for f in 0..files {
        let path = format!("/scale/f{f:07}");
        nn.create_file(SimTime::ZERO, &path, Some(3), None, "soak")?;
        for _ in 0..BLOCKS_PER_FILE {
            let (id, _targets) = nn.add_block(SimTime::ZERO, &path, 1024, None)?;
            ids.push(id);
        }
        nn.complete_file(&path)?;
    }
    let load = t_load.elapsed();
    let nn_ops = files.saturating_mul(BLOCKS_PER_FILE + 2) + 1;
    let nn_ops_per_sec = per_sec(nn_ops, load);
    eprintln!(
        "[{nodes}x{blocks}] loaded {} blocks in {:.1}s ({nn_ops_per_sec} ops/s)",
        ids.len(),
        load.as_secs_f64()
    );

    // Register the rest of the cluster.
    for i in bootstrap..nodes {
        nn.register_datanode(SimTime::ZERO, node_id(i), u64::MAX / 2);
    }

    // Phase 2: full block reports from every node. Block b lives on nodes
    // b, b+1, b+2 (mod cluster size): 3x replication, ~3*blocks/nodes
    // replicas per report.
    let mut per_node: Vec<Vec<ReplicaMeta>> = vec![Vec::new(); usize::try_from(nodes).unwrap_or(0)];
    for &id in &ids {
        let gs = nn.block(id).map(|b| b.gen_stamp).unwrap_or(1000);
        for r in 0..3u64 {
            let n = usize::try_from((id.0 + r) % nodes).unwrap_or(0);
            per_node[n].push(ReplicaMeta { id, len: 1024, gen_stamp: gs });
        }
    }
    for v in &mut per_node {
        v.sort_by_key(|m| m.id);
    }
    let report_replicas_total =
        per_node.iter().map(|v| u64::try_from(v.len()).unwrap_or(0)).sum::<u64>();

    let mut lat_us: Vec<u64> = Vec::with_capacity(per_node.len());
    for (i, report) in per_node.iter().enumerate() {
        let t = Instant::now(); // lint:allow(R2): benchmark harness
        nn.process_block_report(SimTime(1), node_id(u64::try_from(i).unwrap_or(0)), report);
        lat_us.push(micros_u64(t.elapsed()));
    }
    lat_us.sort_unstable();
    let block_report_mean_us =
        lat_us.iter().sum::<u64>() / u64::try_from(lat_us.len()).unwrap_or(1).max(1);
    let block_report_p99_us = lat_us[(lat_us.len() * 99 / 100).min(lat_us.len() - 1)];
    eprintln!(
        "[{nodes}x{blocks}] {} reports: mean {block_report_mean_us} us, p99 {block_report_p99_us} us",
        lat_us.len()
    );
    let (reported, expected) = nn.block_census();
    if reported != expected {
        return Err(HlError::Internal(format!(
            "census after full reports: {reported}/{expected} blocks reported"
        )));
    }

    // Phase 3: DES heartbeat rounds through the timer wheel. One queue
    // event per round fires all that round's nodes in key order; the heap
    // never holds more than a single timer entry.
    let interval = nn.heartbeat_interval();
    let granularity = SimDuration::from_micros((interval.as_micros() / 10).max(1));
    let mut wheel: TimerWheel<NodeId> = TimerWheel::new(granularity);
    let t0 = SimTime(2);
    for i in 0..nodes {
        // Stagger first deadlines across one interval so rounds stay small.
        let offset =
            SimDuration::from_micros(i.saturating_mul(interval.as_micros()) / nodes.max(1));
        wheel.schedule(node_id(i), t0 + offset);
    }
    let horizon = t0 + SimDuration::from_micros(interval.as_micros().saturating_mul(DES_INTERVALS));
    let mut queue: EventQueue<()> = EventQueue::new();
    if let Some(due) = wheel.next_due() {
        queue.schedule_at(due, ());
    }
    let mut des_events_total = 0u64;
    let t_des = Instant::now(); // lint:allow(R2): benchmark harness
    while let Some((t, ())) = queue.pop() {
        if t > horizon {
            break;
        }
        des_events_total += 1;
        for node in wheel.pop_due(t) {
            nn.heartbeat(t, node, u64::MAX / 2);
            des_events_total += 1;
            wheel.schedule(node, t + interval);
        }
        if let Some(due) = wheel.next_due() {
            queue.schedule_at(due, ());
        }
    }
    let des = t_des.elapsed();
    let des_events_per_sec = per_sec(des_events_total, des);
    eprintln!(
        "[{nodes}x{blocks}] DES: {des_events_total} events in {:.3}s ({des_events_per_sec} ev/s), queue held <=1 timer entry",
        des.as_secs_f64()
    );

    // Phase 4: checkpoint, tail edits, timed restart.
    let t_ckpt = Instant::now(); // lint:allow(R2): benchmark harness
    nn.checkpoint();
    let fsimage_bytes = u64::try_from(nn.fsimage_bytes().len()).unwrap_or(u64::MAX);
    eprintln!(
        "[{nodes}x{blocks}] checkpoint: {fsimage_bytes} bytes in {:.3}s",
        t_ckpt.elapsed().as_secs_f64()
    );
    let now = horizon;
    nn.mkdirs("/tail")?;
    for f in 0..TAIL_FILES {
        let path = format!("/tail/f{f:05}");
        nn.create_file(now, &path, Some(3), None, "soak")?;
        for _ in 0..10 {
            nn.add_block(now, &path, 1024, None)?;
        }
        nn.complete_file(&path)?;
    }
    let restart_tail_ops = u64::try_from(nn.editlog.len()).unwrap_or(u64::MAX);

    // The process dies (teardown costs no downtime — a real crash's heap
    // is reclaimed by the OS), then recovery is timed: image prefix load,
    // tail replay, lease rebuild, safe-mode entry.
    nn.shutdown();
    let t_restart = Instant::now(); // lint:allow(R2): benchmark harness
    nn.restart(now + SimDuration::from_secs(1))?;
    let restart_recovery_us = micros_u64(t_restart.elapsed());
    eprintln!(
        "[{nodes}x{blocks}] restart (image + {restart_tail_ops}-op tail): {:.1} ms",
        t_restart.elapsed().as_secs_f64() * 1e3
    );

    // The recovered NameNode must know the whole namespace again.
    let (_, total) = nn.block_census();
    let want = usize::try_from(blocks + TAIL_FILES * 10).unwrap_or(usize::MAX);
    if total != want {
        return Err(HlError::Internal(format!(
            "restart lost blocks: {total} of {want} in the block map"
        )));
    }

    Ok(ScaleStats {
        key: format!("scale_{nodes}x{blocks}"),
        nn_ops_per_sec,
        block_report_mean_us,
        block_report_p99_us,
        des_events_per_sec,
        restart_recovery_us,
        des_events_total,
        restart_tail_ops,
        report_replicas_total,
        fsimage_bytes,
    })
}

/// Extract `"metric": N` from the named config's object in the baseline
/// JSON (the flat format this binary writes).
fn extract(json: &str, key: &str, metric: &str) -> Option<u64> {
    let start = json.find(&format!("\"{key}\""))?;
    let body = &json[start..];
    let open = body.find('{')?;
    let close = body[open..].find('}')? + open;
    let section = &body[open..close];
    let at = section.find(&format!("\"{metric}\""))?;
    let rest = &section[at..];
    let colon = rest.find(':')?;
    let digits: String = rest[colon + 1..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Two-sided gate: a deterministic counter drifting past the band in
/// either direction means the workload or format changed silently.
fn check(stats: &[ScaleStats], baseline: &str) -> Vec<String> {
    let mut regressions = Vec::new();
    for s in stats {
        for (metric, measured) in s.gated() {
            let Some(base) = extract(baseline, &s.key, metric) else {
                regressions.push(format!("{}/{metric}: missing from baseline", s.key));
                continue;
            };
            let ceiling = base.saturating_mul(100 + TOLERANCE_PCT) / 100;
            let floor = base.saturating_mul(100 - TOLERANCE_PCT) / 100;
            if measured > ceiling || measured < floor {
                regressions.push(format!(
                    "{}/{metric}: {measured} outside {TOLERANCE_PCT}% band around baseline {base}",
                    s.key
                ));
            } else if measured != base {
                eprintln!(
                    "note: {}/{metric} drifted {measured} vs {base} (within {TOLERANCE_PCT}%)",
                    s.key
                );
            }
        }
    }
    regressions
}

fn combined_json(stats: &[ScaleStats]) -> String {
    let mut out = String::from("{\n");
    for (i, s) in stats.iter().enumerate() {
        out.push_str(&s.to_json_entry());
        out.push_str(if i + 1 < stats.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}

fn main() -> ExitCode {
    let mut configs: Vec<(u64, u64)> = vec![(1000, 1_000_000)];
    let mut check_path: Option<String> = None;
    let mut out_path = String::from("BENCH_scale.json");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--configs" => {
                let Some(v) = it.next() else {
                    eprintln!("--configs needs NODESxBLOCKS[,NODESxBLOCKS...]");
                    return ExitCode::from(2);
                };
                configs.clear();
                for part in v.split(',') {
                    let Some((n, b)) = part.split_once('x') else {
                        eprintln!("bad config {part}: want NODESxBLOCKS");
                        return ExitCode::from(2);
                    };
                    match (n.parse(), b.parse()) {
                        (Ok(n), Ok(b)) => configs.push((n, b)),
                        _ => {
                            eprintln!("bad config {part}: want NODESxBLOCKS");
                            return ExitCode::from(2);
                        }
                    }
                }
            }
            "--check" => match it.next() {
                Some(p) => check_path = Some(p),
                None => {
                    eprintln!("--check needs a baseline path");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: scale-soak [--configs NxB[,NxB...]] [--out PATH] [--check BENCH_scale.json]"
                );
                return ExitCode::from(2);
            }
        }
    }

    let mut stats = Vec::new();
    for (nodes, blocks) in configs {
        match run_config(nodes, blocks) {
            Ok(s) => {
                println!(
                    "{:<22} nn_ops/s={} report_p99_us={} des_ev/s={} restart_us={}",
                    s.key,
                    s.nn_ops_per_sec,
                    s.block_report_p99_us,
                    s.des_events_per_sec,
                    s.restart_recovery_us
                );
                stats.push(s);
            }
            Err(e) => {
                eprintln!("config {nodes}x{blocks} failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // Gate mode only reads the baseline — never overwrite it (a partial
    // `--configs` run would silently drop the other configs' entries).
    if check_path.is_none() {
        if let Err(e) = std::fs::write(&out_path, combined_json(&stats)) {
            eprintln!("writing {out_path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {out_path}");
    }

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("reading {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let regressions = check(&stats, &baseline);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("scale-gate: {r}");
            }
            return ExitCode::FAILURE;
        }
        println!("scale-gate: all deterministic counters within {TOLERANCE_PCT}% of {path}");
    }
    ExitCode::SUCCESS
}
