//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro                 # everything, Paper scale
//! repro --quick         # everything, Quick scale (seconds)
//! repro --fig1 --n5     # selected experiments only
//! ```
//!
//! Output is plain text, one section per artifact, with paper-reported
//! values alongside measured ones where applicable. EXPERIMENTS.md is the
//! curated record of one full run.

use hl_core::experiments::{self, Scale};

struct Item {
    flag: &'static str,
    title: &'static str,
    run: fn(Scale) -> String,
}

fn items() -> Vec<Item> {
    vec![
        Item {
            flag: "--fig1",
            title: "Figure 1 — HPC vs Hadoop architecture",
            run: |s| experiments::fig1::run(s).to_string(),
        },
        Item {
            flag: "--fig2",
            title: "Figure 2 — HDFS/MapReduce integration & locality",
            run: |s| experiments::fig2::run(s).to_string(),
        },
        Item {
            flag: "--tables",
            title: "Tables I–IV — survey statistics",
            run: |s| experiments::tables::run(s).to_string(),
        },
        Item {
            flag: "--table5",
            title: "Table V — curriculum map & course module",
            run: |_| hl_core::course::CourseModule.to_string(),
        },
        Item {
            flag: "--n1",
            title: "N1 — combiner trade-off",
            run: |s| experiments::n1::run(s).to_string(),
        },
        Item {
            flag: "--n2",
            title: "N2 — airline monoid variants",
            run: |s| experiments::n2::run(s).to_string(),
        },
        Item {
            flag: "--n3",
            title: "N3 — side-file access",
            run: |s| experiments::n3::run(s).to_string(),
        },
        Item {
            flag: "--n4",
            title: "N4 — serial vs cluster",
            run: |s| experiments::n4::run(s).to_string(),
        },
        Item {
            flag: "--n5",
            title: "N5 — staging times",
            run: |s| experiments::n5::run(s).to_string(),
        },
        Item {
            flag: "--n6",
            title: "N6 — meltdown & recovery drill",
            run: |s| experiments::n6::run(s).to_string(),
        },
        Item {
            flag: "--n7",
            title: "N7 — myHadoop provisioning",
            run: |s| experiments::n7::run(s).to_string(),
        },
        Item {
            flag: "--jummp",
            title: "JUMMP — maneuvering through preemption (paper ref [11])",
            run: |s| experiments::jummp::run(s).to_string(),
        },
        Item {
            flag: "--platforms",
            title: "Section II — platform evolution (VM / shared / myHadoop)",
            run: |s| experiments::platforms::run(s).to_string(),
        },
        Item {
            flag: "--n8",
            title: "N8 — assignment-1 runtimes",
            run: |s| experiments::n8::run(s).to_string(),
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") { Scale::Quick } else { Scale::Paper };
    let selected: Vec<&String> = args.iter().filter(|a| a.as_str() != "--quick").collect();
    if selected.iter().any(|a| *a == "--help" || *a == "-h") {
        println!("usage: repro [--quick] [--fig1 --fig2 --tables --table5 --n1..--n8]");
        return;
    }

    let all = items();
    let chosen: Vec<&Item> = if selected.is_empty() {
        all.iter().collect()
    } else {
        all.iter().filter(|i| selected.iter().any(|a| *a == i.flag)).collect()
    };
    if chosen.is_empty() {
        eprintln!("no matching experiment flags; try --help");
        std::process::exit(2);
    }

    println!(
        "HadoopLab repro — {} scale\nReproducing: Ngo, Apon & Duffy, \
         \"Teaching HDFS/MapReduce Systems Concepts to Undergraduates\" (2014)\n",
        if scale == Scale::Quick { "QUICK" } else { "PAPER" }
    );
    for item in chosen {
        println!("================================================================");
        println!("{}", item.title);
        println!("================================================================");
        println!("{}", (item.run)(scale));
    }
}
