//! `bench-snapshot` — the CI perf-gate's pinned benchmark.
//!
//! ```text
//! bench-snapshot                              # run, write BENCH_<workload>.json
//! bench-snapshot --baseline                   # also write combined BENCH_baseline.json
//! bench-snapshot --check BENCH_baseline.json  # compare against a committed baseline
//! ```
//!
//! Runs three pinned workloads and records a handful of virtual-time/perf
//! counters for each:
//!
//! * **wordcount** / **terasort** — a fixed 8-node cluster with a
//!   deliberately small sort buffer (so the spill path is exercised):
//!   `wall_time_us` (simulated job duration), `spill_bytes` (map-side
//!   spill volume), `shuffle_bytes` (reduce fetch volume);
//! * **sched** — the contended Google-trace replay under the Fair
//!   scheduler: `decisions` (assignment count), `wall_time_us`
//!   (makespan), `mean_wait_us` / `p99_wait_us` (queue latency), and
//!   `preemptions`;
//! * **tpcxhs** — the TPCx-HS-style hsgen/hssort/hsvalidate suite run
//!   2×2 (speculative execution on/off × homogeneous/skewed cluster):
//!   per-cell makespans plus speculative wasted work. The cell shapes are
//!   gated in-binary: on the skewed cluster speculation must *shorten*
//!   the makespan, and on the homogeneous cluster its wasted work must
//!   stay under 5% of the makespan. Every cell's validator must certify
//!   the sort, so speculation is also re-proven output-neutral here;
//! * **codec** — wordcount and TPCx-HS with `mapred.compress.map.output`
//!   off vs on: spill bytes, shuffle bytes, and makespans per arm. Gated
//!   in-binary: the compressed arm's wordcount output must be
//!   byte-identical to the plain arm's, and its spill and shuffle volumes
//!   must *shrink* on the compressible corpus.
//!
//! Every metric is a pure function of the engine's cost model, so a
//! committed baseline diff is a deterministic perf regression signal, not
//! a noisy wall-clock one. `--check` fails (exit 1) on any metric
//! regressing more than the 10% tolerance band; usage or I/O problems
//! exit 2.

use std::process::ExitCode;

use hl_cluster::node::{ClusterSpec, DegradeModel, HeterogeneousClusterSpec, PerfProfile};
use hl_common::config::keys;
use hl_common::prelude::*;
use hl_datagen::CorpusGen;
use hl_mapreduce::job::JobConf;
use hl_mapreduce::MrCluster;
use hl_workloads::replay::{load_trace, replay, ReplayPolicy, ReplaySetup};
use hl_workloads::terasort::{sample_cut_points, sorted_wordcount};
use hl_workloads::tpcxhs::{expected_digest, hsgen, hssort, hsvalidate, parse_verdict};
use hl_workloads::wordcount::wordcount;

/// Seed for the input corpus — pinned so every run sees identical data.
const SEED: u64 = 42;
/// Corpus size in words: big enough to spill against the shrunken sort
/// buffer and split into several map tasks.
const WORDS: usize = 150_000;
/// Regression tolerance: fail only past this many percent over baseline.
const TOLERANCE_PCT: u64 = 10;

/// One workload's perf counters, all derived from virtual time. The
/// metric set is per-workload (engine jobs track spill/shuffle volume,
/// the scheduler replay tracks wait latency), so it is a named list
/// rather than a fixed struct.
struct Snapshot {
    workload: &'static str,
    metrics: Vec<(&'static str, u64)>,
}

impl Snapshot {
    fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"workload\": \"{}\"", self.workload);
        for (name, value) in &self.metrics {
            out.push_str(&format!(",\n  \"{name}\": {value}"));
        }
        out.push_str("\n}\n");
        out
    }

    fn render(&self) -> String {
        let mut out = format!("{:<10}", self.workload);
        for (name, value) in &self.metrics {
            out.push_str(&format!(" {name}={value}"));
        }
        out
    }
}

/// The pinned cluster: 8 course nodes, 128 KiB blocks (several maps per
/// job), 64 KiB sort buffer (guaranteed spills at this corpus size).
fn pinned_cluster() -> Result<MrCluster> {
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 128 * 1024u64);
    config.set(keys::IO_SORT_BYTES, 64 * 1024u64);
    MrCluster::new(ClusterSpec::course_hadoop(8), config)
}

fn stage(cluster: &mut MrCluster, path: &str, text: &str) -> Result<()> {
    cluster.dfs.namenode.mkdirs("/in")?;
    let t = cluster.now;
    let put = cluster.dfs.put(&mut cluster.net, t, path, text.as_bytes(), None)?;
    cluster.now = put.completed_at;
    Ok(())
}

/// Run one workload on a fresh pinned cluster and snapshot its counters.
fn run_workload(workload: &'static str) -> Result<Snapshot> {
    let mut cluster = pinned_cluster()?;
    let (corpus, _) = CorpusGen::new(SEED).generate(WORDS);
    stage(&mut cluster, "/in/corpus.txt", &corpus)?;
    let report = match workload {
        "wordcount" => cluster.run_job(&wordcount("/in/corpus.txt", "/out/wc", 4))?,
        "terasort" => {
            let cuts = sample_cut_points(&corpus, 4);
            cluster.run_job(&sorted_wordcount("/in/corpus.txt", "/out/ts", cuts))?
        }
        other => return Err(HlError::Config(format!("unknown workload {other}"))),
    };
    let snap = cluster.metrics_snapshot();
    Ok(Snapshot {
        workload,
        metrics: vec![
            ("wall_time_us", report.elapsed().as_micros()),
            ("spill_bytes", snap.counter("jobtracker", "spill.bytes")),
            ("shuffle_bytes", snap.counter("jobtracker", "shuffle.bytes")),
        ],
    })
}

/// The scheduler benchmark: the pinned contended Google-trace replay
/// under the Fair policy — the setup where assignment decisions, waits,
/// and preemptions all do real work.
fn run_sched() -> Result<Snapshot> {
    let (log, _) = hl_datagen::google_trace::GoogleTraceGen::new(SEED).with_jobs(600, 8).generate();
    let jobs = load_trace(&log);
    let out = replay(&jobs, ReplayPolicy::Fair, &ReplaySetup::contended());
    if !out.violations.is_empty() {
        return Err(HlError::Config(format!("sched replay violations: {:?}", out.violations)));
    }
    Ok(Snapshot {
        workload: "sched",
        metrics: vec![
            ("decisions", out.decisions),
            ("wall_time_us", out.makespan.0),
            ("mean_wait_us", out.mean_wait.0),
            ("p99_wait_us", out.p99_wait.0),
            ("preemptions", out.policy_preemptions),
        ],
    })
}

/// One TPCx-HS ablation cell: run hsgen → hssort → hsvalidate on a fresh
/// cluster and return `(makespan_us, spec_wasted_us)`. The validator's
/// verdict is checked against the generator's ground truth, so a cell
/// where speculation corrupted output fails the bench outright.
fn run_hs_cell(speculative: bool, skewed: bool, compress: bool) -> Result<(u64, u64)> {
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, 128 * 1024u64);
    config.set(keys::IO_SORT_BYTES, 64 * 1024u64);
    // Full replication for the (small) benchmark input: every node holds
    // a local copy, so a rescue attempt reads its split from its own disk
    // instead of queueing on the straggler's.
    config.set(keys::DFS_REPLICATION, 8u64);
    let mut cluster = if skewed {
        // The library's `skewed` preset activates on chaos-soak timescales
        // (noisy windows at 30–90 s, decay onsets at 10–40 s); this job
        // finishes in a few virtual seconds, so the bench pins its own
        // skew at bench scale: a statically throttled VM-tier node plus a
        // node that decays to 40% over the first two seconds of the run.
        // Both models throttle CPU and disk only — the contended-hypervisor
        // shape — so a rescue attempt elsewhere can still fetch the
        // straggler's replica at full NIC speed.
        let contended = |bp: u32| PerfProfile {
            cpu_mult: bp,
            disk_mult: bp,
            nic_mult: PerfProfile::NOMINAL_BP,
        };
        let spec = HeterogeneousClusterSpec::new(ClusterSpec::course_hadoop(8))
            .with_model(NodeId(1), DegradeModel::Static(contended(2_500)))
            .with_model(
                NodeId(2),
                DegradeModel::Decay {
                    from: SimTime::ZERO,
                    ramp: SimDuration::from_secs(2),
                    floor: contended(4_000),
                },
            );
        MrCluster::new_heterogeneous(&spec, config)?
    } else {
        MrCluster::new(ClusterSpec::course_hadoop(8), config)?
    };
    let (corpus, truth) = hsgen(SEED, WORDS);
    stage(&mut cluster, "/in/hs.txt", &corpus)?;

    // Bench-scale speculation knobs: a third of the maps sit on the
    // throttled tier and can straggle at once, so the cap must cover them
    // all, and the progress heartbeat must tick well within the ~1 s the
    // healthy tasks take (the 3 s default would never observe progress
    // here). Both are ordinary `mapred.speculative.*` settings.
    let tune = |mut conf: JobConf| {
        conf = conf.speculative(speculative);
        conf.spec_cap_pct = 30;
        conf.spec_heartbeat = SimDuration::from_millis(200);
        conf.compress_map_output = compress;
        conf
    };
    let mut sort = hssort("/in/hs.txt", "/out/hssort", &corpus, 4);
    sort.conf = tune(sort.conf);
    let sort_report = cluster.run_job(&sort)?;
    let mut validate = hsvalidate("/out/hssort", "/out/hsvalidate");
    validate.conf = tune(validate.conf);
    let val_report = cluster.run_job(&validate)?;

    let now = cluster.now;
    let mut output = Vec::new();
    for path in &val_report.output_files {
        let read = cluster.dfs.read(&mut cluster.net, now, path, None)?;
        output.extend(String::from_utf8_lossy(&read.value).lines().map(str::to_string));
    }
    let cell = if skewed { "skew" } else { "homo" };
    let verdict = parse_verdict(&output)
        .ok_or_else(|| HlError::Config(format!("tpcxhs {cell}: validator emitted no verdict")))?;
    let (records, crc_sum) = expected_digest(&truth);
    if !verdict.sorted || verdict.records != records || verdict.crc_sum != crc_sum {
        return Err(HlError::Config(format!(
            "tpcxhs {cell} spec={speculative}: validation failed \
             (verdict {verdict:?}, expected {records} records crc {crc_sum})"
        )));
    }

    let makespan = val_report.finished_at.since(sort_report.submitted_at).0;
    let wasted = cluster.metrics_snapshot().counter("jobtracker", "spec.wasted_us");
    Ok((makespan, wasted))
}

/// The 2×2 TPCx-HS ablation, with the expected shape asserted in-binary:
/// speculation must pay for itself on the skewed cluster and stay cheap
/// on the homogeneous one.
fn run_tpcxhs() -> Result<Snapshot> {
    let (homo_spec, homo_wasted) = run_hs_cell(true, false, false)?;
    let (homo_off, _) = run_hs_cell(false, false, false)?;
    let (skew_spec, skew_wasted) = run_hs_cell(true, true, false)?;
    let (skew_off, _) = run_hs_cell(false, true, false)?;
    if skew_spec >= skew_off {
        return Err(HlError::Config(format!(
            "tpcxhs shape gate: speculation must shorten the skewed makespan \
             (spec-on {skew_spec} us >= spec-off {skew_off} us)"
        )));
    }
    if homo_wasted.saturating_mul(20) > homo_spec {
        return Err(HlError::Config(format!(
            "tpcxhs shape gate: homogeneous wasted work {homo_wasted} us exceeds \
             5% of the {homo_spec} us makespan"
        )));
    }
    Ok(Snapshot {
        workload: "tpcxhs",
        metrics: vec![
            ("homo_spec_wall_us", homo_spec),
            ("homo_off_wall_us", homo_off),
            ("homo_spec_wasted_us", homo_wasted),
            ("skew_spec_wall_us", skew_spec),
            ("skew_off_wall_us", skew_off),
            ("skew_spec_wasted_us", skew_wasted),
        ],
    })
}

/// The codec ablation: the same pinned wordcount and a homogeneous,
/// speculation-off TPCx-HS cell, each run with map-output compression off
/// and on. The in-binary shape gates hold the codec to its contract —
/// byte-identical job output, strictly fewer spill and shuffle bytes on
/// the compressible corpus — so the perf-gate band only has to watch for
/// cost drift.
fn run_codec() -> Result<Snapshot> {
    let run_wc = |compress: bool| -> Result<(u64, u64, u64, String)> {
        let mut cluster = pinned_cluster()?;
        let (corpus, _) = CorpusGen::new(SEED).generate(WORDS);
        stage(&mut cluster, "/in/corpus.txt", &corpus)?;
        let mut job = wordcount("/in/corpus.txt", "/out/wc", 4);
        job.conf.compress_map_output = compress;
        let report = cluster.run_job(&job)?;
        let snap = cluster.metrics_snapshot();
        let text = cluster.read_output("/out/wc")?;
        Ok((
            report.elapsed().as_micros(),
            snap.counter("jobtracker", "spill.bytes"),
            snap.counter("jobtracker", "shuffle.bytes"),
            text,
        ))
    };
    let (plain_wall, plain_spill, plain_shuffle, plain_out) = run_wc(false)?;
    let (codec_wall, codec_spill, codec_shuffle, codec_out) = run_wc(true)?;
    if codec_out != plain_out {
        return Err(HlError::Config(
            "codec shape gate: compressed wordcount output differs from plain".into(),
        ));
    }
    if codec_shuffle >= plain_shuffle {
        return Err(HlError::Config(format!(
            "codec shape gate: compressed shuffle must shrink \
             (codec {codec_shuffle} >= plain {plain_shuffle})"
        )));
    }
    if codec_spill >= plain_spill {
        return Err(HlError::Config(format!(
            "codec shape gate: compressed spill must shrink \
             (codec {codec_spill} >= plain {plain_spill})"
        )));
    }
    let (hs_plain, _) = run_hs_cell(false, false, false)?;
    let (hs_codec, _) = run_hs_cell(false, false, true)?;
    Ok(Snapshot {
        workload: "codec",
        metrics: vec![
            ("wc_plain_wall_us", plain_wall),
            ("wc_plain_spill_bytes", plain_spill),
            ("wc_plain_shuffle_bytes", plain_shuffle),
            ("wc_codec_wall_us", codec_wall),
            ("wc_codec_spill_bytes", codec_spill),
            ("wc_codec_shuffle_bytes", codec_shuffle),
            ("hs_plain_wall_us", hs_plain),
            ("hs_codec_wall_us", hs_codec),
        ],
    })
}

/// Extract `"metric": N` from the named workload's object in the baseline
/// JSON. The format is the one this binary writes — a flat object per
/// workload — so a scan to the workload key and then to the metric key
/// inside its braces is a complete parse.
fn extract(json: &str, workload: &str, metric: &str) -> Option<u64> {
    let start = json.find(&format!("\"{workload}\""))?;
    let body = &json[start..];
    let open = body.find('{')?;
    let close = body[open..].find('}')? + open;
    let section = &body[open..close];
    let at = section.find(&format!("\"{metric}\""))?;
    let rest = &section[at..];
    let colon = rest.find(':')?;
    let digits: String = rest[colon + 1..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Compare a fresh snapshot against the baseline; returns the list of
/// human-readable regression lines (empty = gate passes).
fn check(snapshots: &[Snapshot], baseline: &str) -> Vec<String> {
    let mut regressions = Vec::new();
    for s in snapshots {
        for &(metric, measured) in &s.metrics {
            let Some(base) = extract(baseline, s.workload, metric) else {
                regressions.push(format!("{}/{metric}: missing from baseline", s.workload));
                continue;
            };
            // Tolerance band: fail only when measured > base * (1 + tol).
            let ceiling = base.saturating_mul(100 + TOLERANCE_PCT) / 100;
            if measured > ceiling {
                regressions.push(format!(
                    "{}/{metric}: {measured} exceeds baseline {base} by more than {TOLERANCE_PCT}%",
                    s.workload
                ));
            } else if measured > base {
                eprintln!(
                    "note: {}/{metric} drifted {measured} vs {base} (within {TOLERANCE_PCT}%)",
                    s.workload
                );
            }
        }
    }
    regressions
}

fn combined_json(snapshots: &[Snapshot]) -> String {
    let mut out = String::from("{\n");
    for (i, s) in snapshots.iter().enumerate() {
        let body: Vec<String> =
            s.metrics.iter().map(|(name, value)| format!("\"{name}\": {value}")).collect();
        out.push_str(&format!(
            "  \"{}\": {{ {} }}{}\n",
            s.workload,
            body.join(", "),
            if i + 1 < snapshots.len() { "," } else { "" }
        ));
    }
    out.push_str("}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check_path: Option<String> = None;
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => match it.next() {
                Some(p) => check_path = Some(p.clone()),
                None => {
                    eprintln!("--check needs a baseline path");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => write_baseline = true,
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: bench-snapshot [--baseline] [--check BENCH_baseline.json]");
                return ExitCode::from(2);
            }
        }
    }

    let mut snapshots = Vec::new();
    for workload in ["wordcount", "terasort", "sched", "tpcxhs", "codec"] {
        let result = match workload {
            "sched" => run_sched(),
            "tpcxhs" => run_tpcxhs(),
            "codec" => run_codec(),
            other => run_workload(other),
        };
        match result {
            Ok(s) => {
                println!("{}", s.render());
                snapshots.push(s);
            }
            Err(e) => {
                eprintln!("workload {workload} failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    for s in &snapshots {
        let path = format!("BENCH_{}.json", s.workload);
        if let Err(e) = std::fs::write(&path, s.to_json()) {
            eprintln!("writing {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if write_baseline {
        if let Err(e) = std::fs::write("BENCH_baseline.json", combined_json(&snapshots)) {
            eprintln!("writing BENCH_baseline.json: {e}");
            return ExitCode::from(2);
        }
        println!("wrote BENCH_baseline.json");
    }

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("reading {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let regressions = check(&snapshots, &baseline);
        if !regressions.is_empty() {
            for r in &regressions {
                eprintln!("perf-gate: {r}");
            }
            return ExitCode::FAILURE;
        }
        println!("perf-gate: all metrics within {TOLERANCE_PCT}% of {path}");
    }
    ExitCode::SUCCESS
}
