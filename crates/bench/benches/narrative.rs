//! Criterion benches for the narrative experiments N1–N8.
//!
//! Every claim in DESIGN.md's experiment index gets a bench that times its
//! Quick-scale regeneration and prints the artifact once. The heavier
//! drills (N6, N7) use small sample counts.

use criterion::{criterion_group, criterion_main, Criterion};
use hl_core::experiments::{jummp, n1, n2, n3, n4, n5, n6, n7, n8, platforms, Scale};

macro_rules! narrative_bench {
    ($fn_name:ident, $module:ident, $bench_name:literal, $samples:expr) => {
        fn $fn_name(c: &mut Criterion) {
            println!("{}", $module::run(Scale::Quick));
            let mut group = c.benchmark_group("narrative");
            group.sample_size($samples);
            group.bench_function($bench_name, |b| {
                b.iter(|| std::hint::black_box($module::run(Scale::Quick)))
            });
            group.finish();
        }
    };
}

narrative_bench!(bench_n1, n1, "n1_combiner_tradeoff", 10);
narrative_bench!(bench_n2, n2, "n2_monoid_variants", 10);
narrative_bench!(bench_n3, n3, "n3_sidefile_access", 10);
narrative_bench!(bench_n4, n4, "n4_serial_vs_cluster", 10);
narrative_bench!(bench_n5, n5, "n5_staging_times", 10);
narrative_bench!(bench_n6, n6, "n6_meltdown_recovery", 10);
narrative_bench!(bench_n7, n7, "n7_myhadoop_provisioning", 10);
narrative_bench!(bench_n8, n8, "n8_assignment1_runtimes", 10);
narrative_bench!(bench_platforms, platforms, "platform_evolution", 10);
narrative_bench!(bench_jummp, jummp, "jummp_maneuvering", 10);

criterion_group!(
    benches,
    bench_n1,
    bench_n2,
    bench_n3,
    bench_n4,
    bench_n5,
    bench_n6,
    bench_n7,
    bench_n8,
    bench_platforms,
    bench_jummp
);
criterion_main!(benches);
