//! Criterion benches for the paper's two figures.
//!
//! Each bench times the Quick-scale regeneration of its artifact (the
//! figures are virtual-time experiments; the wall time measured here is
//! the simulator's own cost, which keeps the harness honest about
//! overhead). `cargo bench -p hl-bench --bench figures` also prints the
//! artifact once, so the bench log doubles as a results record.

use criterion::{criterion_group, criterion_main, Criterion};
use hl_core::experiments::{fig1, fig2, Scale};

fn bench_fig1(c: &mut Criterion) {
    println!("{}", fig1::run(Scale::Quick));
    c.bench_function("fig1_architecture_scan", |b| {
        b.iter(|| std::hint::black_box(fig1::run(Scale::Quick)))
    });
}

fn bench_fig2(c: &mut Criterion) {
    println!("{}", fig2::run(Scale::Quick));
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("fig2_locality_ablation", |b| {
        b.iter(|| std::hint::black_box(fig2::run(Scale::Quick)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1, bench_fig2);
criterion_main!(benches);
