//! Criterion benches for Tables I–V.
//!
//! Table I–IV regeneration is the survey-synthesis + aggregation pipeline;
//! Table V is the curriculum-map rendering. Each bench prints its artifact
//! once so the bench log records the regenerated tables.

use criterion::{criterion_group, criterion_main, Criterion};
use hl_core::course::CourseModule;
use hl_core::experiments::{tables, Scale};
use hl_datagen::survey;

fn bench_tables_1_to_4(c: &mut Criterion) {
    println!("{}", tables::run(Scale::Quick));
    c.bench_function("tables_1_to_4_survey_pipeline", |b| {
        b.iter(|| std::hint::black_box(tables::run(Scale::Quick)))
    });
    c.bench_function("survey_form_synthesis", |b| {
        b.iter(|| std::hint::black_box(survey::generate(2014)))
    });
}

fn bench_table5(c: &mut Criterion) {
    println!("{}", CourseModule);
    c.bench_function("table5_curriculum_render", |b| {
        b.iter(|| std::hint::black_box(CourseModule.to_string()))
    });
}

criterion_group!(benches, bench_tables_1_to_4, bench_table5);
criterion_main!(benches);
