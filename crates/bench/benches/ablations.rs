//! Ablation benches for the design choices DESIGN.md calls out:
//! Pairs vs Stripes, speculative execution on/off under a straggler,
//! replication-factor staging cost, and block-size sweep for job time.
//! Each prints its comparison table once, then times the cheapest arm so
//! `cargo bench` records both the ablation data and harness overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use hl_cluster::node::ClusterSpec;
use hl_common::config::{keys, Configuration};
use hl_common::counters::TaskCounter;
use hl_common::prelude::*;
use hl_common::units::ByteSize;
use hl_datagen::corpus::CorpusGen;
use hl_dfs::client::Dfs;
use hl_mapreduce::api::SideFiles;
use hl_mapreduce::engine::MrCluster;
use hl_mapreduce::local::LocalRunner;
use hl_workloads::{cooccurrence, wordcount};

fn cluster_with(block: u64) -> MrCluster {
    let mut config = Configuration::with_defaults();
    config.set(keys::DFS_BLOCK_SIZE, block);
    MrCluster::new(ClusterSpec::course_hadoop(8), config).unwrap()
}

fn stage(c: &mut MrCluster, path: &str, text: &str) {
    c.dfs.namenode.mkdirs("/in").unwrap();
    let t = c.now;
    let put = c.dfs.put(&mut c.net, t, path, text.as_bytes(), None).unwrap();
    c.now = put.completed_at;
}

fn ablation_pairs_vs_stripes(c: &mut Criterion) {
    let (text, _) = CorpusGen::new(77).with_vocab(400).generate(30_000);
    let inputs = vec![("c.txt".to_string(), text.into_bytes())];
    let runner = LocalRunner::serial();
    let p = runner.run(&cooccurrence::pairs("/i", "/o", 2), &inputs, &SideFiles::new()).unwrap();
    let s = runner.run(&cooccurrence::stripes("/i", "/o", 2), &inputs, &SideFiles::new()).unwrap();
    println!("ablation: pairs vs stripes (30k-word Zipf corpus)");
    println!(
        "  pairs:   {:>9} map records  {:>10} map bytes  {}",
        p.counters.task(TaskCounter::MapOutputRecords),
        p.counters.task(TaskCounter::MapOutputBytes),
        p.virtual_time
    );
    println!(
        "  stripes: {:>9} map records  {:>10} map bytes  {}",
        s.counters.task(TaskCounter::MapOutputRecords),
        s.counters.task(TaskCounter::MapOutputBytes),
        s.virtual_time
    );
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("pairs_vs_stripes_stripes_arm", |b| {
        b.iter(|| {
            std::hint::black_box(
                runner
                    .run(&cooccurrence::stripes("/i", "/o", 2), &inputs, &SideFiles::new())
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn ablation_speculation(c: &mut Criterion) {
    let (text, _) = CorpusGen::new(5).with_vocab(300).generate(60_000);
    let run_with = |speculative: bool| {
        // Two map slots per node so the straggler node is guaranteed work.
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_BLOCK_SIZE, 16 * 1024u64);
        config.set(keys::MAPRED_MAP_SLOTS, 2);
        let mut cl = MrCluster::new(ClusterSpec::course_hadoop(8), config).unwrap();
        cl.set_slow_node(NodeId(7), 40.0);
        stage(&mut cl, "/in/c.txt", &text);
        let mut job = wordcount::wordcount("/in/c.txt", "/out", 2);
        job.conf.speculative = speculative;
        cl.run_job(&job).unwrap().elapsed()
    };
    let without = run_with(false);
    let with = run_with(true);
    println!("ablation: speculative execution under a 40x straggler");
    println!("  speculation off: {without}");
    println!("  speculation on:  {with}");
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("speculation_on_arm", |b| b.iter(|| std::hint::black_box(run_with(true))));
    group.finish();
}

fn ablation_replication_staging(c: &mut Criterion) {
    println!("ablation: staging 4 GiB at replication 1/2/3 (8-node cluster)");
    let run_with = |replication: u32| {
        let spec = ClusterSpec::course_hadoop(8);
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_REPLICATION, replication);
        let mut dfs = Dfs::format(&config, &spec).unwrap();
        let mut net = hl_cluster::network::ClusterNet::new(&spec);
        dfs.namenode.mkdirs("/d").unwrap();
        let put =
            dfs.put_synthetic(&mut net, SimTime::ZERO, "/d/set", 4 * ByteSize::GIB, None).unwrap();
        put.completed_at.since(SimTime::ZERO)
    };
    for r in [1u32, 2, 3] {
        println!("  replication {r}: {}", run_with(r));
    }
    c.bench_function("ablation/staging_repl3_arm", |b| {
        b.iter(|| std::hint::black_box(run_with(3)))
    });
}

fn ablation_block_size(c: &mut Criterion) {
    let (text, _) = CorpusGen::new(6).with_vocab(300).generate(80_000);
    println!("ablation: block size vs job time (same data, 8 nodes)");
    let run_with = |block: u64| {
        let mut cl = cluster_with(block);
        stage(&mut cl, "/in/c.txt", &text);
        cl.run_job(&wordcount::wordcount_combiner("/in/c.txt", "/out", 2)).unwrap().elapsed()
    };
    for block in [4 * ByteSize::KIB, 32 * ByteSize::KIB, 256 * ByteSize::KIB] {
        println!("  {:>10}: {}", ByteSize::display(block).to_string(), run_with(block));
    }
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("block_size_256k_arm", |b| {
        b.iter(|| std::hint::black_box(run_with(256 * ByteSize::KIB)))
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_pairs_vs_stripes,
    ablation_speculation,
    ablation_replication_staging,
    ablation_block_size
);
criterion_main!(benches);
