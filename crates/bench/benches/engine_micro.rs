//! Engine microbenches — real wall-time throughput of the hot paths the
//! HPC guides care about: raw-byte sort/spill, k-way merge, CRC32,
//! line-record reading, partition hashing, the DES event queue, and the
//! rayon-parallel LocalJobRunner's scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hl_cluster::event::EventQueue;
use hl_common::checksum::{ChunkedChecksum, Crc32};
use hl_common::counters::Counters;
use hl_common::hash::default_partition;
use hl_common::keys::SortableKey;
use hl_common::SimTime;
use hl_datagen::corpus::CorpusGen;
use hl_mapreduce::api::{NoCombiner, SideFiles};
use hl_mapreduce::local::LocalRunner;
use hl_mapreduce::merge::{merge_groups, merge_runs};
use hl_mapreduce::sortbuf::{SortBuffer, SortedRun};
use hl_mapreduce::split::LineReader;
use hl_workloads::wordcount;

fn bench_crc32(c: &mut Criterion) {
    let data = vec![0xA5u8; 1 << 20];
    let mut group = c.benchmark_group("crc32");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("one_shot_1MiB", |b| {
        b.iter(|| std::hint::black_box(Crc32::checksum(&data)))
    });
    group.bench_function("chunked_512B_1MiB", |b| {
        b.iter(|| std::hint::black_box(ChunkedChecksum::compute(&data, 512)))
    });
    group.finish();
}

fn bench_sortbuf(c: &mut Criterion) {
    let (text, _) = CorpusGen::new(1).with_vocab(5_000).generate(50_000);
    let words: Vec<String> = text.split_whitespace().map(str::to_string).collect();
    let mut group = c.benchmark_group("sortbuf");
    group.throughput(Throughput::Elements(words.len() as u64));
    group.bench_function("collect_sort_spill_50k", |b| {
        b.iter(|| {
            let mut counters = Counters::new();
            let mut buf: SortBuffer<String, u64> = SortBuffer::new(4, 1 << 20);
            for w in &words {
                buf.collect::<NoCombiner<String, u64>>(w, &1, None, &mut counters);
            }
            std::hint::black_box(buf.finish::<NoCombiner<String, u64>>(None, &mut counters))
        })
    });
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let runs: Vec<SortedRun> = (0..8u64)
        .map(|r| {
            SortedRun::from_pairs(
                (0..10_000u64)
                    .map(|i| {
                        let key = format!("key{:06}", (i * 7 + r) % 20_000);
                        (key.ordered_bytes(), i.to_be_bytes().to_vec())
                    })
                    .collect(),
            )
        })
        .collect();
    let mut group = c.benchmark_group("merge");
    group.throughput(Throughput::Elements(80_000));
    // Consume the streaming group merge the way every reduce path does:
    // iterate (key, values) groups over borrowed slices.
    group.bench_function("kway_8x10k", |b| {
        b.iter(|| {
            let mut groups = 0u64;
            let mut bytes = 0u64;
            for (k, vs) in merge_groups(&runs) {
                groups += 1;
                bytes += k.len() as u64;
                for v in &vs {
                    bytes += v.len() as u64;
                }
            }
            std::hint::black_box((groups, bytes))
        })
    });
    // The owned-output collector kept for small runners and tests.
    group.bench_function("kway_8x10k_collect_owned", |b| {
        b.iter(|| std::hint::black_box(merge_runs(&runs)))
    });
    group.finish();
}

fn bench_line_reader(c: &mut Criterion) {
    let (text, _) = CorpusGen::new(2).generate(100_000);
    let bytes = text.as_bytes();
    let mut group = c.benchmark_group("line_reader");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("split_scan", |b| {
        b.iter(|| {
            let reader = LineReader::new(None, bytes, bytes.len(), 0);
            std::hint::black_box(reader.count())
        })
    });
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let keys: Vec<Vec<u8>> = (0..10_000u32).map(|i| format!("key-{i}").into_bytes()).collect();
    c.bench_function("partition_hash_10k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for k in &keys {
                acc ^= default_partition(k, 16);
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_100k_schedule_pop", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..100_000u64 {
                q.schedule_at(SimTime((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc ^= e;
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_local_runner_scaling(c: &mut Criterion) {
    let (text, _) = CorpusGen::new(3).with_vocab(3_000).generate(200_000);
    let inputs = vec![("corpus.txt".to_string(), text.into_bytes())];
    let job = wordcount::wordcount_combiner("/i", "/o", 2);
    let mut group = c.benchmark_group("local_runner_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let mut runner = LocalRunner::parallel(t);
            runner.split_bytes = 128 * 1024;
            b.iter(|| std::hint::black_box(runner.run(&job, &inputs, &SideFiles::new()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_crc32,
    bench_sortbuf,
    bench_merge,
    bench_line_reader,
    bench_partition,
    bench_event_queue,
    bench_local_runner_scaling
);
criterion_main!(benches);
