//! # hl-provision
//!
//! The myHadoop analog: "the modifications on the myHadoop scripts allow
//! instructors to take advantage of a centralized shared computing
//! resource to allow students to set up individual Hadoop clusters."
//!
//! A [`session::Session`] walks the exact step sequence the course's
//! submission script encoded — reserve nodes, configure paths, format the
//! NameNode, start daemons (bind their ports), health-check, run the job,
//! export output, tear down — over the shared [`campus::Campus`] state
//! (batch scheduler + port registry). Every failure mode Section II-B
//! narrates is reproducible: wrong `HADOOP_HOME`/data/log paths, ghost
//! daemons blocking ports, the 15-minute cleanup wait, walltime expiry,
//! and the unsupported persistent-storage mode (Palmetto's parallel store
//! had no file locking).

#![warn(missing_docs)]

pub mod campus;
pub mod session;

pub use campus::Campus;
pub use session::{Session, SessionOutcome, SessionSpec};
