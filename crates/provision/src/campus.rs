//! Shared campus state: the batch scheduler and the cluster-wide port
//! registry, plus the cleanup cron that sweeps ghost daemons.

use hl_cluster::ports::PortRegistry;
use hl_cluster::scheduler::BatchScheduler;
use hl_cluster::trace::EventLog;
use hl_common::prelude::*;

/// The shared supercomputer, as one student's myHadoop session sees it.
#[derive(Debug)]
pub struct Campus {
    /// The PBS-like scheduler.
    pub scheduler: BatchScheduler,
    /// Port bindings across all nodes.
    pub ports: PortRegistry,
    /// Shared trace.
    pub log: EventLog,
    /// Campus-wide virtual clock.
    pub now: SimTime,
}

impl Campus {
    /// A campus machine with `nodes` schedulable nodes.
    pub fn new(nodes: usize) -> Self {
        Campus {
            scheduler: BatchScheduler::new(nodes),
            ports: PortRegistry::new(),
            log: EventLog::new(),
            now: SimTime::ZERO,
        }
    }

    /// Advance the clock, firing the cleanup cron when due. Returns how
    /// many ghost bindings the cron swept.
    pub fn advance_to(&mut self, t: SimTime) -> usize {
        let mut swept = 0;
        if t > self.now {
            self.now = t;
        }
        if self.scheduler.cleanup_due(self.now) {
            swept = self.ports.cleanup_all();
            if swept > 0 {
                self.log.log(self.now, "cleanup-cron", format!("swept {swept} orphaned daemon(s)"));
            }
        }
        swept
    }

    /// Time until the next cleanup pass at or after `t` (for students
    /// deciding whether to wait out a ghost).
    pub fn next_cleanup_after(&self, t: SimTime) -> SimTime {
        // The cron runs on multiples of the period from the last firing;
        // conservatively, the worst case is one full period.
        t + self.scheduler.cleanup_period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleanup_cron_sweeps_ghosts_on_schedule() {
        let mut campus = Campus::new(4);
        campus.ports.bind(SimTime::ZERO, NodeId(0), 50060, "alice").unwrap();
        campus.ports.orphan_owner("alice");
        // Before the period: nothing.
        assert_eq!(campus.advance_to(SimTime::ZERO + SimDuration::from_mins(5)), 0);
        assert_eq!(campus.ports.ghosts_on(NodeId(0)), 1);
        // At 15 minutes: swept.
        assert_eq!(campus.advance_to(SimTime::ZERO + SimDuration::from_mins(15)), 1);
        assert_eq!(campus.ports.ghosts_on(NodeId(0)), 0);
        assert_eq!(campus.log.grep("swept").count(), 1);
    }

    #[test]
    fn clock_is_monotone() {
        let mut campus = Campus::new(1);
        campus.advance_to(SimTime(100));
        campus.advance_to(SimTime(50));
        assert_eq!(campus.now, SimTime(100));
    }
}
