//! One student's myHadoop session, step by step.
//!
//! The Fall-2013 submission script: reserve nodes → source the environment
//! → write the site configuration (the step students got wrong: "incorrect
//! paths to the Hadoop MapReduce installation directory, data nodes' local
//! directory, and log directory") → format → start daemons (bind ports —
//! where ghost daemons bite) → `dfsadmin`-style health check → load data →
//! run the example job → export output to the home directory → stop
//! daemons. Exiting without the final step orphans the daemons.

use hl_cluster::ports::well_known;
use hl_cluster::scheduler::{Priority, ReservationRequest};
use hl_common::prelude::*;

use crate::campus::Campus;

/// What a student does (and gets wrong), plus the cluster shape they ask
/// for.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// User name (port-registry owner, scheduler user).
    pub user: String,
    /// Nodes requested ("changes to the Hadoop platform's physical
    /// configurations (number of nodes, ...) on the scheduler's submission
    /// script").
    pub nodes: usize,
    /// Requested walltime.
    pub walltime: SimDuration,
    /// The classic path misconfiguration: first daemon start fails, the
    /// student debugs and fixes it.
    pub misconfigured_paths: bool,
    /// Time the student needs to find and fix the path error.
    pub debug_time: SimDuration,
    /// Exits without `stop-all.sh`, orphaning the daemons.
    pub forgets_teardown: bool,
    /// Whether they know how to kill their *own* ghosts by hand (versus
    /// waiting out the cleanup cron).
    pub kills_own_ghosts: bool,
    /// Asks for myHadoop's persistent-HDFS mode (unsupported on the
    /// course machine: no file locking on the parallel store).
    pub persistent_mode: bool,
    /// Also provision HBase daemons (the paper's future work: "developing
    /// the myHadoop scripts to continue to support these new components of
    /// the Hadoop ecosystem").
    pub with_hbase: bool,
    /// "The students can also insert a sleep command into the submission
    /// script and turn the dynamic Hadoop platform into an interactive
    /// platform for the duration of the sleep command." When the sleep
    /// overruns the walltime, the scheduler kills the job script and the
    /// daemons are orphaned — instant ghosts.
    pub interactive_sleep: Option<SimDuration>,
}

impl SessionSpec {
    /// A well-behaved student with the course-standard 8-node request.
    pub fn diligent(user: &str) -> Self {
        SessionSpec {
            user: user.to_string(),
            nodes: 8,
            walltime: SimDuration::from_hours(2),
            misconfigured_paths: false,
            debug_time: SimDuration::from_mins(25),
            forgets_teardown: false,
            kills_own_ghosts: true,
            persistent_mode: false,
            with_hbase: false,
            interactive_sleep: None,
        }
    }
}

/// Where a session ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOutcome {
    /// Cluster came up and the job ran; contains the time from submission
    /// to a usable cluster and to full completion.
    Success {
        /// Submission → all daemons up and healthy.
        cluster_up: SimDuration,
        /// Submission → output exported.
        total: SimDuration,
    },
    /// The scheduler never placed the reservation within the observation
    /// window.
    NeverScheduled,
    /// Ports were blocked by *someone else's* ghosts and the walltime ran
    /// out waiting.
    BlockedByGhosts {
        /// Whose ghost blocked the first conflicting port.
        ghost_owner: String,
    },
    /// Asked for the unsupported persistent mode.
    PersistentModeUnsupported,
}

/// Per-step durations of the myHadoop pipeline (course-calibrated).
#[derive(Debug, Clone)]
pub struct StepTimes {
    /// Environment setup + writing site configs.
    pub configure: SimDuration,
    /// `hadoop namenode -format`.
    pub format: SimDuration,
    /// Daemon start per node (staggered ssh loop).
    pub start_per_node: SimDuration,
    /// Health check (`dfsadmin -report` until all DataNodes report).
    pub health_check: SimDuration,
    /// Staging the lab dataset into HDFS.
    pub load_data: SimDuration,
    /// The example MapReduce job.
    pub run_job: SimDuration,
    /// Exporting output back to the home directory.
    pub export: SimDuration,
    /// `stop-all.sh`.
    pub teardown: SimDuration,
}

impl Default for StepTimes {
    fn default() -> Self {
        StepTimes {
            configure: SimDuration::from_mins(3),
            format: SimDuration::from_secs(30),
            start_per_node: SimDuration::from_secs(5),
            health_check: SimDuration::from_secs(45),
            load_data: SimDuration::from_mins(4),
            run_job: SimDuration::from_mins(6),
            export: SimDuration::from_mins(1),
            teardown: SimDuration::from_secs(20),
        }
    }
}

/// A runnable session.
#[derive(Debug, Clone)]
pub struct Session {
    /// The student's behaviour and request.
    pub spec: SessionSpec,
    /// Step cost model.
    pub times: StepTimes,
}

impl Session {
    /// Session with default step times.
    pub fn new(spec: SessionSpec) -> Self {
        Session { spec, times: StepTimes::default() }
    }

    /// Run the session against the shared campus, starting at
    /// `campus.now`. Advances the campus clock.
    pub fn run(&self, campus: &mut Campus) -> SessionOutcome {
        let spec = &self.spec;
        let submitted = campus.now;
        let log = |campus: &mut Campus, msg: String| {
            let now = campus.now;
            campus.log.log(now, &format!("myhadoop/{}", spec.user), msg);
        };

        if spec.persistent_mode {
            log(campus, "ERROR: persistent HDFS requires file locking; not supported here".into());
            return SessionOutcome::PersistentModeUnsupported;
        }

        // 1. Reserve nodes.
        let id = campus.scheduler.submit(
            campus.now,
            ReservationRequest {
                user: spec.user.clone(),
                nodes: spec.nodes,
                walltime: spec.walltime,
                priority: Priority::Student,
            },
        );
        // Poll the scheduler forward (1-minute ticks, up to 8 hours).
        let mut nodes: Option<Vec<NodeId>> = None;
        for _ in 0..8 * 60 {
            let t = campus.now + SimDuration::from_mins(1);
            campus.advance_to(t);
            let outcome = campus.scheduler.tick(campus.now);
            if let Some(res) = outcome.started.iter().find(|r| r.id == id) {
                nodes = Some(res.nodes.clone());
                break;
            }
            if campus.scheduler.running(id).is_some() {
                nodes = campus.scheduler.running(id).map(|r| r.nodes.clone());
                break;
            }
        }
        let Some(nodes) = nodes else {
            return SessionOutcome::NeverScheduled;
        };
        log(campus, format!("reservation started on {} node(s)", nodes.len()));
        let deadline = campus.now + spec.walltime;

        // 2. Configure (maybe wrong), 3. format.
        let mut t = campus.now + self.times.configure + self.times.format;
        if spec.misconfigured_paths {
            // The bad path only surfaces when daemons try to start.
            t += self.times.start_per_node;
            campus.advance_to(t);
            log(campus, "ERROR: could not find hadoop installation / data dir (bad path)".into());
            t += spec.debug_time + self.times.configure + self.times.format;
        }
        campus.advance_to(t);

        // 4. Start daemons: bind every node's DataNode/TaskTracker ports,
        // plus the head node's NameNode/JobTracker ports.
        let head = nodes[0];
        let mut to_bind: Vec<(NodeId, u16)> = vec![
            (head, well_known::NAMENODE_RPC),
            (head, well_known::NAMENODE_HTTP),
            (head, well_known::JOBTRACKER_RPC),
            (head, well_known::JOBTRACKER_HTTP),
        ];
        for &n in &nodes {
            to_bind.push((n, well_known::DATANODE_DATA));
            to_bind.push((n, well_known::TASKTRACKER_HTTP));
        }
        if spec.with_hbase {
            to_bind.push((head, well_known::HBASE_MASTER));
            for &n in &nodes {
                to_bind.push((n, well_known::HBASE_REGIONSERVER));
            }
        }
        let mut bound: Vec<(NodeId, u16)> = Vec::new();
        for (node, port) in to_bind {
            t = campus.now + self.times.start_per_node / nodes.len() as u64;
            campus.advance_to(t);
            loop {
                match campus.ports.bind(campus.now, node, port, &spec.user) {
                    Ok(()) => {
                        bound.push((node, port));
                        break;
                    }
                    Err(_) => {
                        let (owner, alive) = campus
                            .ports
                            .holder(node, port)
                            .map(|(o, a)| (o.to_string(), a))
                            .unwrap_or_default();
                        log(
                            campus,
                            format!("Address already in use: {node}:{port} (held by {owner})"),
                        );
                        if owner == spec.user
                            && !alive
                            && spec.kills_own_ghosts
                            && campus.ports.kill_own_ghost(node, port, &spec.user).is_ok()
                        {
                            // Killed our own orphan; retry immediately. A
                            // kill refusal (the binding changed under us)
                            // falls through to the cleanup-cron wait below.
                            log(campus, format!("killed own ghost daemon on {node}:{port}"));
                            continue;
                        }
                        // Someone else's daemon (or we don't know how):
                        // wait for the cleanup cron, unless walltime runs
                        // out first.
                        let wake = campus.next_cleanup_after(campus.now);
                        if wake >= deadline {
                            // Release what we bound; the reservation dies.
                            campus.ports.release_owner(&spec.user);
                            campus.scheduler.release(id);
                            campus.advance_to(deadline);
                            return SessionOutcome::BlockedByGhosts { ghost_owner: owner };
                        }
                        campus.advance_to(wake);
                        if campus.ports.holder(node, port).is_some() {
                            // Cron didn't clear it (live foreign daemon):
                            // hopeless within this reservation.
                            campus.ports.release_owner(&spec.user);
                            campus.scheduler.release(id);
                            return SessionOutcome::BlockedByGhosts { ghost_owner: owner };
                        }
                    }
                }
            }
        }

        // 5. Health check → cluster usable.
        let t = campus.now + self.times.health_check;
        campus.advance_to(t);
        let cluster_up = campus.now.since(submitted);
        log(campus, format!("cluster healthy after {cluster_up}"));

        // 6–8. Load data, run job, export.
        let t = campus.now + self.times.load_data + self.times.run_job + self.times.export;
        campus.advance_to(t);

        // 8.5. Optional interactive sleep ("turn the dynamic Hadoop
        // platform into an interactive platform").
        if let Some(sleep) = spec.interactive_sleep {
            let wake = campus.now + sleep;
            if wake >= deadline {
                // Walltime kills the job script mid-sleep: no teardown ran,
                // daemons orphaned on the spot.
                campus.advance_to(deadline);
                campus.ports.orphan_owner(&spec.user);
                campus.scheduler.release(id);
                log(campus, "walltime expired during interactive sleep: daemons orphaned".into());
                let total = campus.now.since(submitted);
                return SessionOutcome::Success { cluster_up, total };
            }
            campus.advance_to(wake);
            log(campus, format!("interactive session for {sleep}"));
        }

        // 9. Teardown — or not.
        if spec.forgets_teardown {
            campus.ports.orphan_owner(&spec.user);
            log(campus, "session ended WITHOUT stop-all.sh: daemons orphaned".into());
        } else {
            let t = campus.now + self.times.teardown;
            campus.advance_to(t);
            campus.ports.release_owner(&spec.user);
            log(campus, "stop-all.sh completed; ports released".into());
        }
        campus.scheduler.release(id);
        let total = campus.now.since(submitted);
        SessionOutcome::Success { cluster_up, total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_session_succeeds_quickly() {
        let mut campus = Campus::new(16);
        let outcome = Session::new(SessionSpec::diligent("alice")).run(&mut campus);
        match outcome {
            SessionOutcome::Success { cluster_up, total } => {
                // Paper Table II: setup ~"30 minutes to 2 hours" bucket, most
                // within the in-class lab; our diligent baseline ~5-10 min.
                assert!(cluster_up < SimDuration::from_mins(15), "{cluster_up}");
                assert!(total < SimDuration::from_mins(30), "{total}");
            }
            other => panic!("{other:?}"),
        }
        assert!(campus.ports.is_empty(), "clean teardown releases everything");
    }

    #[test]
    fn misconfigured_paths_cost_debug_time() {
        let mut campus = Campus::new(16);
        let clean = Session::new(SessionSpec::diligent("a")).run(&mut campus);
        let mut spec = SessionSpec::diligent("b");
        spec.misconfigured_paths = true;
        let messy = Session::new(spec).run(&mut campus);
        let (
            SessionOutcome::Success { cluster_up: fast, .. },
            SessionOutcome::Success { cluster_up: slow, .. },
        ) = (clean, messy)
        else {
            panic!("both should succeed");
        };
        assert!(slow > fast + SimDuration::from_mins(20), "{slow} vs {fast}");
    }

    #[test]
    fn own_ghosts_can_be_killed_by_hand() {
        let mut campus = Campus::new(8);
        // Alice runs and forgets teardown.
        let mut spec = SessionSpec::diligent("alice");
        spec.forgets_teardown = true;
        Session::new(spec).run(&mut campus);
        assert!(!campus.ports.is_empty());
        // Alice comes back (same nodes — the only 8); she can kill her own
        // ghosts and still succeed without waiting for the cron.
        let spec2 = SessionSpec::diligent("alice");
        let before = campus.now;
        let outcome = Session::new(spec2).run(&mut campus);
        assert!(matches!(outcome, SessionOutcome::Success { .. }), "{outcome:?}");
        assert!(campus.log.grep("killed own ghost").count() > 0);
        let _ = before;
    }

    #[test]
    fn foreign_ghosts_force_a_cleanup_wait() {
        let mut campus = Campus::new(8);
        let mut spec = SessionSpec::diligent("alice");
        spec.forgets_teardown = true;
        Session::new(spec).run(&mut campus);
        // Bob lands on the same nodes right after; he cannot kill Alice's
        // ghosts, so he waits for the cron (≤15 min) and then proceeds.
        let submitted = campus.now;
        let outcome = Session::new(SessionSpec::diligent("bob")).run(&mut campus);
        match outcome {
            SessionOutcome::Success { cluster_up, .. } => {
                assert!(
                    cluster_up > SimDuration::from_mins(5),
                    "ghost wait must show up: {cluster_up}"
                );
            }
            other => panic!("{other:?}"),
        }
        let _ = submitted;
        assert!(campus.log.grep("Address already in use").count() > 0);
    }

    #[test]
    fn interactive_sleep_extends_the_session() {
        let mut campus = Campus::new(8);
        let mut spec = SessionSpec::diligent("alice");
        spec.interactive_sleep = Some(SimDuration::from_mins(30));
        let outcome = Session::new(spec).run(&mut campus);
        let SessionOutcome::Success { total, .. } = outcome else { panic!("{outcome:?}") };
        assert!(total > SimDuration::from_mins(30));
        assert!(campus.ports.is_empty(), "clean teardown after the sleep");
        assert!(campus.log.grep("interactive session").count() > 0);
    }

    #[test]
    fn oversleeping_walltime_orphans_daemons() {
        let mut campus = Campus::new(8);
        let mut spec = SessionSpec::diligent("alice");
        spec.walltime = SimDuration::from_mins(40);
        spec.interactive_sleep = Some(SimDuration::from_hours(3));
        let outcome = Session::new(spec).run(&mut campus);
        assert!(matches!(outcome, SessionOutcome::Success { .. }));
        assert!(!campus.ports.is_empty(), "daemons orphaned at walltime");
        assert!(campus.log.grep("walltime expired during interactive sleep").count() == 1);
    }

    #[test]
    fn hbase_provisioning_binds_the_extra_ports() {
        let mut campus = Campus::new(8);
        let mut spec = SessionSpec::diligent("alice");
        spec.forgets_teardown = true; // keep bindings visible afterwards
        spec.with_hbase = true;
        let outcome = Session::new(spec).run(&mut campus);
        assert!(matches!(outcome, SessionOutcome::Success { .. }));
        // Ghosts include the HBase master + 8 region servers.
        let master_bound =
            (0..8u32).any(|n| campus.ports.holder(NodeId(n), well_known::HBASE_MASTER).is_some());
        assert!(master_bound);
        let rs_count = (0..8u32)
            .filter(|&n| campus.ports.holder(NodeId(n), well_known::HBASE_REGIONSERVER).is_some())
            .count();
        assert_eq!(rs_count, 8);
    }

    #[test]
    fn persistent_mode_is_refused() {
        let mut campus = Campus::new(8);
        let mut spec = SessionSpec::diligent("alice");
        spec.persistent_mode = true;
        assert_eq!(Session::new(spec).run(&mut campus), SessionOutcome::PersistentModeUnsupported);
    }

    #[test]
    fn oversized_requests_never_schedule() {
        let mut campus = Campus::new(4);
        let mut spec = SessionSpec::diligent("greedy");
        spec.nodes = 64;
        assert_eq!(Session::new(spec).run(&mut campus), SessionOutcome::NeverScheduled);
    }
}
