//! Scenario packs: named families of fault plans.
//!
//! Each pack is a *distribution* over [`FaultPlan`]s, sampled by seed.
//! The packs replay the paper's operational war stories:
//!
//! * **meltdown** — heap-leaking student jobs OOM TaskTrackers and their
//!   colocated DataNodes (Section II-A, Fall 2012);
//! * **restart-drill** — the NameNode bounces mid-semester and the whole
//!   cluster sits in safe mode counting block reports;
//! * **bit-rot** — replicas silently corrupt on disk and the checksum /
//!   scanner / re-replication machinery has to notice;
//! * **ghost-ports** — departed sessions leave daemons squatting on the
//!   Hadoop ports until the campus cleanup cron sweeps them;
//! * **write-storm** — DataNodes die and acks vanish *mid-write*, and
//!   writing clients crash outright, driving pipeline recovery,
//!   generation-stamp invalidation, and lease recovery;
//! * **degraded-ops** — nothing crashes, everything *drags*: nodes decay
//!   progressively, noisy neighbors flare, NICs flap, and speculative
//!   execution has to route around the slow hardware without ever
//!   changing a byte of job output;
//! * **compressed-path** — bit-rot aimed at the *compressed* byte path:
//!   rounds read the hl-codec-framed corpus copy with compressed map
//!   output on, so corruption must be caught by the per-block CRC before
//!   any frame reaches the decoder.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hl_cluster::failure::DaemonKind;
use hl_common::prelude::*;
use hl_common::units::ByteSize;

use crate::plan::{Fault, FaultPlan, PlannedFault};

/// Number of worker nodes every chaos cluster runs (small enough to soak
/// hundreds of seeds, large enough that 3× replication has slack).
pub const NODES: u32 = 5;

/// Workload rounds per run.
pub const ROUNDS: u32 = 4;

/// The scenario packs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioPack {
    /// Heap-leak cascade: TaskTracker + DataNode OOM crashes mid-job.
    Meltdown,
    /// NameNode crash + journal recovery + safe-mode exit, plus daemon
    /// kills around it.
    RestartDrill,
    /// Seeded replica corruption against the checksum paths.
    BitRot,
    /// Ghost daemons squatting ports across session boundaries.
    GhostPorts,
    /// Mid-write mayhem: pipeline DataNode kills, lost acks, and crashed
    /// writers against the write path's recovery machinery.
    WriteStorm,
    /// Degraded-mode operation: progressive decay, noisy-neighbor
    /// interference, and flaky NICs — slow hardware instead of dead
    /// hardware, exercising speculation end to end.
    DegradedOps,
    /// Bit-rot against the compressed byte path: rounds run over the
    /// hl-codec-framed corpus with compressed map output, so the checksum
    /// wall has to catch corruption before any frame is decoded.
    CompressedPath,
}

impl ScenarioPack {
    /// All packs, soak order.
    pub const ALL: [ScenarioPack; 7] = [
        ScenarioPack::Meltdown,
        ScenarioPack::RestartDrill,
        ScenarioPack::BitRot,
        ScenarioPack::GhostPorts,
        ScenarioPack::WriteStorm,
        ScenarioPack::DegradedOps,
        ScenarioPack::CompressedPath,
    ];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioPack::Meltdown => "meltdown",
            ScenarioPack::RestartDrill => "restart-drill",
            ScenarioPack::BitRot => "bit-rot",
            ScenarioPack::GhostPorts => "ghost-ports",
            ScenarioPack::WriteStorm => "write-storm",
            ScenarioPack::DegradedOps => "degraded-ops",
            ScenarioPack::CompressedPath => "compressed-path",
        }
    }

    /// Parse a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Sample this pack's fault plan for `seed`. Same seed, same plan —
    /// the schedule is a pure function of `(pack, seed)`.
    pub fn plan(self, seed: u64) -> FaultPlan {
        // Domain-separate the stream per pack so seed N draws different
        // schedules across packs.
        let salt = match self {
            ScenarioPack::Meltdown => 0x4d45,
            ScenarioPack::RestartDrill => 0x5244,
            ScenarioPack::BitRot => 0x4252,
            ScenarioPack::GhostPorts => 0x4750,
            ScenarioPack::WriteStorm => 0x5753,
            ScenarioPack::DegradedOps => 0x444f,
            ScenarioPack::CompressedPath => 0x4350,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (salt << 32));
        let mut faults = Vec::new();
        let node = |rng: &mut ChaCha8Rng| NodeId(rng.gen_range(0..NODES));

        match self {
            ScenarioPack::Meltdown => {
                // A leak rate between 128 and 320 MiB/task crashes a
                // 1 GiB-heap daemon after 3–7 buggy tasks.
                let rate = rng.gen_range(128..=320) * ByteSize::MIB;
                faults.push(PlannedFault { at: 0, fault: Fault::HeapLeak { rate } });
                if rng.gen_bool(0.5) {
                    faults.push(PlannedFault { at: 1, fault: Fault::HeapLeak { rate } });
                }
                if rng.gen_bool(0.4) {
                    faults.push(PlannedFault {
                        at: 1,
                        fault: Fault::SlowNode {
                            node: node(&mut rng),
                            factor_pct: rng.gen_range(300..=1200),
                        },
                    });
                }
                faults.push(PlannedFault { at: 2, fault: Fault::RestartDaemons });
            }
            ScenarioPack::RestartDrill => {
                faults.push(PlannedFault {
                    at: 0,
                    fault: Fault::KillDaemon { kind: DaemonKind::DataNode, node: node(&mut rng) },
                });
                if rng.gen_bool(0.5) {
                    faults.push(PlannedFault {
                        at: 1,
                        fault: Fault::KillDaemon {
                            kind: DaemonKind::TaskTracker,
                            node: node(&mut rng),
                        },
                    });
                }
                faults.push(PlannedFault { at: 1, fault: Fault::RestartNameNode });
                if rng.gen_bool(0.3) {
                    faults.push(PlannedFault {
                        at: 2,
                        fault: Fault::KillDaemon { kind: DaemonKind::JobTracker, node: NodeId(0) },
                    });
                }
                faults.push(PlannedFault { at: 3, fault: Fault::RestartDaemons });
            }
            ScenarioPack::BitRot => {
                for _ in 0..rng.gen_range(2..=4u32) {
                    faults.push(PlannedFault {
                        at: rng.gen_range(0..ROUNDS.saturating_sub(1)),
                        fault: Fault::CorruptBlock { victim: rng.gen_range(0..u64::MAX) },
                    });
                }
                if rng.gen_bool(0.4) {
                    faults.push(PlannedFault {
                        at: 2,
                        fault: Fault::KillDaemon {
                            kind: DaemonKind::DataNode,
                            node: node(&mut rng),
                        },
                    });
                }
                faults.push(PlannedFault { at: ROUNDS - 1, fault: Fault::RestartDaemons });
            }
            ScenarioPack::GhostPorts => {
                for _ in 0..rng.gen_range(2..=4u32) {
                    // Squat ports outside the runner's own well-known set
                    // (those are held, live, by the session itself).
                    let port = 50_100 + rng.gen_range(0..8u16);
                    faults.push(PlannedFault {
                        at: rng.gen_range(0..ROUNDS),
                        fault: Fault::GhostDaemon { node: node(&mut rng), port },
                    });
                }
                if rng.gen_bool(0.5) {
                    faults.push(PlannedFault {
                        at: 1,
                        fault: Fault::KillDaemon {
                            kind: DaemonKind::TaskTracker,
                            node: node(&mut rng),
                        },
                    });
                }
                faults.push(PlannedFault { at: 2, fault: Fault::RestartDaemons });
            }
            ScenarioPack::WriteStorm => {
                // Every plan kills a pipeline DataNode mid-write: a storm
                // write is 3–6 blocks × 3 replicas, so store indices under
                // 9 always land inside the write.
                faults.push(PlannedFault {
                    at: 0,
                    fault: Fault::KillPipelineDatanode { after_stores: rng.gen_range(0..9) },
                });
                // ...and crashes a writer so lease recovery has work to do.
                faults.push(PlannedFault {
                    at: rng.gen_range(0..2),
                    fault: Fault::WriterCrash { after_blocks: rng.gen_range(0..4) },
                });
                if rng.gen_bool(0.6) {
                    faults.push(PlannedFault {
                        at: rng.gen_range(1..3),
                        fault: Fault::SlowPipelineAck { after_stores: rng.gen_range(0..9) },
                    });
                }
                if rng.gen_bool(0.4) {
                    faults.push(PlannedFault {
                        at: 2,
                        fault: Fault::KillDaemon {
                            kind: DaemonKind::DataNode,
                            node: node(&mut rng),
                        },
                    });
                }
                // No RestartNameNode here: a crashed writer's unconfirmed
                // trailing block would wedge safe mode forever, and the
                // restart drill already owns that story. The operator pass
                // revives pipeline-kill victims so replication can quiesce.
                faults.push(PlannedFault { at: ROUNDS - 1, fault: Fault::RestartDaemons });
            }
            ScenarioPack::CompressedPath => {
                // Same rot pressure as bit-rot, but the runner points every
                // round at the framed corpus (and compresses map output),
                // so the corruption targets include hl-codec frames and the
                // CRC wall is what stands between rot and the decoder.
                for _ in 0..rng.gen_range(2..=4u32) {
                    faults.push(PlannedFault {
                        at: rng.gen_range(0..ROUNDS.saturating_sub(1)),
                        fault: Fault::CorruptBlock { victim: rng.gen_range(0..u64::MAX) },
                    });
                }
                if rng.gen_bool(0.4) {
                    faults.push(PlannedFault {
                        at: 2,
                        fault: Fault::KillDaemon {
                            kind: DaemonKind::DataNode,
                            node: node(&mut rng),
                        },
                    });
                }
                faults.push(PlannedFault { at: ROUNDS - 1, fault: Fault::RestartDaemons });
            }
            ScenarioPack::DegradedOps => {
                // Always one progressive straggler: the canonical "VM on
                // an oversubscribed host" that LATE was designed around.
                // Floors stay well above zero so replication and the
                // quiesce oracle always make finite progress.
                faults.push(PlannedFault {
                    at: 0,
                    fault: Fault::DegradeNode {
                        node: node(&mut rng),
                        floor_pct: rng.gen_range(10..=40),
                        ramp_secs: rng.gen_range(60..=240),
                    },
                });
                if rng.gen_bool(0.6) {
                    faults.push(PlannedFault {
                        at: rng.gen_range(0..2),
                        fault: Fault::NoisyNeighbor {
                            node: node(&mut rng),
                            slow_pct: rng.gen_range(20..=60),
                            window_secs: rng.gen_range(60..=180),
                        },
                    });
                }
                if rng.gen_bool(0.6) {
                    faults.push(PlannedFault {
                        at: rng.gen_range(1..3),
                        fault: Fault::FlakyNic {
                            node: node(&mut rng),
                            nic_pct: rng.gen_range(10..=50),
                            period_secs: rng.gen_range(15..=60),
                        },
                    });
                }
                if rng.gen_bool(0.3) {
                    faults.push(PlannedFault {
                        at: rng.gen_range(1..ROUNDS),
                        fault: Fault::SlowNode {
                            node: node(&mut rng),
                            factor_pct: rng.gen_range(300..=1200),
                        },
                    });
                }
            }
        }

        // Keep the schedule in (round, generation) order so injection
        // order is stable and readable in traces.
        faults.sort_by_key(|p| p.at);
        FaultPlan { seed, rounds: ROUNDS, faults }
    }
}

impl std::fmt::Display for ScenarioPack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_pack_and_seed() {
        for pack in ScenarioPack::ALL {
            assert_eq!(pack.plan(42), pack.plan(42), "{pack} must be deterministic");
            assert!(!pack.plan(42).is_empty());
            assert_eq!(pack.plan(42).rounds, ROUNDS);
        }
        // Packs draw different schedules from the same seed.
        assert_ne!(
            ScenarioPack::Meltdown.plan(42).faults,
            ScenarioPack::RestartDrill.plan(42).faults
        );
    }

    #[test]
    fn names_round_trip() {
        for pack in ScenarioPack::ALL {
            assert_eq!(ScenarioPack::from_name(pack.name()), Some(pack));
        }
        assert_eq!(ScenarioPack::from_name("nope"), None);
    }

    #[test]
    fn pack_shapes() {
        // Every meltdown plan leaks; every bit-rot plan corrupts; every
        // ghost-ports plan squats; every restart drill bounces the NN.
        for seed in 0..50 {
            assert!(ScenarioPack::Meltdown
                .plan(seed)
                .faults
                .iter()
                .any(|p| matches!(p.fault, Fault::HeapLeak { .. })));
            assert!(ScenarioPack::BitRot
                .plan(seed)
                .faults
                .iter()
                .any(|p| matches!(p.fault, Fault::CorruptBlock { .. })));
            assert!(ScenarioPack::GhostPorts
                .plan(seed)
                .faults
                .iter()
                .any(|p| matches!(p.fault, Fault::GhostDaemon { .. })));
            assert!(ScenarioPack::RestartDrill
                .plan(seed)
                .faults
                .iter()
                .any(|p| matches!(p.fault, Fault::RestartNameNode)));
            // Every write storm kills a pipeline DataNode AND crashes a
            // writer, and never bounces the NameNode (a crashed writer's
            // phantom block would wedge safe mode).
            let storm = ScenarioPack::WriteStorm.plan(seed);
            assert!(storm
                .faults
                .iter()
                .any(|p| matches!(p.fault, Fault::KillPipelineDatanode { .. })));
            assert!(storm.faults.iter().any(|p| matches!(p.fault, Fault::WriterCrash { .. })));
            assert!(!storm.faults.iter().any(|p| matches!(
                p.fault,
                Fault::RestartNameNode | Fault::KillDaemon { kind: DaemonKind::NameNode, .. }
            )));
            // Every degraded-ops plan decays a node progressively, and
            // never kills anything — slow hardware, not dead hardware.
            let degraded = ScenarioPack::DegradedOps.plan(seed);
            assert!(degraded.faults.iter().any(|p| matches!(p.fault, Fault::DegradeNode { .. })));
            assert!(!degraded.faults.iter().any(|p| matches!(
                p.fault,
                Fault::KillDaemon { .. }
                    | Fault::RestartNameNode
                    | Fault::HeapLeak { .. }
                    | Fault::KillPipelineDatanode { .. }
                    | Fault::WriterCrash { .. }
            )));
            // Degrade floors stay strictly positive so transfers always
            // make progress.
            for p in &degraded.faults {
                if let Fault::DegradeNode { floor_pct, .. } = p.fault {
                    assert!(floor_pct > 0);
                }
            }
            // Every compressed-path plan rots at least one replica — the
            // whole point is corruption meeting the frame CRC wall.
            assert!(ScenarioPack::CompressedPath
                .plan(seed)
                .faults
                .iter()
                .any(|p| matches!(p.fault, Fault::CorruptBlock { .. })));
        }
    }
}
