//! `chaos-soak`: fan the chaos runner across seeds × scenario packs.
//!
//! ```text
//! chaos-soak                          # 200 seeds x all 6 packs
//! chaos-soak --seeds 0..50            # a seed range
//! chaos-soak --seeds 64               # seeds 0..64
//! chaos-soak --pack bit-rot           # one pack only
//! chaos-soak --replay 17 --pack meltdown   # one seed, full trace printed
//! chaos-soak --verify-trace           # run every combo twice, compare hashes
//! ```
//!
//! Exit codes: 0 all invariants held; 1 an oracle fired (first failing
//! seed printed with its one-command replay); 2 a seed failed to
//! reproduce its own trace hash (determinism bug).

use std::process::ExitCode;

use hl_chaos::{ChaosRunner, ScenarioPack};

struct Args {
    seed_lo: u64,
    seed_hi: u64,
    packs: Vec<ScenarioPack>,
    replay: Option<u64>,
    verify_trace: bool,
}

fn usage(err: &str) -> ExitCode {
    eprintln!("chaos-soak: {err}");
    eprintln!(
        "usage: chaos-soak [--seeds N | --seeds A..B] [--pack NAME] [--replay SEED] [--verify-trace]"
    );
    eprintln!("packs: meltdown restart-drill bit-rot ghost-ports write-storm degraded-ops");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed_lo: 0,
        seed_hi: 200,
        packs: ScenarioPack::ALL.to_vec(),
        replay: None,
        verify_trace: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                let v = it.next().ok_or("--seeds needs a value")?;
                if let Some((lo, hi)) = v.split_once("..") {
                    args.seed_lo = lo.parse().map_err(|_| format!("bad seed range: {v}"))?;
                    args.seed_hi = hi.parse().map_err(|_| format!("bad seed range: {v}"))?;
                } else {
                    args.seed_lo = 0;
                    args.seed_hi = v.parse().map_err(|_| format!("bad seed count: {v}"))?;
                }
                if args.seed_lo >= args.seed_hi {
                    return Err(format!("empty seed range: {v}"));
                }
            }
            "--pack" => {
                let v = it.next().ok_or("--pack needs a name")?;
                let pack =
                    ScenarioPack::from_name(&v).ok_or_else(|| format!("unknown pack: {v}"))?;
                args.packs = vec![pack];
            }
            "--replay" => {
                let v = it.next().ok_or("--replay needs a seed")?;
                args.replay = Some(v.parse().map_err(|_| format!("bad seed: {v}"))?);
            }
            "--verify-trace" => args.verify_trace = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Replay one `(pack, seed)` with the full trace, then re-run it and
/// compare hashes. Returns the process exit code.
fn replay(pack: ScenarioPack, seed: u64) -> ExitCode {
    let first = match ChaosRunner::run(pack, seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("replay {pack} seed {seed}: harness error: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", first.trace);
    println!("{first}");
    for v in &first.violations {
        println!("  {v}");
    }
    let second = match ChaosRunner::run(pack, seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("replay {pack} seed {seed}: second run errored: {e}");
            return ExitCode::from(2);
        }
    };
    if second.trace_hash != first.trace_hash {
        eprintln!(
            "DETERMINISM BUG: {pack} seed {seed} hashed {:#018x} then {:#018x}",
            first.trace_hash, second.trace_hash
        );
        return ExitCode::from(2);
    }
    println!("replay reproduced trace hash {:#018x}", first.trace_hash);
    if first.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return usage(&e),
    };

    if let Some(seed) = args.replay {
        if args.packs.len() != 1 {
            return usage("--replay needs --pack NAME");
        }
        return replay(args.packs[0], seed);
    }

    let mut runs = 0u64;
    for pack in &args.packs {
        let mut pack_ok = 0u64;
        for seed in args.seed_lo..args.seed_hi {
            let report = match ChaosRunner::run(*pack, seed) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{pack} seed {seed}: harness error: {e}");
                    return ExitCode::from(2);
                }
            };
            runs += 1;
            if !report.ok() {
                println!("FAIL {report}");
                for v in &report.violations {
                    println!("  {v}");
                }
                println!("replay with: chaos-soak --pack {} --replay {seed}", pack.name());
                return ExitCode::from(1);
            }
            if args.verify_trace {
                match ChaosRunner::run(*pack, seed) {
                    Ok(again) if again.trace_hash == report.trace_hash => {}
                    Ok(again) => {
                        eprintln!(
                            "DETERMINISM BUG: {pack} seed {seed} hashed {:#018x} then {:#018x}",
                            report.trace_hash, again.trace_hash
                        );
                        return ExitCode::from(2);
                    }
                    Err(e) => {
                        eprintln!("{pack} seed {seed}: re-run errored: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            pack_ok += 1;
        }
        println!(
            "pack {:<14} {pack_ok} seed(s) clean{}",
            pack.name(),
            if args.verify_trace { ", traces reproduced" } else { "" }
        );
    }
    println!("soak: {runs} run(s), every invariant held");
    ExitCode::SUCCESS
}
