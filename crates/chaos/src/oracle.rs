//! Whole-system invariant oracles, checked after every chaos run.
//!
//! Faults are *allowed* to fail jobs and lose replicas mid-run; the
//! oracles pin down what must still be true once the dust settles:
//!
//! 1. **durability** — every acknowledged DFS write reads back with its
//!    original CRC32, or `fsck` explicitly reports the file as missing
//!    blocks. Silent loss and silent corruption are violations.
//! 2. **ground-truth** — every job that *reported success* produced
//!    output equal to the `LocalRunner` (LocalJobRunner) ground truth;
//!    jobs may fail, but only cleanly (typed, expected errors).
//! 3. **replication** — once the protocol quiesces with every daemon
//!    revived, no block stays under-replicated (unless the NameNode is
//!    legitimately stuck in safe mode over genuinely missing blocks).
//! 4. **ghost-ports** — after session teardown plus one cleanup-cron
//!    sweep, no port binding survives anywhere on the campus.
//! 5. **accounting** — the trace and the `Chaos` counter group account
//!    for every planned fault: nothing injected silently, nothing
//!    double-counted.
//! 6. **lease-recovery** — every file opened by a crashed writer is
//!    eventually lease-recovered: closed at a consistent whole-block
//!    length that reads back as a CRC-valid prefix of what the writer
//!    sent, with no lease left behind.
//! 7. **metrics** — the observability layer is itself deterministic and
//!    honest: back-to-back snapshots of the quiesced cluster serialize
//!    byte-identically, the `chaos` daemon's counters reconcile with the
//!    injected fault count, and the NameNode's restart counter matches
//!    the NameNode restarts the plan caused — monotonic counters survive
//!    daemon restarts exactly once, neither double- nor under-counted.
//! 8. **scheduler-invariants** — under whichever policy the seed picked
//!    (FIFO/Fair/Capacity), no job starves: every submission ends as a
//!    completion or a (clean) failure; the JobTracker never accepts an
//!    invalid assignment; every completed task traces back to a recorded
//!    scheduler decision; and preemption accounting balances (preempted
//!    = re-queued = re-run — identically zero in the single-tenant
//!    engine; the replay driver exercises the non-zero case and the
//!    per-queue quota bounds round by round).
//! 9. **speculation** — speculative-execution accounting closes: every
//!    launched speculative attempt is settled as exactly one of
//!    won/lost/killed, and the engine never accepted an invalid
//!    speculation proposal. (The output half — speculation never changes
//!    a byte of job output — is the ground-truth oracle's job: every
//!    successful round runs with speculation on and is diffed against
//!    the unspeculated LocalJobRunner.)

use std::collections::BTreeMap;

use hl_common::prelude::*;
use hl_dfs::fsck::fsck;

use crate::runner::ChaosRunner;

/// One broken invariant, attributed to the oracle that caught it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle fired ("durability", "ground-truth", ...).
    pub oracle: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Errors a chaos-era job is *allowed* to die of: typed failures the
/// engine hands back deliberately. Anything else leaking out of a run is
/// an unclean failure and a violation in itself.
pub(crate) fn is_clean_failure(e: &HlError) -> bool {
    matches!(
        e,
        HlError::SafeMode(_)
            | HlError::DaemonDown(_)
            | HlError::JobFailed(_)
            | HlError::TaskFailed(_)
            | HlError::AlreadyExists(_)
            | HlError::MissingBlock { .. }
            | HlError::InsufficientReplication { .. }
    )
}

/// Parse `key\tcount` wordcount output into a map (blank lines skipped).
pub(crate) fn parse_counts(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines().filter(|l| !l.is_empty()) {
        if let Some((word, count)) = line.split_once('\t') {
            if let Ok(n) = count.trim().parse::<u64>() {
                *out.entry(word.to_string()).or_insert(0) += n;
            }
        }
    }
    out
}

/// Oracle 1: every acknowledged write still reads back byte-identical
/// (CRC32 against the ack-time checksum), or `fsck` owns up to the loss.
pub(crate) fn verify_durability(r: &mut ChaosRunner) {
    let acked = std::mem::take(&mut r.acked);
    let mut unreadable: Vec<(String, HlError)> = Vec::new();
    for w in &acked {
        let now = r.cluster.now;
        match r.cluster.dfs.read(&mut r.cluster.net, now, &w.path, None) {
            Ok(t) => {
                r.cluster.now = t.completed_at;
                if t.value.len() as u64 != w.len || Crc32::checksum(&t.value) != w.crc {
                    r.violate(
                        "durability",
                        format!("{}: read bytes differ from the acknowledged write", w.path),
                    );
                }
            }
            Err(e) => unreadable.push((w.path.clone(), e)),
        }
    }
    r.acked = acked;
    if unreadable.is_empty() {
        return;
    }
    // Losses are tolerable only when fsck reports them: "we lost it" is
    // an answer, "it's fine" while it's gone is not.
    match fsck(&r.cluster.dfs, "/") {
        Ok(report) => {
            for (path, e) in unreadable {
                let owned_up = report.files.iter().any(|f| f.path == path && f.missing > 0);
                if owned_up {
                    let now = r.cluster.now;
                    r.cluster.log.log(now, "chaos", format!("{path} lost, and fsck reports it"));
                } else {
                    r.violate(
                        "durability",
                        format!("{path}: unreadable ({e}) yet fsck calls it healthy"),
                    );
                }
            }
        }
        Err(e) => r.violate("durability", format!("fsck itself failed: {e}")),
    }
}

/// Oracle 6: every file a crashed writer left open must be lease-recovered
/// once the lease monitor has had time to run — closed at a consistent
/// whole-block length that reads back as a CRC-valid prefix of the bytes
/// the writer sent, with no lease outstanding. A NameNode stuck in safe
/// mode over genuinely missing blocks is excused (the lease monitor
/// legitimately idles there; oracle 3 audits that end state).
pub(crate) fn verify_lease_recovery(r: &mut ChaosRunner) {
    if r.cluster.dfs.namenode.safemode.is_on() {
        if !r.cluster.dfs.namenode.missing_blocks().is_empty() {
            let now = r.cluster.now;
            r.cluster.log.log(
                now,
                "chaos",
                "stuck in safe mode over missing blocks; lease recovery cannot run",
            );
        }
        return;
    }
    // Drive the protocol until every lease is recovered: 150 heartbeat
    // rounds × 3 s comfortably clears the 300 s hard limit even for a
    // writer that crashed moments before teardown.
    let mut t = r.cluster.now;
    for _ in 0..150 {
        if r.cluster.dfs.namenode.open_files().is_empty() {
            break;
        }
        t += SimDuration::from_secs(3);
        r.cluster.dfs.heartbeat_round(&mut r.cluster.net, t);
    }
    r.cluster.now = t;
    let stuck: Vec<String> = r
        .cluster
        .dfs
        .namenode
        .open_files()
        .iter()
        .map(|l| {
            format!(
                "{} still open for write (holder {}, state {}) after quiesce",
                l.path, l.holder, l.state
            )
        })
        .collect();
    for detail in stuck {
        r.violate("lease-recovery", detail);
    }
    let block_size = r.cluster.dfs.namenode.default_block_size();
    let open_writers = std::mem::take(&mut r.open_writers);
    for (path, intended) in &open_writers {
        let meta = match r.cluster.dfs.namenode.namespace().file(path) {
            Ok(f) => (f.complete, f.len),
            Err(e) => {
                r.violate("lease-recovery", format!("{path}: vanished during recovery: {e}"));
                continue;
            }
        };
        let (complete, len) = meta;
        if !complete {
            r.violate("lease-recovery", format!("{path}: never finalized (len {len})"));
            continue;
        }
        // The recovered length must be a whole-block prefix of the write:
        // pipelines confirm block-at-a-time, so any other length means the
        // NameNode kept a block no DataNode ever finished ingesting.
        if len > intended.len() as u64 || !len.is_multiple_of(block_size) {
            r.violate(
                "lease-recovery",
                format!(
                    "{path}: recovered to {len} bytes, not a whole-block prefix of {}",
                    intended.len()
                ),
            );
            continue;
        }
        let now = r.cluster.now;
        match r.cluster.dfs.read(&mut r.cluster.net, now, path, None) {
            Ok(t) => {
                r.cluster.now = t.completed_at;
                let want = &intended[..len as usize];
                if t.value != want {
                    r.violate(
                        "lease-recovery",
                        format!("{path}: recovered bytes differ from the writer's prefix"),
                    );
                } else {
                    let at = r.cluster.now;
                    r.cluster.log.log(
                        at,
                        "chaos",
                        format!("{path} lease-recovered to {len} consistent byte(s)"),
                    );
                }
            }
            Err(e) => {
                r.violate("lease-recovery", format!("{path}: unreadable after recovery: {e}"))
            }
        }
    }
    r.open_writers = open_writers;
}

/// Oracle 3: with every daemon revived and block reports synced, drive
/// heartbeat rounds until re-replication quiesces; nothing may stay
/// under-replicated. A NameNode stuck in safe mode is excused only while
/// blocks are genuinely missing (the paper's corrupted-cluster end state).
pub(crate) fn quiesce_replication(r: &mut ChaosRunner) {
    if r.cluster.dfs.namenode.safemode.is_on() {
        if r.cluster.dfs.namenode.missing_blocks().is_empty() {
            r.violate("replication", "safe mode still on with no missing blocks".into());
        } else {
            let now = r.cluster.now;
            r.cluster.log.log(
                now,
                "chaos",
                "stuck in safe mode over missing blocks; replication cannot quiesce",
            );
        }
        return;
    }
    let mut t = r.cluster.now;
    for _ in 0..80 {
        if r.cluster.dfs.namenode.under_replicated().is_empty() {
            break;
        }
        t += SimDuration::from_secs(3);
        r.cluster.dfs.heartbeat_round(&mut r.cluster.net, t);
    }
    r.cluster.now = t;
    let leftover = r.cluster.dfs.namenode.under_replicated();
    if !leftover.is_empty() {
        r.violate(
            "replication",
            format!("{} block(s) still under-replicated after quiesce", leftover.len()),
        );
    }
}

/// Oracle 4: release the session's own ports, run the cleanup cron once
/// past its period, and require an empty port registry.
pub(crate) fn verify_ports(r: &mut ChaosRunner) {
    let released = r.campus.ports.release_owner(crate::runner::SESSION_OWNER);
    if released != r.session_ports {
        r.violate(
            "ghost-ports",
            format!("session released {released} ports, bound {}", r.session_ports),
        );
    }
    let horizon = r.campus.now.max(r.cluster.now) + SimDuration::from_mins(16);
    r.campus.advance_to(horizon);
    if !r.campus.ports.is_empty() {
        r.violate(
            "ghost-ports",
            format!("{} port binding(s) survive teardown + cleanup cron", r.campus.ports.len()),
        );
    }
}

/// Oracle 5: the plan, the trace, and the counters agree on how many
/// faults were injected.
pub(crate) fn verify_accounting(r: &mut ChaosRunner) {
    let planned = r.plan.len();
    let traced =
        r.cluster.log.from_source("chaos").filter(|e| e.message.starts_with("inject ")).count();
    let counted: u64 =
        r.counters.iter().filter(|(group, _, _)| *group == "Chaos").map(|(_, _, v)| v).sum();
    if traced != planned || counted != planned as u64 || r.injected as usize != planned {
        r.violate(
            "accounting",
            format!(
                "planned {planned} fault(s); injected {}, traced {traced}, counted {counted}",
                r.injected
            ),
        );
    }
}

/// Oracle 7: **metrics**. The instruments measuring the chaos must be as
/// deterministic as the chaos itself. Snapshotting twice in a row (with
/// no intervening simulated events) must serialize byte-identically; the
/// `chaos` daemon's counter mirror must account for every injected fault;
/// and the NameNode's `restarts` counter must equal the number of
/// NameNode restarts the plan scheduled — proof the registry's restart
/// semantics preserve monotonic counters without double-counting.
pub(crate) fn verify_metrics(r: &mut ChaosRunner) {
    let snap = r.cluster.metrics_snapshot();
    let again = r.cluster.metrics_snapshot();
    if snap.to_bytes() != again.to_bytes() {
        r.violate("metrics", "back-to-back snapshots serialize differently".to_string());
    }

    let counted: u64 = snap
        .samples
        .iter()
        .filter(|s| s.daemon == "chaos")
        .filter_map(|s| match s.value {
            hl_metrics::MetricValue::Counter(v) => Some(v),
            _ => None,
        })
        .sum();
    if counted != u64::from(r.injected) {
        r.violate(
            "metrics",
            format!("chaos daemon counted {counted} fault(s), runner injected {}", r.injected),
        );
    }

    // Every NameNode-restarting fault routes through `Dfs::restart_all`,
    // which bumps the counter exactly once even when the cluster ends the
    // run legitimately stuck in safe mode.
    let expected_nn_restarts = r
        .plan
        .faults
        .iter()
        .filter(|p| {
            matches!(
                p.fault,
                crate::plan::Fault::RestartNameNode
                    | crate::plan::Fault::KillDaemon {
                        kind: hl_cluster::failure::DaemonKind::NameNode,
                        ..
                    }
            )
        })
        .count() as u64;
    let got = snap.counter("namenode", "restarts");
    if got != expected_nn_restarts {
        r.violate(
            "metrics",
            format!(
                "namenode restarts counter reads {got}, plan restarted it {expected_nn_restarts} time(s)"
            ),
        );
    }
}

/// Oracle 8: the pluggable scheduler kept its invariants under whichever
/// policy this seed selected (`seed % 3` → FIFO/Fair/Capacity).
pub(crate) fn verify_scheduler(r: &mut ChaosRunner) {
    let snap = r.cluster.metrics_snapshot();

    // No starvation: every job the plan submitted reached a terminal
    // state — the scheduler never left one parked forever.
    let submitted = snap.counter("jobtracker", "jobs.submitted");
    let completed = snap.counter("jobtracker", "jobs.completed");
    let failed = snap.counter("jobtracker", "jobs.failed");
    if submitted != completed + failed {
        r.violate(
            "scheduler-invariants",
            format!(
                "starvation: {submitted} job(s) submitted but only {completed} completed + {failed} failed"
            ),
        );
    }

    // The engine validates every assignment against its slot table and
    // pending set; a policy handing back an out-of-range slot/task would
    // bump this counter before failing the job.
    let invalid = snap.counter("jobtracker", "sched.invalid");
    if invalid != 0 {
        r.violate(
            "scheduler-invariants",
            format!("scheduler produced {invalid} invalid assignment(s)"),
        );
    }

    // Slot accounting: every task that ran to completion was placed by a
    // recorded scheduler decision (retries add decisions, so `>=`).
    let hist_count = |name: &str| match snap.get("jobtracker", name) {
        Some(hl_metrics::MetricValue::Histogram(h)) => h.count(),
        _ => 0,
    };
    let decisions = snap.counter("jobtracker", "sched.decisions");
    let tasks_done = hist_count("map.duration_ms") + hist_count("reduce.duration_ms");
    if decisions < tasks_done {
        r.violate(
            "scheduler-invariants",
            format!("{tasks_done} task(s) completed but only {decisions} scheduler decision(s) recorded"),
        );
    }

    // Preemption accounting balances: every preempted attempt was
    // re-queued and eventually re-run. The single-tenant engine keeps all
    // three at zero; the replay driver exercises the non-zero case.
    let preempted = snap.counter("jobtracker", "sched.preempted");
    let requeued = snap.counter("jobtracker", "sched.requeued");
    let rerun = snap.counter("jobtracker", "sched.rerun");
    if preempted != requeued || requeued != rerun {
        r.violate(
            "scheduler-invariants",
            format!(
                "preemption accounting skewed: {preempted} preempted, {requeued} requeued, {rerun} rerun"
            ),
        );
    }
}

/// Oracle 9: **speculation**. The attempt taxonomy is closed by
/// construction — `launched = won + lost + killed`, with zero invalid
/// proposals — and the metrics must prove it after an arbitrary fault
/// schedule. Paired with the ground-truth oracle (which diffs every
/// successful speculated job against the unspeculated LocalJobRunner),
/// this pins speculation down as pure insurance: it may move work
/// between nodes and waste cycles, never change an output byte.
pub(crate) fn verify_speculation(r: &mut ChaosRunner) {
    let snap = r.cluster.metrics_snapshot();
    let launched = snap.counter("jobtracker", "spec.launched");
    let won = snap.counter("jobtracker", "spec.won");
    let lost = snap.counter("jobtracker", "spec.lost");
    let killed = snap.counter("jobtracker", "spec.killed");
    if launched != won + lost + killed {
        r.violate(
            "speculation",
            format!(
                "attempt taxonomy leaks: {launched} launched != {won} won + {lost} lost + {killed} killed"
            ),
        );
    }
    let invalid = snap.counter("jobtracker", "spec.invalid");
    if invalid != 0 {
        r.violate(
            "speculation",
            format!("engine refused {invalid} invalid speculation proposal(s)"),
        );
    }
    // Wasted work only exists where attempts raced or died: zero attempts
    // must mean zero waste charged to the cost model.
    let wasted = snap.counter("jobtracker", "spec.wasted_us");
    if launched == 0 && wasted != 0 {
        r.violate(
            "speculation",
            format!("{wasted} us of speculative waste charged with no attempts launched"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_failure_classification() {
        assert!(is_clean_failure(&HlError::SafeMode("on".into())));
        assert!(is_clean_failure(&HlError::JobFailed("retries exhausted".into())));
        assert!(is_clean_failure(&HlError::MissingBlock { block_id: 1, path: "/f".into() }));
        assert!(!is_clean_failure(&HlError::Internal("bug".into())));
        assert!(!is_clean_failure(&HlError::Codec("bad tag".into())));
        assert!(!is_clean_failure(&HlError::Config("missing key".into())));
    }

    #[test]
    fn parse_counts_sums_duplicate_keys_across_parts() {
        let text = "a\t2\nb\t1\n\na\t3\n";
        let m = parse_counts(text);
        assert_eq!(m.get("a"), Some(&5));
        assert_eq!(m.get("b"), Some(&1));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn violation_display_names_the_oracle() {
        let v = Violation { oracle: "durability", detail: "gone".into() };
        assert_eq!(v.to_string(), "[durability] gone");
    }
}
