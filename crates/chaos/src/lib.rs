//! Deterministic chaos harness for the HadoopLab simulator.
//!
//! The paper's war stories — heap-leak meltdowns, the fifteen-minute
//! NameNode restart drill, silent replica corruption, ghost daemons on
//! the Hadoop ports — each exercised one failure path at a time. This
//! crate composes them: a seeded [`FaultPlan`] schedules typed fault
//! events across workload rounds, a [`ChaosRunner`] injects them into a
//! real `MrCluster` + `Campus`, and post-run [`oracle`]s check the
//! invariants the whole system must uphold *despite* the faults:
//!
//! * acknowledged DFS writes stay readable (or `fsck` reports the loss);
//! * successful jobs match the LocalJobRunner ground truth, failed jobs
//!   fail cleanly with attempts exhausted;
//! * re-replication quiesces with nothing under-replicated;
//! * no port stays ghost-bound after teardown plus one cleanup-cron pass;
//! * the trace and counters account for every injected fault;
//! * files left open by crashed writers are lease-recovered to consistent,
//!   CRC-valid whole-block lengths.
//!
//! Everything is a pure function of `(pack, seed)`: the same seed
//! reproduces the identical event trace, hash-comparable via
//! [`ChaosReport::trace_hash`]. The `chaos-soak` binary fans the runner
//! across seed ranges and scenario packs and prints the first failing
//! seed as a one-command replay.

pub mod oracle;
pub mod plan;
pub mod runner;
pub mod scenario;

pub use oracle::Violation;
pub use plan::{Fault, FaultPlan, PlannedFault};
pub use runner::{AckedWrite, ChaosReport, ChaosRunner};
pub use scenario::{ScenarioPack, NODES, ROUNDS};
