//! The chaos runner: interleave a seeded fault plan with real workloads.
//!
//! One run = one five-node course cluster, one seeded corpus staged into
//! DFS, and [`ROUNDS`](crate::scenario::ROUNDS) wordcount rounds with the
//! plan's faults injected between them. Everything observable — job
//! traces, corruption offsets, virtual timestamps — is a pure function of
//! `(pack, seed)`, so a failing seed replays byte-identically and the
//! whole run can be hash-compared across re-executions.

use std::collections::BTreeMap;

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use hl_cluster::failure::{BitRot, DaemonKind};
use hl_cluster::node::{ClusterSpec, DegradeModel, PerfProfile};
use hl_cluster::ports::well_known;
use hl_common::config::keys;
use hl_common::prelude::*;
use hl_datagen::CorpusGen;
use hl_dfs::{BlockPayload, PipelineFault};
use hl_mapreduce::api::{Combiner, Mapper, Reducer, SideFiles};
use hl_mapreduce::local::LocalRunner;
use hl_mapreduce::{Job, MrCluster};
use hl_provision::Campus;
use hl_workloads::wordcount::{wordcount, wordcount_combiner};

use crate::oracle::{self, Violation};
use crate::plan::{Fault, FaultPlan};
use crate::scenario::{ScenarioPack, NODES};

/// The staged input every round's job reads.
pub const INPUT: &str = "/in/corpus.txt";

/// The same corpus stored through the hl-codec frame path: blocks hold
/// whole frames, reads decode transparently. The compressed-path pack
/// points its rounds here; every pack's durability oracle re-reads it.
pub const INPUT_PACKED: &str = "/in/corpus.hlz";

/// Owner string for the session's own (live, legitimate) port bindings.
pub(crate) const SESSION_OWNER: &str = "chaos-session";

/// Corpus length in words: ~10 blocks at the 2 KiB chaos block size, so
/// every job runs a real multi-map, multi-reduce DAG.
const CORPUS_WORDS: usize = 2000;

/// Protocol time between fault injection and the round's job: long enough
/// for the 60 s dead-node timeout to fire and re-replication to react.
const ROUND_PROTOCOL_SECS: u64 = 90;

/// A write the DFS acknowledged: the durability oracle holds it to that.
#[derive(Debug, Clone)]
pub struct AckedWrite {
    /// DFS path.
    pub path: String,
    /// Acknowledged length in bytes.
    pub len: u64,
    /// CRC32 of the acknowledged bytes.
    pub crc: u32,
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Scenario pack the plan was drawn from.
    pub pack: ScenarioPack,
    /// The seed.
    pub seed: u64,
    /// Faults the plan scheduled.
    pub planned: usize,
    /// Faults actually injected (== `planned` or the accounting oracle fires).
    pub injected: u32,
    /// Jobs that completed and matched ground truth.
    pub jobs_ok: u32,
    /// Jobs that failed (cleanly, unless a violation says otherwise).
    pub jobs_failed: u32,
    /// `(block id, byte offset)` of every bit-rot corruption performed.
    pub corruptions: Vec<(u64, usize)>,
    /// FNV-1a over the full rendered event trace — the replay fingerprint.
    pub trace_hash: u64,
    /// The full rendered trace (cluster log + campus log + corruption set).
    pub trace: String,
    /// Every oracle violation. Empty means the run passed.
    pub violations: Vec<Violation>,
}

impl ChaosReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} seed {}: {} ok / {} failed jobs, {}/{} faults, {} corruption(s), trace {:#018x} — {}",
            self.pack,
            self.seed,
            self.jobs_ok,
            self.jobs_failed,
            self.injected,
            self.planned,
            self.corruptions.len(),
            self.trace_hash,
            if self.ok() {
                "OK".to_string()
            } else {
                format!("{} VIOLATION(S)", self.violations.len())
            }
        )
    }
}

/// Drives one cluster through one fault plan, then faces the oracles.
pub struct ChaosRunner {
    pub(crate) cluster: MrCluster,
    pub(crate) campus: Campus,
    pub(crate) plan: FaultPlan,
    pub(crate) pack: ScenarioPack,
    /// Runner-side randomness (replica choice): seeded from the plan seed,
    /// domain-separated from the planner's stream.
    rng: ChaCha8Rng,
    /// Seeded corruption-offset stream (probability 1: the *schedule*
    /// decides whether to corrupt, BitRot decides where).
    rot: BitRot,
    truth: BTreeMap<String, u64>,
    pub(crate) acked: Vec<AckedWrite>,
    /// Files whose writer died mid-write: `(path, bytes the writer meant
    /// to put)`. The lease-recovery oracle holds each to a consistent,
    /// CRC-valid whole-block prefix of those bytes.
    pub(crate) open_writers: Vec<(String, Vec<u8>)>,
    pub(crate) corruptions: Vec<(u64, usize)>,
    pub(crate) counters: Counters,
    pub(crate) violations: Vec<Violation>,
    pub(crate) injected: u32,
    pub(crate) session_ports: usize,
    jobs_ok: u32,
    jobs_failed: u32,
    pending_leak: Option<u64>,
    ghost_seq: u32,
    storm_seq: u32,
}

impl ChaosRunner {
    /// Run `pack`'s plan for `seed` to completion and return the report.
    /// `Err` means the harness could not even set up; oracle violations
    /// land in the report, not here.
    pub fn run(pack: ScenarioPack, seed: u64) -> Result<ChaosReport> {
        let mut runner = ChaosRunner::new(pack, seed)?;
        for round in 0..runner.plan.rounds {
            runner.round(round);
        }
        Ok(runner.finish())
    }

    fn new(pack: ScenarioPack, seed: u64) -> Result<Self> {
        let plan = pack.plan(seed);
        let spec = ClusterSpec::course_hadoop(NODES as usize);
        let mut config = Configuration::with_defaults();
        // Small blocks so a ~20 KiB corpus spreads into a real block map,
        // and a short dead-node timeout so death + re-replication fit in a
        // round's protocol window.
        config.set(keys::DFS_BLOCK_SIZE, 2048u64);
        config.set(keys::DFS_HEARTBEAT_DEAD_AFTER, 20u64);
        // Checkpoint every 32 edit-log ops so RestartNameNode drills load
        // an fsimage and replay a short tail, not the whole journal.
        config.set(keys::DFS_CHECKPOINT_OPS, 32u64);
        // Fan the soak out across every scheduler policy. Single-tenant
        // engine runs degenerate to the same assignments under all three,
        // so job outcomes stay seed-stable while the policy code paths
        // (and the scheduler-invariants oracle) still get exercised.
        let policy = match seed % 3 {
            0 => "fifo",
            1 => "fair",
            _ => "capacity",
        };
        config.set(keys::MAPRED_SCHEDULER, policy);
        let mut cluster = MrCluster::new(spec, config)?;
        cluster.log.log(SimTime::ZERO, "chaos", format!("scheduler policy: {policy}"));
        // The client's read-failover jitter stream is per-run: same seed,
        // same backoff spread, byte-identical traces.
        cluster.dfs.set_client_seed(seed ^ 0x444643); // "DFC"

        // The session binds its daemons' ports, like a student's myHadoop
        // start-up script.
        let mut campus = Campus::new(NODES as usize);
        let mut session_ports = 0;
        for node in (0..NODES).map(NodeId) {
            for port in well_known::ALL {
                campus.ports.bind(SimTime::ZERO, node, port, SESSION_OWNER)?;
                session_ports += 1;
            }
        }

        // Stage the seeded corpus and record the acknowledged write.
        cluster.dfs.namenode.mkdirs("/in")?;
        cluster.dfs.namenode.mkdirs("/out")?;
        let (corpus, expected) = CorpusGen::new(seed).generate(CORPUS_WORDS);
        let put = cluster.dfs.put(&mut cluster.net, cluster.now, INPUT, corpus.as_bytes(), None)?;
        cluster.now = put.completed_at;
        // The compressed copy rides in every pack: its framed blocks sit in
        // the manifest where bit-rot can chew them, and the durability
        // oracle holds the *logical* bytes (reads decode transparently), so
        // a rotted frame either fails over or trips a violation.
        let zput = cluster.dfs.put_compressed(
            &mut cluster.net,
            cluster.now,
            INPUT_PACKED,
            corpus.as_bytes(),
            None,
            hl_codec::CodecId::Hlz,
        )?;
        cluster.now = zput.completed_at;
        let acked = vec![
            AckedWrite {
                path: INPUT.to_string(),
                len: corpus.len() as u64,
                crc: Crc32::checksum(corpus.as_bytes()),
            },
            AckedWrite {
                path: INPUT_PACKED.to_string(),
                len: corpus.len() as u64,
                crc: Crc32::checksum(corpus.as_bytes()),
            },
        ];

        // Ground truth from the LocalJobRunner analogue, cross-checked
        // against the generator's own tally.
        let local = LocalRunner::serial().run(
            &wordcount(INPUT, "/out/_local", 2),
            &[("corpus.txt".to_string(), corpus.into_bytes())],
            &SideFiles::new(),
        )?;
        let truth = oracle::parse_counts(&local.output.join("\n"));

        let mut runner = ChaosRunner {
            cluster,
            campus,
            plan,
            pack,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x52554e), // "RUN"
            rot: BitRot::new(seed, 1.0),
            truth,
            acked,
            open_writers: Vec::new(),
            corruptions: Vec::new(),
            counters: Counters::new(),
            violations: Vec::new(),
            injected: 0,
            session_ports,
            jobs_ok: 0,
            jobs_failed: 0,
            pending_leak: None,
            ghost_seq: 0,
            storm_seq: 0,
        };
        if runner.truth != expected {
            runner.violate(
                "ground-truth",
                "LocalRunner output disagrees with the corpus generator's tally".into(),
            );
        }
        Ok(runner)
    }

    pub(crate) fn violate(&mut self, oracle: &'static str, detail: String) {
        let now = self.cluster.now;
        self.cluster.log.log(now, "chaos", format!("VIOLATION [{oracle}] {detail}"));
        self.violations.push(Violation { oracle, detail });
    }

    // ------------------------------------------------------------- rounds

    fn round(&mut self, round: u32) {
        let now = self.cluster.now;
        self.cluster.log.log(now, "chaos", format!("--- round {round} ---"));
        let faults: Vec<Fault> = self.plan.at(round).cloned().collect();
        for fault in faults {
            self.inject(fault);
        }
        // Let the daemon protocol digest the damage: heartbeats, the
        // dead-node sweep, re-replication.
        let from = self.cluster.now;
        let until = from + SimDuration::from_secs(ROUND_PROTOCOL_SECS);
        self.cluster.dfs.run_protocol(&mut self.cluster.net, from, until);
        self.cluster.now = until;
        self.campus.advance_to(until);
        // The round's workload, alternating the combiner variant. The
        // compressed-path pack reads the framed corpus and compresses map
        // output, driving every codec byte path under fault pressure.
        let out = format!("/out/r{round}");
        let leaking = self.pending_leak.take().is_some();
        let packed = self.pack == ScenarioPack::CompressedPath;
        let input = if packed { INPUT_PACKED } else { INPUT };
        if round.is_multiple_of(2) {
            let mut job = wordcount(input, &out, 2);
            job.conf.leaks_memory = leaking;
            job.conf.compress_map_output = packed;
            self.drive(&job);
        } else {
            let mut job = wordcount_combiner(input, &out, 2);
            job.conf.leaks_memory = leaking;
            job.conf.compress_map_output = packed;
            self.drive(&job);
        }
    }

    fn drive<M, R, C>(&mut self, job: &Job<M, R, C>)
    where
        M: Mapper,
        R: Reducer<KIn = M::KOut, VIn = M::VOut>,
        C: Combiner<K = M::KOut, V = M::VOut>,
    {
        let out = job.conf.output_path.clone();
        match self.cluster.run_job(job) {
            Ok(_) => {
                self.jobs_ok += 1;
                self.verify_job_output(&out);
            }
            Err(e) if oracle::is_clean_failure(&e) => {
                self.jobs_failed += 1;
                let now = self.cluster.now;
                self.cluster.log.log(now, "chaos", format!("job for {out} failed cleanly: {e}"));
            }
            Err(e) => {
                self.jobs_failed += 1;
                self.violate("clean-failure", format!("job for {out} died uncleanly: {e}"));
            }
        }
    }

    /// Oracle 2, success half: a job that says it succeeded must have
    /// written readable output equal to the LocalRunner ground truth.
    /// Each part file read here becomes an acknowledged write for the
    /// durability oracle.
    fn verify_job_output(&mut self, out: &str) {
        let parts = match self.cluster.dfs.namenode.list(out) {
            Ok(rows) => rows,
            Err(e) => return self.violate("ground-truth", format!("list {out}: {e}")),
        };
        let mut text = String::new();
        for row in parts.into_iter().filter(|r| !r.is_dir) {
            let now = self.cluster.now;
            match self.cluster.dfs.read(&mut self.cluster.net, now, &row.path, None) {
                Ok(got) => {
                    self.cluster.now = got.completed_at;
                    self.acked.push(AckedWrite {
                        path: row.path.clone(),
                        len: got.value.len() as u64,
                        crc: Crc32::checksum(&got.value),
                    });
                    match String::from_utf8(got.value) {
                        Ok(s) => text.push_str(&s),
                        Err(_) => self.violate("ground-truth", format!("{}: not UTF-8", row.path)),
                    }
                }
                Err(e) => self.violate(
                    "durability",
                    format!("{}: unreadable right after job success: {e}", row.path),
                ),
            }
        }
        if oracle::parse_counts(&text) != self.truth {
            self.violate(
                "ground-truth",
                format!("{out}: successful job's output disagrees with LocalRunner"),
            );
        }
    }

    // ---------------------------------------------------------- injection

    fn inject(&mut self, fault: Fault) {
        let now = self.cluster.now;
        self.cluster.log.log(now, "chaos", format!("inject {fault}"));
        self.counters.incr("Chaos", fault.label(), 1);
        // Mirror into the metrics registry: the metrics oracle reconciles
        // the "chaos" daemon's counters against the plan, and the mirror
        // lives on the JobTracker registry so it survives daemon restarts.
        self.cluster.metrics.incr("chaos", fault.label(), 1);
        self.injected += 1;
        match fault {
            Fault::KillDaemon { kind, node } => match kind {
                DaemonKind::TaskTracker => {
                    let _ = self.cluster.crash_tracker(node);
                }
                DaemonKind::DataNode => self.cluster.dfs.crash_datanode(node),
                DaemonKind::JobTracker => self.cluster.crash_jobtracker(),
                // Killing the NameNode *is* the restart drill: the journal
                // is durable, so down-then-up is one composite event.
                DaemonKind::NameNode => self.restart_namenode(),
            },
            Fault::HeapLeak { rate } => {
                for node in self.cluster.dfs.datanode_ids() {
                    if let Some(t) = self.cluster.tracker_mut(node) {
                        t.health.heap.leak_per_buggy_task = rate;
                    }
                }
                self.pending_leak = Some(rate);
            }
            Fault::CorruptBlock { victim } => self.corrupt_block(victim),
            Fault::GhostDaemon { node, port } => self.ghost_daemon(node, port),
            Fault::RestartNameNode => self.restart_namenode(),
            Fault::SlowNode { node, factor_pct } => {
                self.cluster.set_slow_node(node, f64::from(factor_pct) / 100.0);
            }
            Fault::RestartDaemons => self.restart_daemons(),
            Fault::KillPipelineDatanode { after_stores } => {
                self.storm_write(PipelineFault::KillTarget { after_stores })
            }
            Fault::WriterCrash { after_blocks } => {
                self.storm_write(PipelineFault::CrashWriter { after_blocks })
            }
            Fault::SlowPipelineAck { after_stores } => {
                self.storm_write(PipelineFault::SlowAck { after_stores })
            }
            // The degrade family installs time-varying performance models
            // in the network layer; every disk/NIC charge from here on
            // samples them lazily, so traces stay replay-identical.
            Fault::DegradeNode { node, floor_pct, ramp_secs } => {
                self.cluster.net.set_node_model(
                    node,
                    DegradeModel::Decay {
                        from: now,
                        ramp: SimDuration::from_secs(u64::from(ramp_secs)),
                        floor: PerfProfile::uniform(floor_pct.saturating_mul(100)),
                    },
                );
            }
            Fault::NoisyNeighbor { node, slow_pct, window_secs } => {
                self.cluster.net.set_node_model(
                    node,
                    DegradeModel::Window {
                        from: now,
                        until: now + SimDuration::from_secs(u64::from(window_secs)),
                        during: PerfProfile::uniform(slow_pct.saturating_mul(100)),
                    },
                );
            }
            Fault::FlakyNic { node, nic_pct, period_secs } => {
                let half = SimDuration::from_secs(u64::from(period_secs));
                self.cluster.net.set_node_model(
                    node,
                    DegradeModel::Periodic {
                        from: now,
                        on: half,
                        off: half,
                        during: PerfProfile {
                            cpu_mult: PerfProfile::NOMINAL_BP,
                            disk_mult: PerfProfile::NOMINAL_BP,
                            nic_mult: nic_pct.saturating_mul(100).clamp(1, PerfProfile::NOMINAL_BP),
                        },
                    },
                );
            }
        }
    }

    /// Arm `fault` against the write path, then perform a fresh multi-block
    /// write so it fires mid-pipeline. A surviving write becomes an
    /// acknowledged write (the durability oracle holds it to full CRC); a
    /// write whose client died leaves the file open under its lease, and
    /// the lease-recovery oracle takes over from there.
    fn storm_write(&mut self, fault: PipelineFault) {
        let path = format!("/in/storm-{}.txt", self.storm_seq);
        self.storm_seq += 1;
        let blocks = self.rng.gen_range(3..=6u64);
        let mut data = vec![0u8; (blocks * 2048) as usize];
        self.rng.fill_bytes(&mut data);
        let writer = NodeId(self.rng.gen_range(0..NODES));
        self.cluster.dfs.arm_pipeline_fault(fault);
        let now = self.cluster.now;
        match self.cluster.dfs.put(&mut self.cluster.net, now, &path, &data, Some(writer)) {
            Ok(t) => {
                self.cluster.now = t.completed_at;
                let at = t.completed_at;
                self.cluster.log.log(
                    at,
                    "chaos",
                    format!("storm write {path} survived the pipeline fault"),
                );
                self.acked.push(AckedWrite {
                    path,
                    len: data.len() as u64,
                    crc: Crc32::checksum(&data),
                });
            }
            Err(e) if oracle::is_clean_failure(&e) => {
                self.cluster.log.log(now, "chaos", format!("storm write {path} died: {e}"));
                if self.cluster.dfs.namenode.lease(&path).is_some() {
                    // Writer (or whole pipeline) gone, file still open:
                    // exactly the state lease recovery exists for.
                    self.open_writers.push((path, data));
                }
            }
            Err(e) => {
                self.violate("clean-failure", format!("storm write {path} died uncleanly: {e}"))
            }
        }
    }

    fn corrupt_block(&mut self, victim: u64) {
        let manifest = self.cluster.dfs.namenode.block_manifest();
        if manifest.is_empty() {
            let now = self.cluster.now;
            self.cluster.log.log(now, "chaos", "bit-rot found no blocks to chew on");
            return;
        }
        let idx = usize::try_from(victim % manifest.len() as u64).unwrap_or(0);
        let (id, _, _) = manifest[idx];
        let holders: Vec<NodeId> = self
            .cluster
            .dfs
            .namenode
            .block_locations(id)
            .into_iter()
            .filter(|&h| {
                self.cluster.dfs.datanode(h).map(|d| d.alive && d.has_block(id)).unwrap_or(false)
            })
            .collect();
        if holders.is_empty() {
            let now = self.cluster.now;
            self.cluster.log.log(now, "chaos", format!("blk_{} has no live replica to rot", id.0));
            return;
        }
        let holder = holders[self.rng.gen_range(0..holders.len())];
        let mut copy: Vec<u8> = match self.cluster.dfs.datanode(holder).and_then(|d| d.payload(id))
        {
            Some(BlockPayload::Real { data, .. }) => data.to_vec(),
            _ => {
                let now = self.cluster.now;
                self.cluster.log.log(now, "chaos", format!("blk_{} replica is synthetic", id.0));
                return;
            }
        };
        // BitRot picks the offset from its seeded stream (probability 1:
        // the plan already decided *that* this replica rots).
        let Some(offset) = self.rot.maybe_corrupt(&mut copy) else {
            let now = self.cluster.now;
            self.cluster.log.log(now, "chaos", format!("blk_{} is empty; nothing to rot", id.0));
            return;
        };
        if self
            .cluster
            .dfs
            .datanode_mut(holder)
            .map(|d| d.corrupt_block(id, offset))
            .unwrap_or(false)
        {
            self.corruptions.push((id.0, offset));
            let now = self.cluster.now;
            self.cluster.log.log(
                now,
                "chaos",
                format!("bit-rot flipped byte {offset} of blk_{} on {holder}", id.0),
            );
        }
    }

    fn ghost_daemon(&mut self, node: NodeId, port: u16) {
        let now = self.cluster.now;
        let owner = format!("ghost-{}-{}", self.plan.seed, self.ghost_seq);
        self.ghost_seq += 1;
        match self.campus.ports.bind(now, node, port, &owner) {
            Ok(()) => {
                self.campus.ports.orphan_owner(&owner);
                // A fresh session cannot take the squatted port...
                match self.campus.ports.bind(now, node, port, SESSION_OWNER) {
                    Err(HlError::PortInUse { .. }) => {}
                    Ok(()) => self.violate(
                        "ghost-ports",
                        format!("bind on {node}:{port} succeeded under a live ghost"),
                    ),
                    Err(e) => self
                        .violate("ghost-ports", format!("bind on {node}:{port} failed oddly: {e}")),
                }
                // ...and cannot hand-kill a ghost it does not own.
                if self.campus.ports.kill_own_ghost(node, port, SESSION_OWNER).is_ok() {
                    self.violate("ghost-ports", format!("killed a foreign ghost on {node}:{port}"));
                }
            }
            Err(HlError::PortInUse { .. }) => {
                self.cluster.log.log(now, "chaos", format!("{node}:{port} already squatted"));
            }
            Err(e) => self.violate("ghost-ports", format!("ghost bind on {node}:{port}: {e}")),
        }
    }

    fn restart_namenode(&mut self) {
        let now = self.cluster.now;
        match self.cluster.dfs.restart_all(&mut self.cluster.net, now) {
            Ok(t) => {
                self.cluster.now = t.completed_at;
                let at = t.completed_at;
                self.cluster.log.log(at, "chaos", "namenode recovered; safe mode exited");
            }
            Err(HlError::SafeMode(msg)) => {
                // The paper's corrupted cluster: safe mode never exits
                // because blocks are genuinely gone. A legal end state —
                // the oracles hold it to exactly that story.
                self.cluster.log.log(now, "chaos", format!("namenode stuck in safe mode: {msg}"));
            }
            Err(e) => self.violate("clean-failure", format!("restart_all died uncleanly: {e}")),
        }
    }

    /// The operator pass: revive every dead daemon, then re-teach the
    /// NameNode which replicas actually survived on disk. Heartbeats alone
    /// never carry block reports, so without this sync a revived DataNode
    /// holds blocks the NameNode no longer maps to it.
    fn restart_daemons(&mut self) {
        self.cluster.restart_dead_trackers();
        if !self.cluster.jobtracker.alive {
            self.cluster.restart_jobtracker();
        }
        for node in self.cluster.dfs.datanode_ids() {
            if let Some(dn) = self.cluster.dfs.datanode_mut(node) {
                if !dn.alive {
                    dn.restart();
                }
            }
        }
        self.sync_block_reports();
    }

    fn sync_block_reports(&mut self) {
        let now = self.cluster.now;
        for node in self.cluster.dfs.datanode_ids() {
            let Some((free, report)) = self
                .cluster
                .dfs
                .datanode(node)
                .filter(|d| d.alive)
                .map(|d| (d.free_bytes(), d.block_report()))
            else {
                continue;
            };
            self.cluster.dfs.namenode.heartbeat(now, node, free);
            self.cluster.dfs.namenode.process_block_report(now, node, &report);
        }
    }

    // ----------------------------------------------------------- teardown

    fn finish(mut self) -> ChaosReport {
        let now = self.cluster.now;
        self.cluster.log.log(now, "chaos", "--- teardown ---");
        // End-of-session operator pass: revive everything, run each
        // DataNode's integrity scan to quarantine lingering bit-rot, and
        // sync the surviving block map.
        self.restart_daemons();
        for node in self.cluster.dfs.datanode_ids() {
            if let Some(dn) = self.cluster.dfs.datanode_mut(node) {
                dn.scan_blocks();
            }
        }
        self.sync_block_reports();

        oracle::verify_lease_recovery(&mut self);
        oracle::verify_durability(&mut self);
        oracle::quiesce_replication(&mut self);
        oracle::verify_ports(&mut self);
        oracle::verify_accounting(&mut self);
        oracle::verify_metrics(&mut self);
        oracle::verify_scheduler(&mut self);
        oracle::verify_speculation(&mut self);

        // The replay fingerprint covers both event logs, the exact
        // corruption set, and the final metrics report — so a same-seed
        // double-run under `--verify-trace` also enforces byte-identical
        // metrics.
        let mut trace = self.cluster.log.to_string();
        trace.push_str(&self.campus.log.to_string());
        use std::fmt::Write as _;
        let _ = writeln!(trace, "corruptions: {:?}", self.corruptions);
        let metrics = self.cluster.metrics_snapshot();
        let _ = writeln!(trace, "{}", hl_metrics::MetricsReport(&metrics));
        let trace_hash = fnv1a(trace.as_bytes());

        ChaosReport {
            pack: self.pack,
            seed: self.plan.seed,
            planned: self.plan.len(),
            injected: self.injected,
            jobs_ok: self.jobs_ok,
            jobs_failed: self.jobs_failed,
            corruptions: self.corruptions,
            trace_hash,
            trace,
            violations: self.violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_runs_clean() {
        // An empty fault plan is the control group: jobs must succeed,
        // oracles must stay silent.
        let mut runner = ChaosRunner::new(ScenarioPack::Meltdown, 7).unwrap();
        runner.plan.faults.clear();
        for round in 0..runner.plan.rounds {
            runner.round(round);
        }
        let report = runner.finish();
        assert!(report.ok(), "control run violated: {:?}", report.violations);
        assert_eq!(report.jobs_ok, 4);
        assert_eq!(report.jobs_failed, 0);
        assert_eq!(report.injected, 0);
    }

    #[test]
    fn ghost_injection_blocks_rebind_until_cron() {
        let mut runner = ChaosRunner::new(ScenarioPack::GhostPorts, 3).unwrap();
        runner.ghost_daemon(NodeId(1), 50_100);
        assert_eq!(runner.campus.ports.ghosts_on(NodeId(1)), 1);
        assert!(runner.violations.is_empty(), "{:?}", runner.violations);
        // The teardown oracle sweeps it.
        oracle::verify_ports(&mut runner);
        assert!(runner.violations.is_empty(), "{:?}", runner.violations);
        assert!(runner.campus.ports.is_empty());
    }

    #[test]
    fn restart_sweep_keeps_counters_monotonic_without_double_counting() {
        use crate::plan::PlannedFault;
        // Two NameNode restarts plus a full daemon sweep: monotonic
        // counters must carry across every restart exactly once, while
        // the gauges rebuild from post-restart state.
        let mut runner = ChaosRunner::new(ScenarioPack::Meltdown, 13).unwrap();
        runner.plan.faults.clear();
        runner.plan.faults.push(PlannedFault { at: 0, fault: Fault::RestartNameNode });
        runner.plan.faults.push(PlannedFault { at: 1, fault: Fault::RestartDaemons });
        runner.plan.faults.push(PlannedFault {
            at: 2,
            fault: Fault::KillDaemon { kind: DaemonKind::NameNode, node: NodeId(0) },
        });
        for round in 0..runner.plan.rounds {
            runner.round(round);
        }
        let snap = runner.cluster.metrics_snapshot();
        assert_eq!(snap.counter("namenode", "restarts"), 2);
        assert!(snap.counter("namenode", "rpc.block_report") > 0);
        assert!(snap.counter("chaos", "RestartNameNode") == 1);
        // Safe mode was re-entered on each restart and exited again.
        assert_eq!(snap.counter("namenode", "safemode.entered"), 2);
        assert_eq!(snap.gauge("namenode", "safemode.on"), 0);
        let report = runner.finish();
        assert!(report.ok(), "restart sweep violated: {:?}", report.violations);
        // The metrics oracle re-ran the same reconciliation in finish(),
        // and the replay fingerprint now covers the rendered report.
        assert!(report.trace.contains("Name: namenode"));
        assert!(report.trace.contains("restarts"));
    }

    #[test]
    fn rotted_compressed_corpus_block_hits_the_crc_wall_before_decode() {
        let mut runner = ChaosRunner::new(ScenarioPack::CompressedPath, 17).unwrap();
        // Aim bit-rot at a block of the framed corpus specifically:
        // corrupt_block indexes the manifest by `victim % len`.
        let packed_blocks: Vec<hl_dfs::BlockId> = runner
            .cluster
            .dfs
            .file_blocks(INPUT_PACKED)
            .unwrap()
            .into_iter()
            .map(|(id, _, _)| id)
            .collect();
        let manifest = runner.cluster.dfs.namenode.block_manifest();
        let idx = manifest
            .iter()
            .position(|(id, _, _)| packed_blocks.contains(id))
            .expect("framed corpus staged into the block map");
        runner.corrupt_block(idx as u64);
        assert_eq!(runner.corruptions.len(), 1);
        let (block, _) = runner.corruptions[0];
        let id = hl_dfs::BlockId(block);
        assert!(packed_blocks.contains(&id), "rot landed on a framed block");
        // The rotted replica fails its chunk checksum — the wall stands
        // *before* any frame reaches the decoder.
        let bad = runner
            .cluster
            .dfs
            .datanode_ids()
            .into_iter()
            .filter_map(|n| runner.cluster.dfs.datanode(n))
            .filter(|d| d.has_block(id))
            .filter(|d| matches!(d.read_block(id), Err(HlError::ChecksumMismatch { .. })))
            .count();
        assert_eq!(bad, 1, "exactly one replica rotted");
        // A client read fails over to a clean replica and still decodes
        // the exact logical corpus.
        let now = runner.cluster.now;
        let got =
            runner.cluster.dfs.read(&mut runner.cluster.net, now, INPUT_PACKED, None).unwrap();
        assert_eq!(got.value.len() as u64, runner.acked[1].len);
        assert_eq!(Crc32::checksum(&got.value), runner.acked[1].crc);
    }

    #[test]
    fn compressed_path_pack_runs_clean_end_to_end() {
        let report = ChaosRunner::run(ScenarioPack::CompressedPath, 5).unwrap();
        assert!(report.ok(), "compressed-path seed 5 violated: {:?}", report.violations);
        assert!(!report.corruptions.is_empty() || report.injected > 0);
    }

    #[test]
    fn corrupt_block_records_offset_and_flips_disk() {
        let mut runner = ChaosRunner::new(ScenarioPack::BitRot, 11).unwrap();
        runner.corrupt_block(5);
        assert_eq!(runner.corruptions.len(), 1);
        let (block, _offset) = runner.corruptions[0];
        // The corrupt replica fails its checksum on direct read.
        let id = hl_dfs::BlockId(block);
        let bad = runner
            .cluster
            .dfs
            .datanode_ids()
            .into_iter()
            .filter_map(|n| runner.cluster.dfs.datanode(n))
            .filter(|d| d.has_block(id))
            .filter(|d| matches!(d.read_block(id), Err(HlError::ChecksumMismatch { .. })))
            .count();
        assert_eq!(bad, 1, "exactly one replica rotted");
    }
}
