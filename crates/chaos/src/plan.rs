//! Fault plans: declarative, seeded schedules of typed fault events.
//!
//! A [`FaultPlan`] is the whole story of one chaos run, decided *before*
//! the run starts: which daemon dies in which round, which block rots,
//! which port a ghost daemon squats on. Plans are pure data — they
//! implement [`Writable`] so a failing seed's schedule can be serialized
//! next to its trace and replayed byte-identically later.

use hl_cluster::failure::DaemonKind;
use hl_common::prelude::*;
use hl_common::writable::{read_vu64, write_vu64, Writable};

/// One typed fault event the runner knows how to inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// `kill -9` one daemon's JVM. TaskTracker kills leave the colocated
    /// DataNode running (and vice versa) — composing both is the planner's
    /// job, crashing both at once is what [`Fault::HeapLeak`] is for.
    KillDaemon {
        /// Which daemon.
        kind: DaemonKind,
        /// On which node (ignored for the singleton JobTracker/NameNode).
        node: NodeId,
    },
    /// The round's workload job leaks `rate` bytes of daemon heap per
    /// task — the paper's Version-1 meltdown mechanism, which OOM-crashes
    /// the TaskTracker *and* its colocated DataNode.
    HeapLeak {
        /// Bytes pinned into the hosting daemon per buggy task.
        rate: u64,
    },
    /// Flip one byte of one stored replica behind the checksums' back.
    /// The victim block/holder/offset are chosen by the runner's seeded
    /// [`BitRot`](hl_cluster::failure::BitRot) stream at injection time.
    CorruptBlock {
        /// Selects the victim among the blocks stored at injection time
        /// (taken modulo the block count, so any value is valid).
        victim: u64,
    },
    /// Orphan-bind a port: a ghost daemon from a departed session squats
    /// on `port` until the campus cleanup cron sweeps it.
    GhostDaemon {
        /// Node whose port is squatted.
        node: NodeId,
        /// The squatted TCP port.
        port: u16,
    },
    /// Crash the NameNode and recover it from fsimage + edit-log replay:
    /// every DataNode rescans and re-reports, and the cluster sits in
    /// safe mode until enough blocks are accounted for.
    RestartNameNode,
    /// Node becomes a straggler: its task durations multiply by
    /// `factor_pct / 100` (e.g. `800` → 8× slower).
    SlowNode {
        /// Which node drags.
        node: NodeId,
        /// Slowdown factor in percent (100 = no change).
        factor_pct: u32,
    },
    /// Operator pass: restart every dead TaskTracker, DataNode, and the
    /// JobTracker, then sync block reports so the NameNode re-learns
    /// which replicas survived on disk.
    RestartDaemons,
    /// Arm the write path, then write a fresh multi-block file: the
    /// DataNode receiving replica store number `after_stores` crashes the
    /// instant the bytes land, forcing client pipeline recovery and
    /// leaving a stale-genstamp replica for block reports to invalidate.
    KillPipelineDatanode {
        /// Zero-based replica-store index (across the whole write, in
        /// pipeline order) whose target dies.
        after_stores: u32,
    },
    /// Arm the write path, then write a file whose writing client dies
    /// after `after_blocks` complete blocks — the file stays open under
    /// its lease until the NameNode's lease recovery finalizes it.
    WriterCrash {
        /// Blocks fully pipelined before the writer vanishes.
        after_blocks: u32,
    },
    /// Arm the write path, then write a file where replica store number
    /// `after_stores` succeeds but its ack never comes back: the client
    /// excludes a perfectly live DataNode and its replica goes stale.
    SlowPipelineAck {
        /// Zero-based replica-store index whose ack times out.
        after_stores: u32,
    },
    /// Progressive straggler: from injection the node's CPU, disk, and
    /// NIC slide linearly from nominal down to `floor_pct`% of nominal
    /// over `ramp_secs` — a VM whose host gets steadily oversubscribed.
    DegradeNode {
        /// Which node decays.
        node: NodeId,
        /// Terminal speed as a percentage of nominal (e.g. `20` → the
        /// node bottoms out at one fifth speed).
        floor_pct: u32,
        /// Seconds of virtual time the slide takes.
        ramp_secs: u32,
    },
    /// Noisy neighbor: a co-tenant burst pins the node to `slow_pct`% of
    /// nominal for a `window_secs` window starting at injection, after
    /// which the node recovers completely.
    NoisyNeighbor {
        /// Which node suffers the interference.
        node: NodeId,
        /// Speed during the window as a percentage of nominal.
        slow_pct: u32,
        /// Window length in seconds of virtual time.
        window_secs: u32,
    },
    /// Flaky NIC: the node's network interface oscillates between nominal
    /// and `nic_pct`% of nominal bandwidth every `period_secs` (square
    /// wave from injection) — CPU and disk are untouched.
    FlakyNic {
        /// Which node's NIC flaps.
        node: NodeId,
        /// NIC bandwidth during a bad half-period, percent of nominal.
        nic_pct: u32,
        /// Half-period of the flapping in seconds of virtual time.
        period_secs: u32,
    },
}

impl Fault {
    /// Stable counter/trace label, one per variant (the accounting oracle
    /// matches injections against these).
    pub fn label(&self) -> &'static str {
        match self {
            Fault::KillDaemon { .. } => "KillDaemon",
            Fault::HeapLeak { .. } => "HeapLeak",
            Fault::CorruptBlock { .. } => "CorruptBlock",
            Fault::GhostDaemon { .. } => "GhostDaemon",
            Fault::RestartNameNode => "RestartNameNode",
            Fault::SlowNode { .. } => "SlowNode",
            Fault::RestartDaemons => "RestartDaemons",
            Fault::KillPipelineDatanode { .. } => "KillPipelineDatanode",
            Fault::WriterCrash { .. } => "WriterCrash",
            Fault::SlowPipelineAck { .. } => "SlowPipelineAck",
            Fault::DegradeNode { .. } => "DegradeNode",
            Fault::NoisyNeighbor { .. } => "NoisyNeighbor",
            Fault::FlakyNic { .. } => "FlakyNic",
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::KillDaemon { kind, node } => write!(f, "KillDaemon({} on {node})", kind.name()),
            Fault::HeapLeak { rate } => write!(f, "HeapLeak({rate} B/task)"),
            Fault::CorruptBlock { victim } => write!(f, "CorruptBlock(victim {victim})"),
            Fault::GhostDaemon { node, port } => write!(f, "GhostDaemon({node}:{port})"),
            Fault::RestartNameNode => write!(f, "RestartNameNode"),
            Fault::SlowNode { node, factor_pct } => {
                write!(f, "SlowNode({node} at {factor_pct}%)")
            }
            Fault::RestartDaemons => write!(f, "RestartDaemons"),
            Fault::KillPipelineDatanode { after_stores } => {
                write!(f, "KillPipelineDatanode(store {after_stores})")
            }
            Fault::WriterCrash { after_blocks } => {
                write!(f, "WriterCrash(after {after_blocks} block(s))")
            }
            Fault::SlowPipelineAck { after_stores } => {
                write!(f, "SlowPipelineAck(store {after_stores})")
            }
            Fault::DegradeNode { node, floor_pct, ramp_secs } => {
                write!(f, "DegradeNode({node} to {floor_pct}% over {ramp_secs}s)")
            }
            Fault::NoisyNeighbor { node, slow_pct, window_secs } => {
                write!(f, "NoisyNeighbor({node} at {slow_pct}% for {window_secs}s)")
            }
            Fault::FlakyNic { node, nic_pct, period_secs } => {
                write!(f, "FlakyNic({node} nic {nic_pct}% every {period_secs}s)")
            }
        }
    }
}

fn kind_tag(kind: DaemonKind) -> u8 {
    match kind {
        DaemonKind::NameNode => 0,
        DaemonKind::DataNode => 1,
        DaemonKind::JobTracker => 2,
        DaemonKind::TaskTracker => 3,
    }
}

fn kind_from_tag(tag: u8) -> Result<DaemonKind> {
    Ok(match tag {
        0 => DaemonKind::NameNode,
        1 => DaemonKind::DataNode,
        2 => DaemonKind::JobTracker,
        3 => DaemonKind::TaskTracker,
        t => return Err(HlError::Codec(format!("unknown daemon kind tag {t}"))),
    })
}

impl Writable for Fault {
    fn write(&self, buf: &mut Vec<u8>) {
        match self {
            Fault::KillDaemon { kind, node } => {
                buf.push(0);
                buf.push(kind_tag(*kind));
                write_vu64(node.0 as u64, buf);
            }
            Fault::HeapLeak { rate } => {
                buf.push(1);
                write_vu64(*rate, buf);
            }
            Fault::CorruptBlock { victim } => {
                buf.push(2);
                write_vu64(*victim, buf);
            }
            Fault::GhostDaemon { node, port } => {
                buf.push(3);
                write_vu64(node.0 as u64, buf);
                write_vu64(*port as u64, buf);
            }
            Fault::RestartNameNode => buf.push(4),
            Fault::SlowNode { node, factor_pct } => {
                buf.push(5);
                write_vu64(node.0 as u64, buf);
                write_vu64(*factor_pct as u64, buf);
            }
            Fault::RestartDaemons => buf.push(6),
            Fault::KillPipelineDatanode { after_stores } => {
                buf.push(7);
                write_vu64(*after_stores as u64, buf);
            }
            Fault::WriterCrash { after_blocks } => {
                buf.push(8);
                write_vu64(*after_blocks as u64, buf);
            }
            Fault::SlowPipelineAck { after_stores } => {
                buf.push(9);
                write_vu64(*after_stores as u64, buf);
            }
            Fault::DegradeNode { node, floor_pct, ramp_secs } => {
                buf.push(10);
                write_vu64(node.0 as u64, buf);
                write_vu64(*floor_pct as u64, buf);
                write_vu64(*ramp_secs as u64, buf);
            }
            Fault::NoisyNeighbor { node, slow_pct, window_secs } => {
                buf.push(11);
                write_vu64(node.0 as u64, buf);
                write_vu64(*slow_pct as u64, buf);
                write_vu64(*window_secs as u64, buf);
            }
            Fault::FlakyNic { node, nic_pct, period_secs } => {
                buf.push(12);
                write_vu64(node.0 as u64, buf);
                write_vu64(*nic_pct as u64, buf);
                write_vu64(*period_secs as u64, buf);
            }
        }
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        let tag = u8::read(buf)?;
        Ok(match tag {
            0 => Fault::KillDaemon {
                kind: kind_from_tag(u8::read(buf)?)?,
                node: NodeId(read_narrow(buf, "node id")?),
            },
            1 => Fault::HeapLeak { rate: read_vu64(buf)? },
            2 => Fault::CorruptBlock { victim: read_vu64(buf)? },
            3 => Fault::GhostDaemon {
                node: NodeId(read_narrow(buf, "node id")?),
                port: read_narrow::<u16>(buf, "port")?,
            },
            4 => Fault::RestartNameNode,
            5 => Fault::SlowNode {
                node: NodeId(read_narrow(buf, "node id")?),
                factor_pct: read_narrow(buf, "slow factor")?,
            },
            6 => Fault::RestartDaemons,
            7 => Fault::KillPipelineDatanode { after_stores: read_narrow(buf, "store index")? },
            8 => Fault::WriterCrash { after_blocks: read_narrow(buf, "block count")? },
            9 => Fault::SlowPipelineAck { after_stores: read_narrow(buf, "store index")? },
            10 => Fault::DegradeNode {
                node: NodeId(read_narrow(buf, "node id")?),
                floor_pct: read_narrow(buf, "floor pct")?,
                ramp_secs: read_narrow(buf, "ramp secs")?,
            },
            11 => Fault::NoisyNeighbor {
                node: NodeId(read_narrow(buf, "node id")?),
                slow_pct: read_narrow(buf, "slow pct")?,
                window_secs: read_narrow(buf, "window secs")?,
            },
            12 => Fault::FlakyNic {
                node: NodeId(read_narrow(buf, "node id")?),
                nic_pct: read_narrow(buf, "nic pct")?,
                period_secs: read_narrow(buf, "period secs")?,
            },
            t => return Err(HlError::Codec(format!("unknown fault tag {t}"))),
        })
    }
}

/// Read a varint and narrow it checked (codec error on overflow, never a
/// silent truncation).
fn read_narrow<T: TryFrom<u64>>(buf: &mut &[u8], what: &str) -> Result<T> {
    let v = read_vu64(buf)?;
    T::try_from(v).map_err(|_| HlError::Codec(format!("{what} {v} out of range")))
}

/// A fault scheduled for a specific round of the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedFault {
    /// Zero-based round the fault fires at (before that round's job).
    pub at: u32,
    /// What happens.
    pub fault: Fault,
}

impl Writable for PlannedFault {
    fn write(&self, buf: &mut Vec<u8>) {
        write_vu64(self.at as u64, buf);
        self.fault.write(buf);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(PlannedFault { at: read_narrow(buf, "round")?, fault: Fault::read(buf)? })
    }
}

/// A complete, seeded fault schedule for one chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed every random choice in the run derives from.
    pub seed: u64,
    /// Number of workload rounds the runner drives.
    pub rounds: u32,
    /// The schedule, in (round, generation) order.
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// Faults scheduled for `round`, in plan order.
    pub fn at(&self, round: u32) -> impl Iterator<Item = &Fault> {
        self.faults.iter().filter(move |p| p.at == round).map(|p| &p.fault)
    }

    /// Total scheduled fault count.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

impl Writable for FaultPlan {
    fn write(&self, buf: &mut Vec<u8>) {
        write_vu64(self.seed, buf);
        write_vu64(self.rounds as u64, buf);
        self.faults.write(buf);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(FaultPlan {
            seed: read_vu64(buf)?,
            rounds: read_narrow(buf, "rounds")?,
            faults: Vec::<PlannedFault>::read(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writable_round_trips() {
        let faults = vec![
            Fault::KillDaemon { kind: DaemonKind::TaskTracker, node: NodeId(3) },
            Fault::KillDaemon { kind: DaemonKind::DataNode, node: NodeId(0) },
            Fault::KillDaemon { kind: DaemonKind::JobTracker, node: NodeId(0) },
            Fault::KillDaemon { kind: DaemonKind::NameNode, node: NodeId(0) },
            Fault::HeapLeak { rate: 192 * 1024 * 1024 },
            Fault::CorruptBlock { victim: u64::MAX },
            Fault::GhostDaemon { node: NodeId(7), port: 50060 },
            Fault::RestartNameNode,
            Fault::SlowNode { node: NodeId(2), factor_pct: 800 },
            Fault::RestartDaemons,
            Fault::KillPipelineDatanode { after_stores: 0 },
            Fault::KillPipelineDatanode { after_stores: u32::MAX },
            Fault::WriterCrash { after_blocks: 3 },
            Fault::SlowPipelineAck { after_stores: 11 },
            Fault::DegradeNode { node: NodeId(1), floor_pct: 20, ramp_secs: 120 },
            Fault::NoisyNeighbor { node: NodeId(4), slow_pct: 50, window_secs: 90 },
            Fault::FlakyNic { node: NodeId(0), nic_pct: 25, period_secs: 30 },
        ];
        for f in &faults {
            assert_eq!(&Fault::from_bytes(&f.to_bytes()).unwrap(), f);
        }

        let planned = PlannedFault { at: 2, fault: Fault::RestartNameNode };
        assert_eq!(PlannedFault::from_bytes(&planned.to_bytes()).unwrap(), planned);

        let plan = FaultPlan {
            seed: 0xDEAD_BEEF,
            rounds: 4,
            faults: faults
                .into_iter()
                .enumerate()
                .map(|(i, fault)| PlannedFault { at: i as u32 % 4, fault })
                .collect(),
        };
        assert_eq!(FaultPlan::from_bytes(&plan.to_bytes()).unwrap(), plan);
    }

    #[test]
    fn unknown_tags_are_codec_errors() {
        assert!(Fault::from_bytes(&[99]).is_err());
        assert!(Fault::from_bytes(&[0, 99, 0]).is_err(), "bad daemon kind");
        // Truncated input.
        assert!(Fault::from_bytes(&[1]).is_err());
        // Port out of range.
        let mut buf = vec![3, 0];
        hl_common::writable::write_vu64(70_000, &mut buf);
        assert!(Fault::from_bytes(&buf).is_err());
    }

    #[test]
    fn plan_round_filter() {
        let plan = FaultPlan {
            seed: 1,
            rounds: 3,
            faults: vec![
                PlannedFault { at: 0, fault: Fault::RestartNameNode },
                PlannedFault { at: 2, fault: Fault::RestartDaemons },
                PlannedFault { at: 0, fault: Fault::HeapLeak { rate: 1 } },
            ],
        };
        assert_eq!(plan.at(0).count(), 2);
        assert_eq!(plan.at(1).count(), 0);
        assert_eq!(plan.at(2).count(), 1);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
    }
}
