//! Determinism regression tests: a chaos run is a pure function of
//! `(pack, seed)`. If any of these fail, seed replay is broken and every
//! soak result becomes unreproducible — treat that as a P0 harness bug.

use hl_chaos::{ChaosRunner, ScenarioPack};

#[test]
fn same_seed_same_corruption_set() {
    // The BitRot pack's corrupted (block, offset) pairs must be
    // byte-identical across runs: the schedule picks the victims, the
    // seeded BitRot stream picks the offsets, and nothing else may leak in.
    let a = ChaosRunner::run(ScenarioPack::BitRot, 38).unwrap();
    let b = ChaosRunner::run(ScenarioPack::BitRot, 38).unwrap();
    assert!(!a.corruptions.is_empty(), "seed 38 must actually corrupt something");
    assert_eq!(a.corruptions, b.corruptions);
}

#[test]
fn same_seed_same_trace() {
    // Full event-trace equality, not just the hash: any drift in virtual
    // timestamps, job ids, or log wording shows up here with a real diff.
    let a = ChaosRunner::run(ScenarioPack::Meltdown, 5).unwrap();
    let b = ChaosRunner::run(ScenarioPack::Meltdown, 5).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.trace_hash, b.trace_hash);
}

#[test]
fn different_seeds_diverge() {
    let a = ChaosRunner::run(ScenarioPack::RestartDrill, 0).unwrap();
    let b = ChaosRunner::run(ScenarioPack::RestartDrill, 1).unwrap();
    assert_ne!(a.trace_hash, b.trace_hash, "distinct seeds must draw distinct runs");
}

#[test]
fn all_packs_smoke_clean() {
    // A miniature soak: every pack, a few seeds, zero violations.
    for pack in ScenarioPack::ALL {
        for seed in 0..3 {
            let report = ChaosRunner::run(pack, seed).unwrap();
            assert!(report.ok(), "{pack} seed {seed} violated: {:?}", report.violations);
            assert_eq!(report.injected as usize, report.planned);
        }
    }
}

#[test]
fn write_storm_same_seed_same_trace() {
    // The write-storm pack adds client-side RNG (storm payloads, writer
    // choice, pipeline fault arming) on top of the plan RNG — all of it
    // must replay bit-identically.
    let a = ChaosRunner::run(ScenarioPack::WriteStorm, 3).unwrap();
    let b = ChaosRunner::run(ScenarioPack::WriteStorm, 3).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.trace_hash, b.trace_hash);
    // Seed 3's plan crashes a writer mid-file; the recovery must be
    // visible in the trace, not just survive silently.
    assert!(a.trace.contains("lease-recovered"), "missing lease-recovery line");
}

#[test]
fn write_storm_seeds_pass_all_oracles() {
    for seed in 0..8 {
        let r = ChaosRunner::run(ScenarioPack::WriteStorm, seed).unwrap();
        assert!(r.ok(), "write-storm seed {seed} violated: {:?}", r.violations);
        assert_eq!(r.injected as usize, r.planned);
    }
}
