//! A TPCx-HS-style three-phase sort benchmark: HSGen → HSSort → HSValidate.
//!
//! TPCx-HS is the industry-standard Hadoop sort benchmark: generate a
//! seeded dataset, totally-order-sort it, then *validate* the sorted
//! output with a second MapReduce job that checks global order and
//! re-derives a dataset checksum. Scaled down to course size, the three
//! phases map onto this repo's stack as:
//!
//! * **hsgen** — a pinned-seed corpus from [`CorpusGen`], staged into the
//!   DFS (the generator's exact word counts are the ground truth);
//! * **hssort** — a total-order sorted word count using the range
//!   partitioner from the [`crate::terasort`] lecture;
//! * **hsvalidate** — a MapReduce job over hssort's output directory:
//!   each map task scans one split, tracking first/last key, local
//!   sortedness, a CRC32 sum, and a record count, and emits a single
//!   summary record from `cleanup`; one reducer receives the summaries
//!   ordered by first key (the shuffle sorts them) and checks that every
//!   split boundary preserves the global order.
//!
//! The validator's checksum is an order-independent wrapping sum of
//! per-line CRC32s (exactly TPCx-HS's trick: sum-of-checksums plus
//! boundary ordering together certify the sort), so it can be compared
//! against [`expected_digest`] computed from the generator's truth table
//! without re-sorting anything.
//!
//! The `tpcxhs` cell of `bench-snapshot` runs the suite 2×2 — speculative
//! execution on/off × homogeneous/skewed cluster — which is the
//! degraded-mode ablation in EXPERIMENTS.md.

use std::collections::BTreeMap;

use hl_common::checksum::Crc32;
use hl_datagen::corpus::CorpusGen;
use hl_mapreduce::api::{MapContext, Mapper, ReduceContext, Reducer};
use hl_mapreduce::job::{Job, JobConf};

use crate::terasort::{sample_cut_points, CountReducer, TokenMapper};

/// HSGen: the pinned dataset. Returns the corpus text and the exact
/// word-count truth table (the "expected database" TPCx-HS would keep).
pub fn hsgen(seed: u64, words: usize) -> (String, BTreeMap<String, u64>) {
    CorpusGen::new(seed).with_vocab(400).generate(words)
}

/// HSSort: total-order sorted word count over the staged corpus, range
/// partitioned by cut points sampled from the input (the inline sampler
/// job). Concatenating `part-r-*` in partition order yields a globally
/// sorted file set.
pub fn hssort(
    input: &str,
    output: &str,
    corpus: &str,
    reduces: usize,
) -> Job<TokenMapper, CountReducer, hl_mapreduce::api::NoCombiner<String, u64>> {
    let cut_points = sample_cut_points(corpus, reduces);
    let reduces = cut_points.len() + 1;
    Job::new(
        JobConf::new("hssort").input(input).output(output).reduces(reduces),
        || TokenMapper,
        || CountReducer,
    )
    .partitioned_by(move |key: &String, _bytes, n| {
        cut_points.partition_point(|c| c.as_str() <= key.as_str()).min(n - 1)
    })
}

/// Per-split scanner for HSValidate: accumulates the split's first/last
/// key, local sortedness, CRC32 sum, and record count, and emits one
/// summary pair from `cleanup` keyed by the split's first key.
#[derive(Default)]
pub struct ValidateMapper {
    first: Option<String>,
    last: Option<String>,
    sorted: bool,
    crc_sum: u64,
    records: u64,
}

impl Mapper for ValidateMapper {
    type KOut = String;
    type VOut = String;

    fn setup(&mut self, _ctx: &mut MapContext<String, String>) {
        self.sorted = true;
    }

    fn map(&mut self, _offset: u64, line: &str, _ctx: &mut MapContext<String, String>) {
        let key = line.split('\t').next().unwrap_or(line).to_string();
        if let Some(last) = &self.last {
            if key.as_str() <= last.as_str() {
                self.sorted = false;
            }
        }
        if self.first.is_none() {
            self.first = Some(key.clone());
        }
        self.crc_sum = self.crc_sum.wrapping_add(u64::from(Crc32::checksum(line.as_bytes())));
        self.records += 1;
        self.last = Some(key);
    }

    fn cleanup(&mut self, ctx: &mut MapContext<String, String>) {
        // Empty splits contribute nothing — there is no boundary to check.
        if let (Some(first), Some(last)) = (self.first.take(), self.last.take()) {
            let sorted = if self.sorted { 1 } else { 0 };
            ctx.emit(first, format!("{last}|{sorted}|{}|{}", self.crc_sum, self.records));
        }
    }
}

/// The single HSValidate reducer: receives split summaries sorted by first
/// key (hssort's output order), checks every boundary and every split's
/// local order, and emits one verdict line
/// `result \t SORTED|records|crc_sum` (or `UNSORTED`).
#[derive(Default)]
pub struct ValidateReducer {
    prev_last: Option<String>,
    ordered: bool,
    crc_sum: u64,
    records: u64,
    splits: u64,
}

impl Reducer for ValidateReducer {
    type KIn = String;
    type VIn = String;

    fn setup(&mut self, _ctx: &mut ReduceContext) {
        self.ordered = true;
    }

    fn reduce(&mut self, first: String, values: Vec<String>, _ctx: &mut ReduceContext) {
        for summary in values {
            let mut parts = summary.split('|');
            let last = parts.next().unwrap_or_default().to_string();
            let sorted = parts.next() == Some("1");
            let crc: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
            let count: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
            if !sorted || last < first {
                self.ordered = false;
            }
            // Distinct words mean split boundaries must be strict.
            if let Some(prev) = &self.prev_last {
                if first.as_str() <= prev.as_str() {
                    self.ordered = false;
                }
            }
            self.crc_sum = self.crc_sum.wrapping_add(crc);
            self.records += count;
            self.splits += 1;
            self.prev_last = Some(match self.prev_last.take() {
                Some(p) if p > last => p,
                _ => last,
            });
        }
    }

    fn cleanup(&mut self, ctx: &mut ReduceContext) {
        let verdict = if self.ordered { "SORTED" } else { "UNSORTED" };
        ctx.emit("result", format!("{verdict}|{}|{}|{}", self.records, self.crc_sum, self.splits));
    }
}

/// HSValidate as a job: point `input` at hssort's output *directory* (the
/// engine expands it to the `part-r-*` files) and read the single verdict
/// line from the output.
pub fn hsvalidate(
    input: &str,
    output: &str,
) -> Job<ValidateMapper, ValidateReducer, hl_mapreduce::api::NoCombiner<String, String>> {
    Job::new(
        JobConf::new("hsvalidate").input(input).output(output).reduces(1),
        ValidateMapper::default,
        ValidateReducer::default,
    )
}

/// The verdict HSValidate reports, parsed from its one output line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HsVerdict {
    /// True when every split was locally sorted and every boundary held.
    pub sorted: bool,
    /// Total records across all splits.
    pub records: u64,
    /// Wrapping sum of per-line CRC32s.
    pub crc_sum: u64,
    /// Number of non-empty splits scanned.
    pub splits: u64,
}

/// Parse the validator's output lines into a verdict.
pub fn parse_verdict(output: &[String]) -> Option<HsVerdict> {
    let line = output.iter().find(|l| l.starts_with("result\t"))?;
    let mut parts = line.strip_prefix("result\t")?.split('|');
    let sorted = match parts.next()? {
        "SORTED" => true,
        "UNSORTED" => false,
        _ => return None,
    };
    Some(HsVerdict {
        sorted,
        records: parts.next()?.parse().ok()?,
        crc_sum: parts.next()?.parse().ok()?,
        splits: parts.next()?.parse().ok()?,
    })
}

/// What HSValidate must report for a *correct* sort of the generated
/// dataset: one record per distinct word, CRC summed over the exact
/// `word \t count` lines hssort emits.
pub fn expected_digest(truth: &BTreeMap<String, u64>) -> (u64, u64) {
    let mut crc_sum = 0u64;
    for (word, count) in truth {
        let line = format!("{word}\t{count}");
        crc_sum = crc_sum.wrapping_add(u64::from(Crc32::checksum(line.as_bytes())));
    }
    (truth.len() as u64, crc_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_mapreduce::api::SideFiles;
    use hl_mapreduce::local::LocalRunner;

    fn run_local<M, R, C>(job: &Job<M, R, C>, files: &[(String, Vec<u8>)]) -> Vec<String>
    where
        M: Mapper,
        M::KOut: Send,
        M::VOut: Send,
        R: Reducer<KIn = M::KOut, VIn = M::VOut>,
        C: hl_mapreduce::api::Combiner<K = M::KOut, V = M::VOut>,
    {
        LocalRunner::serial().run(job, files, &SideFiles::new()).unwrap().output
    }

    #[test]
    fn validate_certifies_a_correct_sort() {
        let (corpus, truth) = hsgen(7, 20_000);
        let sort = hssort("/i", "/o", &corpus, 4);
        let sorted = run_local(&sort, &[("c.txt".to_string(), corpus.into_bytes())]);
        // Feed the sorted output back through the validator as four files,
        // simulating the four part-r files in partition order.
        let chunk = sorted.len().div_ceil(4);
        let parts: Vec<(String, Vec<u8>)> = sorted
            .chunks(chunk)
            .enumerate()
            .map(|(i, lines)| (format!("part-r-{i:05}"), (lines.join("\n") + "\n").into_bytes()))
            .collect();
        let out = run_local(&hsvalidate("/o", "/v"), &parts);
        let verdict = parse_verdict(&out).expect("validator emits a verdict");
        assert!(verdict.sorted, "a correct sort must certify: {verdict:?}");
        let (records, crc_sum) = expected_digest(&truth);
        assert_eq!(verdict.records, records);
        assert_eq!(verdict.crc_sum, crc_sum);
        assert!(verdict.splits >= 1);
    }

    #[test]
    fn validate_rejects_an_unsorted_stream() {
        // Hash-partitioned output interleaves ranges across files; the
        // validator must notice the broken boundaries.
        let (corpus, _) = hsgen(7, 5_000);
        let job = Job::new(
            JobConf::new("hashed").input("/i").output("/o").reduces(3),
            || TokenMapper,
            || CountReducer,
        );
        let hashed = run_local(&job, &[("c.txt".to_string(), corpus.into_bytes())]);
        let files = vec![("part-r-00000".to_string(), (hashed.join("\n") + "\n").into_bytes())];
        let out = run_local(&hsvalidate("/o", "/v"), &files);
        let verdict = parse_verdict(&out).expect("validator emits a verdict");
        assert!(!verdict.sorted, "interleaved ranges must fail validation");
    }

    #[test]
    fn validate_rejects_a_corrupted_record() {
        let (corpus, truth) = hsgen(11, 8_000);
        let sort = hssort("/i", "/o", &corpus, 2);
        let mut sorted = run_local(&sort, &[("c.txt".to_string(), corpus.into_bytes())]);
        // Flip one count: order still holds, but the checksum must not.
        let (k, v) = sorted[0].split_once('\t').unwrap();
        sorted[0] = format!("{k}\t{}", v.parse::<u64>().unwrap() + 1);
        let files = vec![("part-r-00000".to_string(), (sorted.join("\n") + "\n").into_bytes())];
        let out = run_local(&hsvalidate("/o", "/v"), &files);
        let verdict = parse_verdict(&out).unwrap();
        assert!(verdict.sorted, "order is intact");
        let (records, crc_sum) = expected_digest(&truth);
        assert_eq!(verdict.records, records);
        assert_ne!(verdict.crc_sum, crc_sum, "corruption must change the digest");
    }

    #[test]
    fn digest_is_order_independent() {
        // The sum-of-CRCs digest must not care how records were split
        // across map tasks — only the boundary check does.
        let (corpus, truth) = hsgen(3, 6_000);
        let sort = hssort("/i", "/o", &corpus, 3);
        let sorted = run_local(&sort, &[("c.txt".to_string(), corpus.into_bytes())]);
        for nfiles in [1usize, 2, 5] {
            let chunk = sorted.len().div_ceil(nfiles);
            let parts: Vec<(String, Vec<u8>)> = sorted
                .chunks(chunk)
                .enumerate()
                .map(|(i, ls)| (format!("p{i}"), (ls.join("\n") + "\n").into_bytes()))
                .collect();
            let out = run_local(&hsvalidate("/o", "/v"), &parts);
            let verdict = parse_verdict(&out).unwrap();
            assert_eq!(verdict.crc_sum, expected_digest(&truth).1, "nfiles={nfiles}");
            assert!(verdict.sorted);
        }
    }

    #[test]
    fn verdict_parsing_is_strict() {
        assert!(parse_verdict(&[]).is_none());
        assert!(parse_verdict(&["result\tGARBAGE|1|2|3".to_string()]).is_none());
        assert!(parse_verdict(&["result\tSORTED|x|2|3".to_string()]).is_none());
        let v = parse_verdict(&["result\tSORTED|10|999|4".to_string()]).unwrap();
        assert_eq!(v, HsVerdict { sorted: true, records: 10, crc_sum: 999, splits: 4 });
    }
}
