//! WordCount — the canonical first example, in the three forms the
//! lecture walks through.
//!
//! 1. [`WcMapper`] + [`WcReducer`]: the standard example.
//! 2. `+ WcCombiner` ("another WordCount example that uses the reducer as
//!    a combiner"): students observe more map time, far less shuffle.
//! 3. [`InMapperWcMapper`]: in-mapper combining — a per-task hash table,
//!    flushed in `cleanup`, trading task memory for even less shuffle and
//!    no combiner-invocation overhead.
//!
//! Plus the Fall-2012 assignment-1 twist: [`TopWordReducer`] finds "the
//! word with highest count in the complete Shakespeare collection".

use std::collections::BTreeMap;

use hl_mapreduce::api::{Combiner, MapContext, Mapper, ReduceContext, Reducer};
use hl_mapreduce::job::{Job, JobConf};

/// Tokenizing mapper: emits `(word, 1)` per token.
pub struct WcMapper;

impl Mapper for WcMapper {
    type KOut = String;
    type VOut = u64;
    fn map(&mut self, _offset: u64, line: &str, ctx: &mut MapContext<String, u64>) {
        for word in line.split_whitespace() {
            ctx.emit(word.to_string(), 1);
        }
    }
}

/// Summing reducer: emits `(word, total)`.
pub struct WcReducer;

impl Reducer for WcReducer {
    type KIn = String;
    type VIn = u64;
    fn reduce(&mut self, key: String, values: Vec<u64>, ctx: &mut ReduceContext) {
        ctx.emit(key, values.into_iter().sum::<u64>());
    }
}

/// The reducer's logic reused as a combiner (sums are associative, so this
/// is safe — the lecture's point).
pub struct WcCombiner;

impl Combiner for WcCombiner {
    type K = String;
    type V = u64;
    fn combine(&mut self, _key: &String, values: Vec<u64>, out: &mut Vec<u64>) {
        out.push(values.into_iter().sum());
    }
}

/// In-mapper combining: a per-task table, flushed once in `cleanup`.
#[derive(Default)]
pub struct InMapperWcMapper {
    table: BTreeMap<String, u64>,
}

impl Mapper for InMapperWcMapper {
    type KOut = String;
    type VOut = u64;

    fn map(&mut self, _offset: u64, line: &str, _ctx: &mut MapContext<String, u64>) {
        for word in line.split_whitespace() {
            *self.table.entry(word.to_string()).or_default() += 1;
        }
    }

    fn cleanup(&mut self, ctx: &mut MapContext<String, u64>) {
        for (word, count) in std::mem::take(&mut self.table) {
            ctx.emit(word, count);
        }
    }
}

/// Single-reducer "word with the highest count": tracks the max across
/// groups, emits once in `cleanup`. Run with `reduces(1)`.
#[derive(Default)]
pub struct TopWordReducer {
    best: Option<(String, u64)>,
}

impl Reducer for TopWordReducer {
    type KIn = String;
    type VIn = u64;

    fn reduce(&mut self, key: String, values: Vec<u64>, _ctx: &mut ReduceContext) {
        let total: u64 = values.into_iter().sum();
        let better = match &self.best {
            None => true,
            Some((w, n)) => total > *n || (total == *n && key < *w),
        };
        if better {
            self.best = Some((key, total));
        }
    }

    fn cleanup(&mut self, ctx: &mut ReduceContext) {
        if let Some((word, count)) = self.best.take() {
            ctx.emit(word, count);
        }
    }
}

/// Standard WordCount job (no combiner).
pub fn wordcount(
    input: &str,
    output: &str,
    reduces: usize,
) -> Job<WcMapper, WcReducer, hl_mapreduce::api::NoCombiner<String, u64>> {
    Job::new(
        JobConf::new("wordcount").input(input).output(output).reduces(reduces),
        || WcMapper,
        || WcReducer,
    )
}

/// WordCount with the reducer as a combiner.
pub fn wordcount_combiner(
    input: &str,
    output: &str,
    reduces: usize,
) -> Job<WcMapper, WcReducer, WcCombiner> {
    Job::with_combiner(
        JobConf::new("wordcount+combiner").input(input).output(output).reduces(reduces),
        || WcMapper,
        || WcReducer,
        || WcCombiner,
    )
}

/// WordCount with in-mapper combining.
pub fn wordcount_inmapper(
    input: &str,
    output: &str,
    reduces: usize,
) -> Job<InMapperWcMapper, WcReducer, hl_mapreduce::api::NoCombiner<String, u64>> {
    Job::new(
        JobConf::new("wordcount-inmapper").input(input).output(output).reduces(reduces),
        InMapperWcMapper::default,
        || WcReducer,
    )
}

/// The Fall-2012 assignment: the single most frequent word.
pub fn top_word(input: &str, output: &str) -> Job<WcMapper, TopWordReducer, WcCombiner> {
    Job::with_combiner(
        JobConf::new("top-word").input(input).output(output).reduces(1),
        || WcMapper,
        TopWordReducer::default,
        || WcCombiner,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_datagen::corpus::CorpusGen;
    use hl_mapreduce::api::SideFiles;
    use hl_mapreduce::local::LocalRunner;

    fn counts_of(lines: &[String]) -> BTreeMap<String, u64> {
        lines
            .iter()
            .map(|l| {
                let (k, v) = l.split_once('\t').unwrap();
                (k.to_string(), v.parse().unwrap())
            })
            .collect()
    }

    #[test]
    fn all_three_variants_agree_with_ground_truth() {
        let gen = CorpusGen::new(99).with_vocab(200);
        let (text, truth) = gen.generate(10_000);
        let inputs = vec![("corpus.txt".to_string(), text.into_bytes())];
        let runner = LocalRunner::serial();

        let plain = runner.run(&wordcount("/i", "/o", 2), &inputs, &SideFiles::new()).unwrap();
        assert_eq!(counts_of(&plain.output), truth);

        let combined =
            runner.run(&wordcount_combiner("/i", "/o", 2), &inputs, &SideFiles::new()).unwrap();
        assert_eq!(counts_of(&combined.output), truth);

        let inmapper =
            runner.run(&wordcount_inmapper("/i", "/o", 2), &inputs, &SideFiles::new()).unwrap();
        assert_eq!(counts_of(&inmapper.output), truth);
    }

    #[test]
    fn variants_differ_in_map_output_records() {
        use hl_common::counters::TaskCounter;
        let (text, _) = CorpusGen::new(5).with_vocab(100).generate(20_000);
        let inputs = vec![("c.txt".to_string(), text.into_bytes())];
        let mut runner = LocalRunner::serial();
        runner.split_bytes = 32 * 1024; // several map tasks

        let plain = runner.run(&wordcount("/i", "/o", 1), &inputs, &SideFiles::new()).unwrap();
        let inmapper =
            runner.run(&wordcount_inmapper("/i", "/o", 1), &inputs, &SideFiles::new()).unwrap();
        // Plain emits one record per token; in-mapper emits one per
        // distinct word per task.
        assert_eq!(plain.counters.task(TaskCounter::MapOutputRecords), 20_000);
        assert!(
            inmapper.counters.task(TaskCounter::MapOutputRecords) < 2_000,
            "in-mapper: {}",
            inmapper.counters.task(TaskCounter::MapOutputRecords)
        );
    }

    #[test]
    fn top_word_finds_the_zipf_head() {
        let gen = CorpusGen::new(11).with_vocab(500);
        let (text, truth) = gen.generate(30_000);
        let expected =
            truth.iter().max_by_key(|(w, &n)| (n, std::cmp::Reverse((*w).clone()))).unwrap();
        let report = LocalRunner::serial()
            .run(
                &top_word("/i", "/o"),
                &[("c.txt".to_string(), text.into_bytes())],
                &SideFiles::new(),
            )
            .unwrap();
        assert_eq!(report.output.len(), 1);
        let (word, count) = report.output[0].split_once('\t').unwrap();
        assert_eq!(word, expected.0);
        assert_eq!(count.parse::<u64>().unwrap(), *expected.1);
    }
}
