//! Word co-occurrence: Pairs vs Stripes.
//!
//! The course's lectures "follow the set of lecture notes from [Lin]",
//! whose signature advanced example is the co-occurrence matrix built two
//! ways:
//!
//! * **Pairs** — emit `((w1, w2), 1)` per co-occurring pair: tiny values,
//!   a huge number of tiny records, heavy shuffle;
//! * **Stripes** — emit `(w1, {w2: n, ...})` per word with an associative
//!   map value: far fewer, fatter records, much lighter shuffle, at the
//!   cost of per-record memory.
//!
//! Same output, different systems behaviour — the Pairs/Stripes contrast
//! is the general form of the combiner lesson, so it rounds out the
//! module's ablations.

use std::collections::BTreeMap;

use hl_common::error::Result;
use hl_common::keys::Pair;
use hl_common::writable::Writable;
use hl_mapreduce::api::{Combiner, MapContext, Mapper, ReduceContext, Reducer};
use hl_mapreduce::job::{Job, JobConf};

/// Neighborhood window: words within this distance co-occur.
pub const WINDOW: usize = 2;

/// A stripe: co-occurrence counts for one left word.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Stripe(pub BTreeMap<String, u64>);

impl Stripe {
    /// Element-wise merge (the stripe monoid).
    pub fn merge(mut self, other: Stripe) -> Stripe {
        for (w, n) in other.0 {
            *self.0.entry(w).or_default() += n;
        }
        self
    }
}

impl Writable for Stripe {
    fn write(&self, buf: &mut Vec<u8>) {
        let flat: Vec<(String, u64)> = self.0.iter().map(|(k, &v)| (k.clone(), v)).collect();
        flat.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        let flat = Vec::<(String, u64)>::read(buf)?;
        Ok(Stripe(flat.into_iter().collect()))
    }
}

fn neighbors<'a>(tokens: &'a [&'a str]) -> impl Iterator<Item = (String, String)> + 'a {
    tokens.iter().enumerate().flat_map(move |(i, &w)| {
        let lo = i.saturating_sub(WINDOW);
        let hi = (i + WINDOW + 1).min(tokens.len());
        (lo..hi).filter(move |&j| j != i).map(move |j| (w.to_string(), tokens[j].to_string()))
    })
}

// ------------------------------------------------------------------ pairs

/// Pairs mapper: one record per co-occurring pair.
pub struct PairsMapper;

impl Mapper for PairsMapper {
    type KOut = Pair<String, String>;
    type VOut = u64;
    fn map(&mut self, _o: u64, line: &str, ctx: &mut MapContext<Pair<String, String>, u64>) {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        for (a, b) in neighbors(&tokens) {
            ctx.emit(Pair(a, b), 1);
        }
    }
}

/// Pairs combiner/reducer: plain sums.
pub struct PairsSum;

impl Combiner for PairsSum {
    type K = Pair<String, String>;
    type V = u64;
    fn combine(&mut self, _k: &Pair<String, String>, values: Vec<u64>, out: &mut Vec<u64>) {
        out.push(values.into_iter().sum());
    }
}

/// Pairs reducer: emits `w1 w2 \t count`.
pub struct PairsReducer;

impl Reducer for PairsReducer {
    type KIn = Pair<String, String>;
    type VIn = u64;
    fn reduce(&mut self, key: Pair<String, String>, values: Vec<u64>, ctx: &mut ReduceContext) {
        ctx.emit(format!("{} {}", key.0, key.1), values.into_iter().sum::<u64>());
    }
}

// ----------------------------------------------------------------- stripes

/// Stripes mapper: one map-valued record per word occurrence (with
/// in-line aggregation per call).
pub struct StripesMapper;

impl Mapper for StripesMapper {
    type KOut = String;
    type VOut = Stripe;
    fn map(&mut self, _o: u64, line: &str, ctx: &mut MapContext<String, Stripe>) {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let mut per_word: BTreeMap<String, Stripe> = BTreeMap::new();
        for (a, b) in neighbors(&tokens) {
            *per_word.entry(a).or_default().0.entry(b).or_default() += 1;
        }
        for (word, stripe) in per_word {
            ctx.emit(word, stripe);
        }
    }
}

/// Stripes combiner: element-wise merge.
pub struct StripesCombiner;

impl Combiner for StripesCombiner {
    type K = String;
    type V = Stripe;
    fn combine(&mut self, _k: &String, values: Vec<Stripe>, out: &mut Vec<Stripe>) {
        out.push(values.into_iter().fold(Stripe::default(), Stripe::merge));
    }
}

/// Stripes reducer: merge, then flatten to the Pairs output format.
pub struct StripesReducer;

impl Reducer for StripesReducer {
    type KIn = String;
    type VIn = Stripe;
    fn reduce(&mut self, key: String, values: Vec<Stripe>, ctx: &mut ReduceContext) {
        let merged = values.into_iter().fold(Stripe::default(), Stripe::merge);
        for (w2, n) in merged.0 {
            ctx.emit(format!("{key} {w2}"), n);
        }
    }
}

/// The Pairs job.
pub fn pairs(
    input: &str,
    output: &str,
    reduces: usize,
) -> Job<PairsMapper, PairsReducer, PairsSum> {
    Job::with_combiner(
        JobConf::new("cooccurrence-pairs").input(input).output(output).reduces(reduces),
        || PairsMapper,
        || PairsReducer,
        || PairsSum,
    )
}

/// The Stripes job.
pub fn stripes(
    input: &str,
    output: &str,
    reduces: usize,
) -> Job<StripesMapper, StripesReducer, StripesCombiner> {
    Job::with_combiner(
        JobConf::new("cooccurrence-stripes").input(input).output(output).reduces(reduces),
        || StripesMapper,
        || StripesReducer,
        || StripesCombiner,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_mapreduce::api::SideFiles;
    use hl_mapreduce::local::LocalRunner;

    fn reference(text: &str) -> BTreeMap<String, u64> {
        let mut counts = BTreeMap::new();
        for line in text.lines() {
            let tokens: Vec<&str> = line.split_whitespace().collect();
            for (a, b) in neighbors(&tokens) {
                *counts.entry(format!("{a} {b}")).or_default() += 1;
            }
        }
        counts
    }

    fn parse(lines: &[String]) -> BTreeMap<String, u64> {
        lines
            .iter()
            .map(|l| {
                let (k, v) = l.split_once('\t').unwrap();
                (k.to_string(), v.parse().unwrap())
            })
            .collect()
    }

    const TEXT: &str = "the quick brown fox\nthe lazy dog and the quick cat\n\
                        a dog a fox a cat\n";

    #[test]
    fn pairs_and_stripes_agree_with_reference() {
        let want = reference(TEXT);
        let inputs = vec![("t.txt".to_string(), TEXT.as_bytes().to_vec())];
        let runner = LocalRunner::serial();
        let p = runner.run(&pairs("/i", "/o", 2), &inputs, &SideFiles::new()).unwrap();
        assert_eq!(parse(&p.output), want);
        let s = runner.run(&stripes("/i", "/o", 2), &inputs, &SideFiles::new()).unwrap();
        assert_eq!(parse(&s.output), want);
    }

    #[test]
    fn window_semantics() {
        // "a b c d": a sees b,c; b sees a,c,d; symmetric counting.
        let want = reference("a b c d\n");
        assert_eq!(want["a b"], 1);
        assert_eq!(want["a c"], 1);
        assert!(!want.contains_key("a d"), "d is outside a's window");
        assert_eq!(want["b a"], 1);
        // Totals are symmetric.
        for (k, v) in &want {
            let (x, y) = k.split_once(' ').unwrap();
            assert_eq!(want[&format!("{y} {x}")], *v, "{k}");
        }
    }

    #[test]
    fn stripes_emit_fewer_records_than_pairs() {
        use hl_common::counters::TaskCounter;
        let text = TEXT.repeat(200);
        let inputs = vec![("t.txt".to_string(), text.into_bytes())];
        let runner = LocalRunner::serial();
        let p = runner.run(&pairs("/i", "/o", 1), &inputs, &SideFiles::new()).unwrap();
        let s = runner.run(&stripes("/i", "/o", 1), &inputs, &SideFiles::new()).unwrap();
        let pr = p.counters.task(TaskCounter::MapOutputRecords);
        let sr = s.counters.task(TaskCounter::MapOutputRecords);
        assert!(sr * 2 < pr, "stripes {sr} vs pairs {pr}");
    }

    #[test]
    fn stripe_writable_round_trips() {
        let mut s = Stripe::default();
        s.0.insert("fox".into(), 3);
        s.0.insert("dog".into(), 1);
        assert_eq!(Stripe::from_bytes(&s.to_bytes()).unwrap(), s);
        assert_eq!(Stripe::from_bytes(&Stripe::default().to_bytes()).unwrap(), Stripe::default());
    }

    #[test]
    fn stripe_merge_is_a_monoid() {
        let a = Stripe([("x".to_string(), 1)].into_iter().collect());
        let b = Stripe([("x".to_string(), 2), ("y".to_string(), 5)].into_iter().collect());
        let ab = a.clone().merge(b.clone());
        assert_eq!(ab.0["x"], 3);
        assert_eq!(ab.0["y"], 5);
        assert_eq!(a.clone().merge(Stripe::default()), a);
        assert_eq!(b.clone().merge(a.clone()), a.merge(b)); // commutative here
    }
}
