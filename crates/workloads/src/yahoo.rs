//! Assignment 2: the album with the highest average rating.
//!
//! "The second part of this assignment asks the students to analyze the
//! Yahoo song database (10GB) and identify the album that has the highest
//! average rating using MapReduce and HDFS. Again, this requires the
//! students to access the list of songs in each album to support the main
//! rating data files." — the same cached-side-file join as assignment 1,
//! now against the song→album catalog, plus the averaging monoid.

use std::collections::BTreeMap;

use hl_datagen::yahoo_music::{parse_rating, parse_song};
use hl_mapreduce::api::{Combiner, MapContext, Mapper, ReduceContext, Reducer};
use hl_mapreduce::job::{Job, JobConf};

/// Per-record map CPU for these jobs: splitting a CSV/`::` row, boxing
/// fields, and hash lookups cost a 2013 JVM ~10 µs per record.
pub const JAVA_PARSE_CPU: hl_common::SimDuration = hl_common::SimDuration::from_micros(10);

use crate::types::SumCount;

/// Maps a rating row to `(album, SumCount::of(rating))` via the cached
/// song catalog.
pub struct AlbumRatingMapper {
    /// DFS path of the songs side file.
    pub songs_path: String,
    album_of: BTreeMap<u32, u32>,
}

impl AlbumRatingMapper {
    /// New mapper.
    pub fn new(songs_path: impl Into<String>) -> Self {
        AlbumRatingMapper { songs_path: songs_path.into(), album_of: BTreeMap::new() }
    }
}

impl Mapper for AlbumRatingMapper {
    type KOut = u32;
    type VOut = SumCount;

    fn setup(&mut self, ctx: &mut MapContext<u32, SumCount>) {
        if let Ok(bytes) = ctx.read_side_file(&self.songs_path) {
            self.album_of =
                String::from_utf8_lossy(&bytes).lines().filter_map(parse_song).collect();
        }
    }

    fn map(&mut self, _offset: u64, line: &str, ctx: &mut MapContext<u32, SumCount>) {
        if let Some((_user, song, rating)) = parse_rating(line) {
            if let Some(&album) = self.album_of.get(&song) {
                ctx.emit(album, SumCount::of(rating as f64));
            }
        }
    }
}

/// `SumCount` folding combiner keyed by album id.
pub struct AlbumCombiner;

impl Combiner for AlbumCombiner {
    type K = u32;
    type V = SumCount;
    fn combine(&mut self, _key: &u32, values: Vec<SumCount>, out: &mut Vec<SumCount>) {
        out.push(values.into_iter().fold(SumCount::default(), SumCount::merge));
    }
}

/// Single reducer tracking the best album; emits
/// `album \t average \t ratings` in `cleanup`. Run with `reduces(1)`.
#[derive(Default)]
pub struct BestAlbumReducer {
    best: Option<(u32, f64, u64)>,
}

impl Reducer for BestAlbumReducer {
    type KIn = u32;
    type VIn = SumCount;

    fn reduce(&mut self, album: u32, values: Vec<SumCount>, _ctx: &mut ReduceContext) {
        let total = values.into_iter().fold(SumCount::default(), SumCount::merge);
        let Some(mean) = total.mean() else { return };
        let better = match &self.best {
            None => true,
            Some((a, m, _)) => mean > *m || (mean == *m && album < *a),
        };
        if better {
            self.best = Some((album, mean, total.count));
        }
    }

    fn cleanup(&mut self, ctx: &mut ReduceContext) {
        if let Some((album, mean, n)) = self.best.take() {
            ctx.emit(album, format!("{mean:.4}\t{n}"));
        }
    }
}

/// Emits every album's average (`album \t avg \t count`) — the
/// intermediate table students eyeball before picking the max.
pub struct AlbumAvgReducer;

impl Reducer for AlbumAvgReducer {
    type KIn = u32;
    type VIn = SumCount;
    fn reduce(&mut self, album: u32, values: Vec<SumCount>, ctx: &mut ReduceContext) {
        let total = values.into_iter().fold(SumCount::default(), SumCount::merge);
        if let Some(mean) = total.mean() {
            ctx.emit(album, format!("{mean:.4}\t{}", total.count));
        }
    }
}

/// The assignment's headline job: best album, single output line.
pub fn best_album(
    ratings: &str,
    songs: &str,
    output: &str,
) -> Job<AlbumRatingMapper, BestAlbumReducer, AlbumCombiner> {
    let songs = songs.to_string();
    Job::with_combiner(
        JobConf::new("yahoo-best-album")
            .map_cpu_per_record(JAVA_PARSE_CPU)
            .input(ratings)
            .output(output)
            .reduces(1),
        move || AlbumRatingMapper::new(songs.clone()),
        BestAlbumReducer::default,
        || AlbumCombiner,
    )
}

/// All album averages (multi-reduce OK).
pub fn album_averages(
    ratings: &str,
    songs: &str,
    output: &str,
    reduces: usize,
) -> Job<AlbumRatingMapper, AlbumAvgReducer, AlbumCombiner> {
    let songs = songs.to_string();
    Job::with_combiner(
        JobConf::new("yahoo-album-averages")
            .map_cpu_per_record(JAVA_PARSE_CPU)
            .input(ratings)
            .output(output)
            .reduces(reduces),
        move || AlbumRatingMapper::new(songs.clone()),
        || AlbumAvgReducer,
        || AlbumCombiner,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_datagen::yahoo_music::YahooMusicGen;
    use hl_mapreduce::api::SideFiles;
    use hl_mapreduce::local::LocalRunner;

    fn setup(n: usize) -> (Vec<(String, Vec<u8>)>, SideFiles, hl_datagen::yahoo_music::YahooData) {
        let data = YahooMusicGen::new(55).generate(n);
        let inputs = vec![("ratings.txt".to_string(), data.ratings.clone().into_bytes())];
        let mut side = SideFiles::new();
        side.insert("/cache/songs.txt", data.songs.clone().into_bytes());
        (inputs, side, data)
    }

    #[test]
    fn best_album_matches_truth() {
        let (inputs, side, data) = setup(30_000);
        let report = LocalRunner::serial()
            .run(&best_album("/i", "/cache/songs.txt", "/o"), &inputs, &side)
            .unwrap();
        assert_eq!(report.output.len(), 1);
        let fields: Vec<&str> = report.output[0].split('\t').collect();
        let (album, avg) = data.truth.best_album().unwrap();
        assert_eq!(fields[0].parse::<u32>().unwrap(), album);
        assert!((fields[1].parse::<f64>().unwrap() - avg).abs() < 1e-3);
    }

    #[test]
    fn album_averages_match_truth_for_every_album() {
        let (inputs, side, data) = setup(20_000);
        let report = LocalRunner::serial()
            .run(&album_averages("/i", "/cache/songs.txt", "/o", 3), &inputs, &side)
            .unwrap();
        assert_eq!(report.output.len(), data.truth.per_album.len());
        for line in &report.output {
            let mut f = line.split('\t');
            let album: u32 = f.next().unwrap().parse().unwrap();
            let avg: f64 = f.next().unwrap().parse().unwrap();
            let count: u64 = f.next().unwrap().parse().unwrap();
            let &(tn, ts) = data.truth.per_album.get(&album).unwrap();
            assert_eq!(count, tn);
            assert!((avg - ts as f64 / tn as f64).abs() < 1e-3);
        }
    }

    #[test]
    fn combiner_does_not_change_the_answer() {
        let (inputs, side, _) = setup(10_000);
        let runner = LocalRunner::serial();
        let with = runner.run(&best_album("/i", "/cache/songs.txt", "/o"), &inputs, &side).unwrap();
        // Same mapper/reducer without a combiner:
        let songs = "/cache/songs.txt".to_string();
        let no_combiner: Job<
            AlbumRatingMapper,
            BestAlbumReducer,
            hl_mapreduce::api::NoCombiner<u32, SumCount>,
        > = Job::new(
            JobConf::new("nc").input("/i").output("/o").reduces(1),
            move || AlbumRatingMapper::new(songs.clone()),
            BestAlbumReducer::default,
        );
        let without = runner.run(&no_combiner, &inputs, &side).unwrap();
        assert_eq!(with.output, without.output);
    }
}
