//! `sched-replay`: drive the Google-trace multi-tenant arrival process
//! through the FIFO/Fair/Capacity scheduler policies with the inline
//! oracle suite (no starvation, quota conservation, preemption
//! accounting) and print a wait-time/fairness comparison table.
//!
//! ```text
//! sched-replay [--jobs N] [--tasks M] [--seed S]
//!              [--policy fifo|fair|capacity|all] [--contended] [--verify]
//! ```
//!
//! `--contended` over-subscribes the slot farm (longer tasks, compressed
//! arrivals, 1 s preemption timeout) so the policies actually diverge;
//! `--verify` runs every policy twice and requires byte-identical
//! assignment-log and metrics hashes. Exit 0 on a clean run, 1 on oracle
//! violations or verify mismatches, 2 on bad arguments.

use hl_datagen::google_trace::GoogleTraceGen;
use hl_workloads::replay::{load_trace, replay, ReplayOutcome, ReplayPolicy, ReplaySetup};

fn usage() -> ! {
    eprintln!(
        "usage: sched-replay [--jobs N] [--tasks M] [--seed S] \
         [--policy fifo|fair|capacity|all] [--contended] [--verify]"
    );
    std::process::exit(2);
}

fn main() {
    let mut jobs_n: u64 = 600;
    let mut tasks_m: u32 = 8;
    let mut seed: u64 = 42;
    let mut policies = vec![ReplayPolicy::Fifo, ReplayPolicy::Fair, ReplayPolicy::Capacity];
    let mut contended = false;
    let mut verify = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let next = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--jobs" => jobs_n = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--tasks" => tasks_m = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--policy" => {
                let p = next(&mut i);
                policies = match p.as_str() {
                    "all" => {
                        vec![ReplayPolicy::Fifo, ReplayPolicy::Fair, ReplayPolicy::Capacity]
                    }
                    other => vec![ReplayPolicy::parse(other).unwrap_or_else(|| usage())],
                };
            }
            "--contended" => contended = true,
            "--verify" => verify = true,
            _ => usage(),
        }
        i += 1;
    }

    let setup = if contended { ReplaySetup::contended() } else { ReplaySetup::default() };
    let (log, truth) = GoogleTraceGen::new(seed).with_jobs(jobs_n, tasks_m).generate();
    let jobs = load_trace(&log);
    println!(
        "replaying {} jobs / {} users (seed {seed}, {}) on {}x{} slots",
        jobs.len(),
        jobs.iter().map(|j| j.user.as_str()).collect::<std::collections::BTreeSet<_>>().len(),
        if contended { "contended" } else { "uncontended" },
        setup.nodes,
        setup.slots_per_node,
    );

    let mut failed = false;
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10} {:>8}  hash",
        "policy", "decisions", "mean-wait", "p99-wait", "makespan", "preempt"
    );
    for policy in policies {
        let out = replay(&jobs, policy, &setup);
        report(&out);
        if !out.violations.is_empty() {
            for v in &out.violations {
                eprintln!("VIOLATION [{}]: {v}", out.policy);
            }
            failed = true;
        }
        if let (Some((worst, _)), Some((truth_worst, n))) =
            (out.worst_replayed_job(), truth.worst_job())
        {
            if worst != truth_worst {
                eprintln!(
                    "VIOLATION [{}]: worst replayed job {worst} != trace truth {truth_worst} ({n} resubmissions)",
                    out.policy
                );
                failed = true;
            }
        }
        if verify {
            let again = replay(&jobs, policy, &setup);
            if again.assignment_hash != out.assignment_hash
                || again.metrics_hash != out.metrics_hash
            {
                eprintln!(
                    "VIOLATION [{}]: re-run diverged (log {:016x} vs {:016x}, metrics {:016x} vs {:016x})",
                    out.policy,
                    out.assignment_hash,
                    again.assignment_hash,
                    out.metrics_hash,
                    again.metrics_hash
                );
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn report(out: &ReplayOutcome) {
    println!(
        "{:<10} {:>10} {:>11}ms {:>11}ms {:>9}s {:>8}  {:016x}",
        out.policy,
        out.decisions,
        out.mean_wait.0 / 1000,
        out.p99_wait.0 / 1000,
        out.makespan.0 / 1_000_000,
        out.policy_preemptions,
        out.assignment_hash,
    );
}
