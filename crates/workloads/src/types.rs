//! Custom `Writable` value classes.
//!
//! Both assignments force students to write one: the averaging combiner
//! needs a `(sum, count)` partial aggregate (averages are not associative,
//! partial sums are — the "monoidify" move), and the most-active-user
//! question needs a value carrying several fields per key.

use hl_common::error::Result;
use hl_common::writable::{read_vu64, write_vu64, Writable};

/// A partial average: `(sum, count)`. The monoid the averaging combiner
/// needs — combine by component-wise addition, finish with `sum/count`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SumCount {
    /// Sum of observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl SumCount {
    /// A single observation.
    pub fn of(value: f64) -> Self {
        SumCount { sum: value, count: 1 }
    }

    /// Monoid combine.
    pub fn merge(self, other: SumCount) -> SumCount {
        SumCount { sum: self.sum + other.sum, count: self.count + other.count }
    }

    /// The final average (`None` for the empty aggregate).
    pub fn mean(self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

impl Writable for SumCount {
    fn write(&self, buf: &mut Vec<u8>) {
        self.sum.write(buf);
        write_vu64(self.count, buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(SumCount { sum: f64::read(buf)?, count: read_vu64(buf)? })
    }
}

/// Full descriptive statistics: count / sum / min / max — assignment 1's
/// "number of descriptive statistics calculations".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Observations.
    pub count: u64,
    /// Sum.
    pub sum: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Default for Stats {
    fn default() -> Self {
        Stats { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }
}

impl Stats {
    /// A single observation.
    pub fn of(value: f64) -> Self {
        Stats { count: 1, sum: value, min: value, max: value }
    }

    /// Monoid combine.
    pub fn merge(self, other: Stats) -> Stats {
        Stats {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Mean (`None` when empty).
    pub fn mean(self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

impl Writable for Stats {
    fn write(&self, buf: &mut Vec<u8>) {
        write_vu64(self.count, buf);
        self.sum.write(buf);
        self.min.write(buf);
        self.max.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(Stats {
            count: read_vu64(buf)?,
            sum: f64::read(buf)?,
            min: f64::read(buf)?,
            max: f64::read(buf)?,
        })
    }
}

/// One rating event for the most-active-user question: the genres of the
/// rated movie. The reducer counts events per user and tallies genres —
/// several values per key, hence the custom class.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RatingEvent {
    /// Genres of the movie this rating touched.
    pub genres: Vec<String>,
}

impl Writable for RatingEvent {
    fn write(&self, buf: &mut Vec<u8>) {
        self.genres.write(buf);
    }
    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(RatingEvent { genres: Vec::<String>::read(buf)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sumcount_monoid_laws() {
        let a = SumCount::of(2.0);
        let b = SumCount::of(4.0);
        let c = SumCount::of(9.0);
        // associativity
        assert_eq!(a.merge(b).merge(c), a.merge(b.merge(c)));
        // identity
        assert_eq!(a.merge(SumCount::default()), a);
        assert_eq!(a.merge(b).mean(), Some(3.0));
        assert_eq!(SumCount::default().mean(), None);
    }

    #[test]
    fn stats_merge_tracks_extremes() {
        let s = Stats::of(5.0).merge(Stats::of(-2.0)).merge(Stats::of(9.0));
        assert_eq!(s.count, 3);
        assert_eq!(s.min, -2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(Stats::default().mean(), None);
        assert_eq!(Stats::of(1.0).merge(Stats::default()).count, 1);
    }

    #[test]
    fn writable_round_trips() {
        for v in [SumCount::of(3.5), SumCount { sum: -1e9, count: u64::MAX / 2 }] {
            assert_eq!(SumCount::from_bytes(&v.to_bytes()).unwrap(), v);
        }
        let s = Stats::of(7.25).merge(Stats::of(-3.0));
        assert_eq!(Stats::from_bytes(&s.to_bytes()).unwrap(), s);
        let e = RatingEvent { genres: vec!["Drama".into(), "Sci-Fi".into()] };
        assert_eq!(RatingEvent::from_bytes(&e.to_bytes()).unwrap(), e);
        assert_eq!(
            RatingEvent::from_bytes(&RatingEvent::default().to_bytes()).unwrap(),
            RatingEvent::default()
        );
    }

    proptest::proptest! {
        #[test]
        fn prop_sumcount_round_trip(sum in -1e12f64..1e12, count in 0u64..1_000_000) {
            let v = SumCount { sum, count };
            proptest::prop_assert_eq!(SumCount::from_bytes(&v.to_bytes()).unwrap(), v);
        }

        #[test]
        fn prop_merge_commutes(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let (x, y) = (SumCount::of(a), SumCount::of(b));
            proptest::prop_assert_eq!(x.merge(y), y.merge(x));
        }
    }
}
