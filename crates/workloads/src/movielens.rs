//! Assignment 1: MovieLens descriptive statistics + most-active user.
//!
//! Part 1 — "descriptive statistics calculations on the rating of
//! individual movie genres" — needs each rating joined to its movie's
//! genres through the `movies.dat` side file. Two implementations, the
//! assignment's core lesson:
//!
//! * [`NaiveGenreMapper`] — "read the additional file from inside each
//!   mapper": the side file is re-read (and re-parsed) on **every map
//!   call**. Correct, and an order of magnitude slower.
//! * [`CachedGenreMapper`] — "a Java object that reads the additional file
//!   once and stores the content in memory": read in `setup`, kept as a
//!   per-task table.
//!
//! Part 2 — "the user that provides the most ratings and that user's
//! favorite movie genre" — needs the custom [`RatingEvent`] value class
//! ("the information needed in the reduce step requires several values for
//! each key") and a single reducer tracking the global maximum.

use std::collections::BTreeMap;

use hl_datagen::movielens::{parse_movie, parse_rating};
use hl_mapreduce::api::{MapContext, Mapper, ReduceContext, Reducer};
use hl_mapreduce::job::{Job, JobConf};

/// Per-record map CPU for these jobs: splitting a CSV/`::` row, boxing
/// fields, and hash lookups cost a 2013 JVM ~10 µs per record.
pub const JAVA_PARSE_CPU: hl_common::SimDuration = hl_common::SimDuration::from_micros(10);

use crate::types::{RatingEvent, Stats};

/// Parse the `movies.dat` bytes into a `movie → genres` table.
fn parse_catalog(bytes: &[u8]) -> BTreeMap<u32, Vec<String>> {
    String::from_utf8_lossy(bytes)
        .lines()
        .filter_map(parse_movie)
        .map(|(m, gs)| (m, gs.into_iter().map(str::to_string).collect()))
        .collect()
}

/// Part 1, the inefficient way: the catalog is fetched and parsed per
/// record. The charged side-file read per call is what blows the runtime
/// up to "several hours" at dataset scale.
pub struct NaiveGenreMapper {
    /// DFS path of `movies.dat` in the distributed cache.
    pub movies_path: String,
}

impl Mapper for NaiveGenreMapper {
    type KOut = String;
    type VOut = Stats;
    fn map(&mut self, _offset: u64, line: &str, ctx: &mut MapContext<String, Stats>) {
        let Some((_user, movie, rating)) = parse_rating(line) else {
            return;
        };
        let bytes = match ctx.read_side_file(&self.movies_path) {
            Ok(b) => b,
            Err(_) => return,
        };
        let catalog = parse_catalog(&bytes); // re-parsed every call!
        if let Some(genres) = catalog.get(&movie) {
            for g in genres {
                ctx.emit(g.clone(), Stats::of(rating));
            }
        }
    }
}

/// Part 1, the efficient way: catalog loaded once per task in `setup`.
pub struct CachedGenreMapper {
    /// DFS path of `movies.dat`.
    pub movies_path: String,
    catalog: BTreeMap<u32, Vec<String>>,
}

impl CachedGenreMapper {
    /// New mapper reading the catalog from `movies_path`.
    pub fn new(movies_path: impl Into<String>) -> Self {
        CachedGenreMapper { movies_path: movies_path.into(), catalog: BTreeMap::new() }
    }
}

impl Mapper for CachedGenreMapper {
    type KOut = String;
    type VOut = Stats;

    fn setup(&mut self, ctx: &mut MapContext<String, Stats>) {
        if let Ok(bytes) = ctx.read_side_file(&self.movies_path) {
            self.catalog = parse_catalog(&bytes);
        }
    }

    fn map(&mut self, _offset: u64, line: &str, ctx: &mut MapContext<String, Stats>) {
        if let Some((_user, movie, rating)) = parse_rating(line) {
            if let Some(genres) = self.catalog.get(&movie) {
                for g in genres {
                    ctx.emit(g.clone(), Stats::of(rating));
                }
            }
        }
    }
}

/// Folds `Stats` partials (usable as combiner).
pub struct StatsCombiner;

impl hl_mapreduce::api::Combiner for StatsCombiner {
    type K = String;
    type V = Stats;
    fn combine(&mut self, _key: &String, values: Vec<Stats>, out: &mut Vec<Stats>) {
        out.push(values.into_iter().fold(Stats::default(), Stats::merge));
    }
}

/// Part 1 reducer: emits `genre \t count,mean,min,max`.
pub struct GenreStatsReducer;

impl Reducer for GenreStatsReducer {
    type KIn = String;
    type VIn = Stats;
    fn reduce(&mut self, key: String, values: Vec<Stats>, ctx: &mut ReduceContext) {
        let s = values.into_iter().fold(Stats::default(), Stats::merge);
        if let Some(mean) = s.mean() {
            ctx.emit(key, format!("{},{:.4},{},{}", s.count, mean, s.min, s.max));
        }
    }
}

/// Part 2 mapper: `(user, RatingEvent{genres})` per rating (cached join).
pub struct UserActivityMapper {
    /// DFS path of `movies.dat`.
    pub movies_path: String,
    catalog: BTreeMap<u32, Vec<String>>,
}

impl UserActivityMapper {
    /// New mapper.
    pub fn new(movies_path: impl Into<String>) -> Self {
        UserActivityMapper { movies_path: movies_path.into(), catalog: BTreeMap::new() }
    }
}

impl Mapper for UserActivityMapper {
    type KOut = u32;
    type VOut = RatingEvent;

    fn setup(&mut self, ctx: &mut MapContext<u32, RatingEvent>) {
        if let Ok(bytes) = ctx.read_side_file(&self.movies_path) {
            self.catalog = parse_catalog(&bytes);
        }
    }

    fn map(&mut self, _offset: u64, line: &str, ctx: &mut MapContext<u32, RatingEvent>) {
        if let Some((user, movie, _rating)) = parse_rating(line) {
            let genres = self.catalog.get(&movie).cloned().unwrap_or_default();
            ctx.emit(user, RatingEvent { genres });
        }
    }
}

/// Part 2 reducer (run with `reduces(1)`): one group per user — the value
/// count is their rating count; genre tallies give the favorite. Tracks
/// the global max, emits `user \t count \t favorite-genre` in `cleanup`.
#[derive(Default)]
pub struct MostActiveUserReducer {
    best: Option<(u32, u64, String)>,
}

impl Reducer for MostActiveUserReducer {
    type KIn = u32;
    type VIn = RatingEvent;

    fn reduce(&mut self, user: u32, values: Vec<RatingEvent>, _ctx: &mut ReduceContext) {
        let count = values.len() as u64;
        let mut genre_counts: BTreeMap<&str, u64> = BTreeMap::new();
        for event in &values {
            for g in &event.genres {
                *genre_counts.entry(g.as_str()).or_default() += 1;
            }
        }
        let favorite = genre_counts
            .iter()
            .max_by_key(|(g, &n)| (n, std::cmp::Reverse(**g)))
            .map(|(g, _)| g.to_string())
            .unwrap_or_default();
        let better = match &self.best {
            None => true,
            Some((u, n, _)) => count > *n || (count == *n && user < *u),
        };
        if better {
            self.best = Some((user, count, favorite));
        }
    }

    fn cleanup(&mut self, ctx: &mut ReduceContext) {
        if let Some((user, count, favorite)) = self.best.take() {
            ctx.emit(user, format!("{count}\t{favorite}"));
        }
    }
}

/// Part-1 job, naive side-file access.
pub fn genre_stats_naive(
    ratings: &str,
    movies: &str,
    output: &str,
) -> Job<NaiveGenreMapper, GenreStatsReducer, StatsCombiner> {
    let movies = movies.to_string();
    Job::with_combiner(
        JobConf::new("movielens-genre-stats-naive")
            .map_cpu_per_record(JAVA_PARSE_CPU)
            .input(ratings)
            .output(output),
        move || NaiveGenreMapper { movies_path: movies.clone() },
        || GenreStatsReducer,
        || StatsCombiner,
    )
}

/// Part-1 job, cached side-file access.
pub fn genre_stats_cached(
    ratings: &str,
    movies: &str,
    output: &str,
) -> Job<CachedGenreMapper, GenreStatsReducer, StatsCombiner> {
    let movies = movies.to_string();
    Job::with_combiner(
        JobConf::new("movielens-genre-stats-cached")
            .map_cpu_per_record(JAVA_PARSE_CPU)
            .input(ratings)
            .output(output),
        move || CachedGenreMapper::new(movies.clone()),
        || GenreStatsReducer,
        || StatsCombiner,
    )
}

/// Part-2 job: most active user + favorite genre.
pub fn most_active_user(
    ratings: &str,
    movies: &str,
    output: &str,
) -> Job<UserActivityMapper, MostActiveUserReducer, hl_mapreduce::api::NoCombiner<u32, RatingEvent>>
{
    let movies = movies.to_string();
    Job::new(
        JobConf::new("movielens-most-active")
            .map_cpu_per_record(JAVA_PARSE_CPU)
            .input(ratings)
            .output(output)
            .reduces(1),
        move || UserActivityMapper::new(movies.clone()),
        MostActiveUserReducer::default,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_datagen::movielens::MovieLensGen;
    use hl_mapreduce::api::SideFiles;
    use hl_mapreduce::local::LocalRunner;

    fn setup(
        ratings: usize,
    ) -> (Vec<(String, Vec<u8>)>, SideFiles, hl_datagen::movielens::MovieLensData) {
        let data = MovieLensGen::new(77).generate(ratings);
        let inputs = vec![("ratings.dat".to_string(), data.ratings.clone().into_bytes())];
        let mut side = SideFiles::new();
        side.insert("/cache/movies.dat", data.movies.clone().into_bytes());
        (inputs, side, data)
    }

    fn check_stats(lines: &[String], data: &hl_datagen::movielens::MovieLensData) {
        let mut seen = 0;
        for line in lines {
            let (genre, rest) = line.split_once('\t').unwrap();
            let fields: Vec<&str> = rest.split(',').collect();
            let (count, mean): (u64, f64) =
                (fields[0].parse().unwrap(), fields[1].parse().unwrap());
            let &(tc, ts, tmin, tmax) = data.truth.genre_stats.per_genre.get(genre).unwrap();
            assert_eq!(count, tc, "{genre} count");
            assert!((mean - ts / tc as f64).abs() < 1e-3, "{genre} mean");
            assert_eq!(fields[2].parse::<f64>().unwrap(), tmin);
            assert_eq!(fields[3].parse::<f64>().unwrap(), tmax);
            seen += 1;
        }
        assert_eq!(seen, data.truth.genre_stats.per_genre.len());
    }

    #[test]
    fn naive_and_cached_agree_with_truth() {
        let (inputs, side, data) = setup(4_000);
        let runner = LocalRunner::serial();
        let naive = runner
            .run(&genre_stats_naive("/i", "/cache/movies.dat", "/o"), &inputs, &side)
            .unwrap();
        check_stats(&naive.output, &data);
        let cached = runner
            .run(&genre_stats_cached("/i", "/cache/movies.dat", "/o"), &inputs, &side)
            .unwrap();
        check_stats(&cached.output, &data);
        // The order-of-magnitude lesson, in virtual time:
        assert!(
            naive.virtual_time.as_micros() > 10 * cached.virtual_time.as_micros(),
            "naive {} vs cached {}",
            naive.virtual_time,
            cached.virtual_time
        );
        // Naive re-read the side file per record; cached once per task.
        let naive_reads = naive.counters.get("Side Files", "reads");
        let cached_reads = cached.counters.get("Side Files", "reads");
        assert_eq!(naive_reads, 4_000);
        assert!(cached_reads < 10, "cached reads {cached_reads}");
    }

    #[test]
    fn most_active_user_matches_truth() {
        let (inputs, side, data) = setup(8_000);
        let report = LocalRunner::serial()
            .run(&most_active_user("/i", "/cache/movies.dat", "/o"), &inputs, &side)
            .unwrap();
        assert_eq!(report.output.len(), 1);
        let fields: Vec<&str> = report.output[0].split('\t').collect();
        let (user, count) = data.truth.most_active_user().unwrap();
        assert_eq!(fields[0].parse::<u32>().unwrap(), user);
        assert_eq!(fields[1].parse::<u64>().unwrap(), count);
        assert_eq!(fields[2], data.truth.favorite_genre(user).unwrap());
    }

    #[test]
    fn missing_side_file_yields_empty_not_panic() {
        let (inputs, _, _) = setup(100);
        let report = LocalRunner::serial()
            .run(
                &genre_stats_cached("/i", "/cache/movies.dat", "/o"),
                &inputs,
                &SideFiles::new(), // cache not populated
            )
            .unwrap();
        assert!(report.output.is_empty());
    }
}
