//! # hl-workloads
//!
//! The course's actual MapReduce programs, as described in Section III of
//! the paper — lecture examples and reference solutions to both
//! assignments:
//!
//! * [`wordcount`] — the standard WordCount, WordCount with the reducer as
//!   a combiner, the in-mapper-combining variant, and the "word with the
//!   highest count" assignment-1 (Fall 2012) question;
//! * [`airline`] — average delay per airline in the three algorithmic
//!   variants of Lin's *Monoidify!* lecture: plain, combiner with a custom
//!   value class, and in-mapper combining with per-task state;
//! * [`movielens`] — assignment 1: per-genre descriptive statistics with
//!   the **naive** (side file re-read per record) vs **cached** (read once
//!   in `setup`) join, and the most-active-user question with a custom
//!   output value class;
//! * [`cooccurrence`] — Lin's Pairs-vs-Stripes co-occurrence example (the
//!   lecture notes the course followed);
//! * [`yahoo`] — assignment 2: the album with the highest average rating;
//! * [`google`] — the Fall-2012 trace question: the job with the most task
//!   resubmissions;
//! * [`terasort`] — total-order sort via a range partitioner (the
//!   advanced-lecture optimization beyond combiners);
//! * [`tpcxhs`] — a TPCx-HS-style three-phase suite (hsgen / hssort /
//!   hsvalidate) whose validator job certifies global order and a dataset
//!   checksum; the bench runs it 2×2 across speculation × cluster skew;
//! * [`replay`] — the Google trace replayed as a live multi-tenant
//!   arrival process through the pluggable `Scheduler` policies, with
//!   inline starvation/quota/preemption oracles (`sched-replay` bin);
//! * [`types`] — the custom `Writable` value classes the assignments
//!   require students to implement.
//!
//! Every workload is validated against its generator's exact ground truth
//! in both the `LocalJobRunner` (assignment-1 mode) and the full cluster
//! engine (assignment-2 mode).

#![warn(missing_docs)]

pub mod airline;
pub mod cooccurrence;
pub mod google;
pub mod movielens;
pub mod replay;
pub mod terasort;
pub mod tpcxhs;
pub mod types;
pub mod wordcount;
pub mod yahoo;

pub use types::SumCount;
