//! Average arrival delay per airline — the lab's three implementations.
//!
//! The MapReduce lab walks through "three examples of code ... which
//! implement different algorithmic choices described in [Lin's
//! *Monoidify!*]", emphasizing "the usage of MapReduce's combiner, the
//! customized MapReduce's Value classes, and the trade-off in memory and
//! network traffic":
//!
//! * **V1** [`DelayMapper`]/[`AvgReducer`] — plain: one `(carrier, delay)`
//!   pair per flight; the reducer averages. Maximum shuffle traffic.
//! * **V2** `+ SumCountCombiner` — averages don't combine, so V2
//!   introduces the custom [`SumCount`] value class whose partial sums do.
//! * **V3** [`InMapperDelayMapper`] — in-mapper combining: a per-task
//!   carrier table (bounded: ~20 carriers), flushed in `cleanup`. Least
//!   shuffle, most task memory.

use std::collections::BTreeMap;

use hl_datagen::airline::parse_carrier_delay;
use hl_mapreduce::api::{Combiner, MapContext, Mapper, ReduceContext, Reducer};
use hl_mapreduce::job::{Job, JobConf};

/// Per-record map CPU for these jobs: splitting a CSV/`::` row, boxing
/// fields, and hash lookups cost a 2013 JVM ~10 µs per record.
pub const JAVA_PARSE_CPU: hl_common::SimDuration = hl_common::SimDuration::from_micros(10);

use crate::types::SumCount;

/// V1/V2 mapper: `(carrier, SumCount::of(delay))` per flight row.
pub struct DelayMapper;

impl Mapper for DelayMapper {
    type KOut = String;
    type VOut = SumCount;
    fn map(&mut self, _offset: u64, line: &str, ctx: &mut MapContext<String, SumCount>) {
        if let Some((carrier, delay)) = parse_carrier_delay(line) {
            ctx.emit(carrier.to_string(), SumCount::of(delay as f64));
        } else {
            ctx.incr_counter("Airline", "malformed or header rows", 1);
        }
    }
}

/// Folds `SumCount` partials — usable as combiner (V2) and inside the
/// reducer.
pub struct SumCountCombiner;

impl Combiner for SumCountCombiner {
    type K = String;
    type V = SumCount;
    fn combine(&mut self, _key: &String, values: Vec<SumCount>, out: &mut Vec<SumCount>) {
        out.push(values.into_iter().fold(SumCount::default(), SumCount::merge));
    }
}

/// Final reducer: merges partials, emits `carrier \t avg` (2 decimals,
/// like the reference solution's `DecimalFormat`).
pub struct AvgReducer;

impl Reducer for AvgReducer {
    type KIn = String;
    type VIn = SumCount;
    fn reduce(&mut self, key: String, values: Vec<SumCount>, ctx: &mut ReduceContext) {
        let total = values.into_iter().fold(SumCount::default(), SumCount::merge);
        if let Some(mean) = total.mean() {
            ctx.emit(key, format!("{mean:.2}"));
        }
    }
}

/// V3 mapper: per-task in-memory partials, emitted in `cleanup`.
#[derive(Default)]
pub struct InMapperDelayMapper {
    table: BTreeMap<String, SumCount>,
}

impl Mapper for InMapperDelayMapper {
    type KOut = String;
    type VOut = SumCount;

    fn map(&mut self, _offset: u64, line: &str, _ctx: &mut MapContext<String, SumCount>) {
        if let Some((carrier, delay)) = parse_carrier_delay(line) {
            let e = self.table.entry(carrier.to_string()).or_default();
            *e = e.merge(SumCount::of(delay as f64));
        }
    }

    fn cleanup(&mut self, ctx: &mut MapContext<String, SumCount>) {
        for (carrier, partial) in std::mem::take(&mut self.table) {
            ctx.emit(carrier, partial);
        }
    }
}

/// V1: plain (no combiner).
pub fn avg_delay_plain(
    input: &str,
    output: &str,
) -> Job<DelayMapper, AvgReducer, hl_mapreduce::api::NoCombiner<String, SumCount>> {
    Job::new(
        JobConf::new("airline-avg-v1-plain")
            .map_cpu_per_record(JAVA_PARSE_CPU)
            .input(input)
            .output(output),
        || DelayMapper,
        || AvgReducer,
    )
}

/// V2: combiner + custom value class.
pub fn avg_delay_combiner(
    input: &str,
    output: &str,
) -> Job<DelayMapper, AvgReducer, SumCountCombiner> {
    Job::with_combiner(
        JobConf::new("airline-avg-v2-combiner")
            .map_cpu_per_record(JAVA_PARSE_CPU)
            .input(input)
            .output(output),
        || DelayMapper,
        || AvgReducer,
        || SumCountCombiner,
    )
}

/// V3: in-mapper combining.
pub fn avg_delay_inmapper(
    input: &str,
    output: &str,
) -> Job<InMapperDelayMapper, AvgReducer, hl_mapreduce::api::NoCombiner<String, SumCount>> {
    Job::new(
        JobConf::new("airline-avg-v3-inmapper")
            .map_cpu_per_record(JAVA_PARSE_CPU)
            .input(input)
            .output(output),
        InMapperDelayMapper::default,
        || AvgReducer,
    )
}

/// Parse `carrier \t avg` output lines into a map.
pub fn parse_output(lines: &[String]) -> BTreeMap<String, f64> {
    lines
        .iter()
        .filter_map(|l| {
            let (k, v) = l.split_once('\t')?;
            Some((k.to_string(), v.parse().ok()?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_datagen::airline::AirlineGen;
    use hl_mapreduce::api::SideFiles;
    use hl_mapreduce::local::LocalRunner;

    fn expected(truth: &hl_datagen::airline::AirlineTruth) -> BTreeMap<String, f64> {
        truth
            .per_carrier
            .iter()
            .map(|(c, &(n, s))| {
                let mean = s as f64 / n as f64;
                (c.clone(), format!("{mean:.2}").parse().unwrap())
            })
            .collect()
    }

    #[test]
    fn all_three_variants_compute_the_same_averages() {
        let (csv, truth) = AirlineGen::new(31).generate(20_000);
        let inputs = vec![("2008.csv".to_string(), csv.into_bytes())];
        let runner = LocalRunner::serial();
        let want = expected(&truth);

        for (name, lines) in [
            (
                "v1",
                runner
                    .run(&avg_delay_plain("/i", "/o"), &inputs, &SideFiles::new())
                    .unwrap()
                    .output,
            ),
            (
                "v2",
                runner
                    .run(&avg_delay_combiner("/i", "/o"), &inputs, &SideFiles::new())
                    .unwrap()
                    .output,
            ),
            (
                "v3",
                runner
                    .run(&avg_delay_inmapper("/i", "/o"), &inputs, &SideFiles::new())
                    .unwrap()
                    .output,
            ),
        ] {
            assert_eq!(parse_output(&lines), want, "{name}");
        }
    }

    #[test]
    fn header_rows_are_counted_not_crashed() {
        let (csv, _) = AirlineGen::new(1).generate(100);
        let report = LocalRunner::serial()
            .run(
                &avg_delay_plain("/i", "/o"),
                &[("a.csv".to_string(), csv.into_bytes())],
                &SideFiles::new(),
            )
            .unwrap();
        assert_eq!(report.counters.get("Airline", "malformed or header rows"), 1);
    }

    #[test]
    fn shuffle_volume_ranks_v1_over_v2_over_v3() {
        use hl_common::counters::TaskCounter;
        let (csv, _) = AirlineGen::new(8).generate(50_000);
        let inputs = vec![("2008.csv".to_string(), csv.into_bytes())];
        let mut runner = LocalRunner::serial();
        runner.split_bytes = 256 * 1024; // multiple map tasks

        let records = |job_output: &hl_mapreduce::local::LocalReport| {
            job_output.counters.task(TaskCounter::MapOutputRecords)
        };
        let v1 = runner.run(&avg_delay_plain("/i", "/o"), &inputs, &SideFiles::new()).unwrap();
        let v3 = runner.run(&avg_delay_inmapper("/i", "/o"), &inputs, &SideFiles::new()).unwrap();
        // V1 emits per record; V3 emits ~10 carriers per task.
        assert_eq!(records(&v1), 50_000);
        assert!(records(&v3) < 500, "v3 emitted {}", records(&v3));
        // V2 emits like V1 but the combiner collapses before shuffle:
        let v2 = runner.run(&avg_delay_combiner("/i", "/o"), &inputs, &SideFiles::new()).unwrap();
        assert_eq!(records(&v2), 50_000);
        assert!(v2.counters.task(TaskCounter::CombineOutputRecords) < 500);
    }
}
