//! Total-order sort — the advanced-lecture partitioner trick.
//!
//! The final lecture covers "advanced MapReduce optimization concepts";
//! the canonical one beyond combiners is the **range partitioner**
//! (TeraSort's trick): sample the key space, cut it into `R` ordered
//! ranges, and route each key to the reducer owning its range. Each
//! reducer's output is sorted (the merge guarantees that), and because the
//! ranges are ordered, concatenating `part-r-00000..part-r-NNNNN` yields a
//! **globally sorted** result — something hash partitioning can never give.

use hl_mapreduce::api::{MapContext, Mapper, ReduceContext, Reducer};
use hl_mapreduce::job::{Job, JobConf};

/// Identity-ish mapper: emits `(word, 1)` per token (we sort the corpus's
/// vocabulary with counts, which keeps outputs small and checkable).
pub struct TokenMapper;

impl Mapper for TokenMapper {
    type KOut = String;
    type VOut = u64;
    fn map(&mut self, _o: u64, line: &str, ctx: &mut MapContext<String, u64>) {
        for tok in line.split_whitespace() {
            ctx.emit(tok.to_string(), 1);
        }
    }
}

/// Summing reducer emitting `word \t count` — each partition's output is
/// key-sorted by construction.
pub struct CountReducer;

impl Reducer for CountReducer {
    type KIn = String;
    type VIn = u64;
    fn reduce(&mut self, key: String, values: Vec<u64>, ctx: &mut ReduceContext) {
        ctx.emit(key, values.into_iter().sum::<u64>());
    }
}

/// Build cut points by sampling every `stride`-th distinct token of the
/// input — the "sampler job" TeraSort runs first, done inline here.
pub fn sample_cut_points(text: &str, num_reduces: usize) -> Vec<String> {
    let mut tokens: Vec<&str> = text.split_whitespace().collect();
    tokens.sort_unstable();
    tokens.dedup();
    if tokens.is_empty() || num_reduces <= 1 {
        return Vec::new();
    }
    (1..num_reduces).map(|i| tokens[i * tokens.len() / num_reduces].to_string()).collect()
}

/// A total-order sorted word count: range-partitioned by the given cut
/// points (length `reduces - 1`, ascending).
pub fn sorted_wordcount(
    input: &str,
    output: &str,
    cut_points: Vec<String>,
) -> Job<TokenMapper, CountReducer, hl_mapreduce::api::NoCombiner<String, u64>> {
    let reduces = cut_points.len() + 1;
    Job::new(
        JobConf::new("total-order-wordcount").input(input).output(output).reduces(reduces),
        || TokenMapper,
        || CountReducer,
    )
    .partitioned_by(move |key: &String, _bytes, n| {
        // First range whose cut point exceeds the key.
        cut_points.partition_point(|c| c.as_str() <= key.as_str()).min(n - 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_datagen::corpus::CorpusGen;
    use hl_mapreduce::api::SideFiles;
    use hl_mapreduce::local::LocalRunner;

    #[test]
    fn cut_points_are_sorted_and_sized() {
        let cuts = sample_cut_points("delta alpha echo bravo charlie", 3);
        assert_eq!(cuts.len(), 2);
        assert!(cuts.windows(2).all(|w| w[0] <= w[1]));
        assert!(sample_cut_points("", 4).is_empty());
        assert!(sample_cut_points("a b", 1).is_empty());
    }

    #[test]
    fn concatenated_partitions_are_globally_sorted() {
        let (text, truth) = CorpusGen::new(8).with_vocab(300).generate(15_000);
        let cuts = sample_cut_points(&text, 4);
        let job = sorted_wordcount("/i", "/o", cuts);
        // The local runner concatenates reduce outputs in partition order,
        // so `output` should already be globally key-sorted.
        let report = LocalRunner::serial()
            .run(&job, &[("c.txt".to_string(), text.into_bytes())], &SideFiles::new())
            .unwrap();
        let keys: Vec<&str> = report.output.iter().map(|l| l.split_once('\t').unwrap().0).collect();
        assert!(!keys.is_empty());
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "global order must hold across partition boundaries"
        );
        // And counts are still exact.
        for line in &report.output {
            let (k, v) = line.split_once('\t').unwrap();
            assert_eq!(truth[k], v.parse::<u64>().unwrap(), "{k}");
        }
        assert_eq!(keys.len(), truth.len());
    }

    #[test]
    fn hash_partitioning_breaks_global_order() {
        // The control: the same job without the range partitioner.
        let (text, _) = CorpusGen::new(8).with_vocab(300).generate(15_000);
        let job = Job::new(
            JobConf::new("hashed").input("/i").output("/o").reduces(4),
            || TokenMapper,
            || CountReducer,
        );
        let report = LocalRunner::serial()
            .run(&job, &[("c.txt".to_string(), text.into_bytes())], &SideFiles::new())
            .unwrap();
        let keys: Vec<&str> = report.output.iter().map(|l| l.split_once('\t').unwrap().0).collect();
        assert!(
            !keys.windows(2).all(|w| w[0] < w[1]),
            "hash partitioning should interleave ranges across partitions"
        );
    }

    #[test]
    fn skewed_cut_points_still_cover_all_keys() {
        // Degenerate cuts: everything lands in the last partition; the
        // partitioner must clamp rather than panic.
        let (text, truth) = CorpusGen::new(9).with_vocab(50).generate(2_000);
        let cuts = vec!["".to_string(), "".to_string(), "".to_string()];
        let job = sorted_wordcount("/i", "/o", cuts);
        let report = LocalRunner::serial()
            .run(&job, &[("c.txt".to_string(), text.into_bytes())], &SideFiles::new())
            .unwrap();
        assert_eq!(report.output.len(), truth.len());
    }
}
