//! Google-trace replay: the clusterdata-2011 rows as a *live* multi-tenant
//! arrival process, not just a wordcount corpus.
//!
//! [`GoogleTraceGen`](hl_datagen::google_trace::GoogleTraceGen) writes
//! hundreds of jobs from 131 distinct users with staggered submit times,
//! per-attempt durations, and EVICT/FAIL/KILL/LOST terminals — everything
//! a scheduler shoot-out needs. This module parses those rows into
//! [`ReplayJob`]s and drives them through any
//! [`Scheduler`](hl_mapreduce::scheduler::Scheduler) policy on a virtual
//! slot farm:
//!
//! * arrivals admit jobs at their (normalized) trace submit time;
//! * each task attempt runs for its trace duration (scaled for
//!   contention studies); a non-FINISH terminal re-queues the task and
//!   consumes the attempt — the trace's resubmission semantics, EVICT
//!   included, finally exercised;
//! * Fair-scheduler min-share preemptions stop a running task *without*
//!   consuming its attempt: the same attempt later re-runs in full;
//! * three inline oracles run as the simulation goes: **no starvation**
//!   (every job completes or the run flags a stall), **quota
//!   conservation** (per-queue running counts never exceed the
//!   configured elastic bounds), and **preemption accounting**
//!   (preempted = re-queued = re-run, reconciled against the metrics
//!   registry).
//!
//! Everything is virtual-time deterministic: the assignment log and the
//! metrics snapshot hash to stable FNV-1a values per (trace, policy).

use std::collections::{BTreeMap, BTreeSet};

use hl_common::prelude::*;
use hl_datagen::google_trace::{event, parse_event_full};
use hl_mapreduce::scheduler::{
    CapacityScheduler, FairScheduler, FifoScheduler, JobView, Preemption, QueueSpec, Scheduler,
    SlotState, UniformEnv,
};
use hl_metrics::MetricsRegistry;

/// Number of scheduler pools the replay spreads users across.
pub const NUM_POOLS: u64 = 8;

/// One task attempt: how long it ran in the trace and how it ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// SCHEDULE → terminal-event span from the trace.
    pub duration: SimDuration,
    /// Terminal event code ([`event`]): FINISH completes the task,
    /// anything else re-queues it.
    pub outcome: u8,
}

/// One task: the fixed attempt script the trace recorded for it.
#[derive(Debug, Clone, Default)]
pub struct ReplayTask {
    /// Attempts in trace order; the last one always FINISHes.
    pub attempts: Vec<Attempt>,
}

/// One job reconstructed from the trace.
#[derive(Debug, Clone)]
pub struct ReplayJob {
    /// Trace job id.
    pub job_id: u64,
    /// Submitting user (from the trace's user column).
    pub user: String,
    /// Pool/queue this job bills to (users hash onto [`NUM_POOLS`] pools).
    pub pool: String,
    /// Scheduling priority (derived from the job id; stable).
    pub priority: u32,
    /// Submission time, normalized so the first job arrives at zero.
    pub arrival: SimTime,
    /// The job's tasks.
    pub tasks: Vec<ReplayTask>,
}

/// Parse a generated trace into replayable jobs, arrival-ordered.
///
/// Rows that don't parse are skipped (the generator never writes any);
/// a task whose script somehow lacks a FINISH gets one appended so the
/// replay always terminates.
pub fn load_trace(log: &str) -> Vec<ReplayJob> {
    struct Raw {
        first_submit: u64,
        user: String,
        // task → (pending schedule ts, attempts)
        tasks: BTreeMap<u32, (Option<u64>, Vec<Attempt>)>,
    }
    let mut raw: BTreeMap<u64, Raw> = BTreeMap::new();
    for line in log.lines() {
        let Some(ev) = parse_event_full(line) else { continue };
        let entry = raw.entry(ev.job).or_insert_with(|| Raw {
            first_submit: ev.ts,
            user: ev.user.clone(),
            tasks: BTreeMap::new(),
        });
        entry.first_submit = entry.first_submit.min(ev.ts);
        let task = entry.tasks.entry(ev.task).or_insert((None, Vec::new()));
        match ev.event {
            event::SCHEDULE => task.0 = Some(ev.ts),
            event::EVICT | event::FAIL | event::FINISH | event::KILL | event::LOST => {
                if let Some(scheduled) = task.0.take() {
                    task.1.push(Attempt {
                        duration: SimDuration(ev.ts.saturating_sub(scheduled).max(1)),
                        outcome: ev.event,
                    });
                }
            }
            _ => {} // SUBMITs only mark arrival
        }
    }
    let t0 = raw.values().map(|r| r.first_submit).min().unwrap_or(0);
    raw.into_iter()
        .map(|(job_id, r)| {
            let user_num: u64 = r.user.trim_start_matches("user").parse().unwrap_or(0);
            let tasks = r
                .tasks
                .into_values()
                .map(|(_, mut attempts)| {
                    if attempts.last().map(|a| a.outcome) != Some(event::FINISH) {
                        attempts.push(Attempt { duration: SimDuration(1), outcome: event::FINISH });
                    }
                    ReplayTask { attempts }
                })
                .collect();
            ReplayJob {
                job_id,
                pool: format!("pool-{}", user_num % NUM_POOLS),
                user: r.user,
                priority: (job_id % 3) as u32,
                arrival: SimTime(r.first_submit - t0),
                tasks,
            }
        })
        .collect()
}

/// Which policy drives the replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayPolicy {
    /// Single-queue FIFO (the original engine behavior).
    Fifo,
    /// Weighted fair sharing over the 8 pools with min-share preemption.
    Fair,
    /// Hierarchical capacity queues (batch/adhoc parents over the pools).
    Capacity,
}

impl ReplayPolicy {
    /// Config-value / trace-label name.
    pub fn name(self) -> &'static str {
        match self {
            ReplayPolicy::Fifo => "fifo",
            ReplayPolicy::Fair => "fair",
            ReplayPolicy::Capacity => "capacity",
        }
    }

    /// Parse a `--policy` argument.
    pub fn parse(s: &str) -> Option<ReplayPolicy> {
        match s {
            "fifo" => Some(ReplayPolicy::Fifo),
            "fair" => Some(ReplayPolicy::Fair),
            "capacity" => Some(ReplayPolicy::Capacity),
            _ => None,
        }
    }
}

/// Cluster shape and contention knobs for a replay run.
#[derive(Debug, Clone, Copy)]
pub struct ReplaySetup {
    /// TaskTracker nodes.
    pub nodes: u32,
    /// Slots per node.
    pub slots_per_node: u32,
    /// Multiply every attempt duration (contention dial).
    pub duration_scale: u64,
    /// Divide every arrival gap (contention dial).
    pub arrival_div: u64,
    /// Fair-scheduler min-share preemption timeout.
    pub fair_timeout: SimDuration,
}

impl Default for ReplaySetup {
    fn default() -> Self {
        ReplaySetup {
            nodes: 5,
            slots_per_node: 2,
            duration_scale: 1,
            arrival_div: 1,
            fair_timeout: SimDuration::from_secs(30),
        }
    }
}

impl ReplaySetup {
    /// A deliberately over-subscribed setup: long tasks, compressed
    /// arrivals, a preemption timeout short enough to actually fire.
    pub fn contended() -> Self {
        ReplaySetup {
            duration_scale: 8,
            arrival_div: 32,
            fair_timeout: SimDuration::from_secs(1),
            ..ReplaySetup::default()
        }
    }

    fn total_slots(&self) -> usize {
        (self.nodes as usize) * (self.slots_per_node as usize)
    }
}

/// Hard per-pool running-slot ceilings the quota oracle enforces, plus
/// parent aggregates for the hierarchical Capacity case.
struct QuotaBounds {
    /// pool → max concurrently running tasks.
    leaf: BTreeMap<String, u64>,
    /// (parent name, member pools, max running) aggregates.
    parents: Vec<(String, Vec<String>, u64)>,
}

/// Build the policy's scheduler plus the quota bounds the oracle checks.
fn build_policy(policy: ReplayPolicy, setup: &ReplaySetup) -> (Box<dyn Scheduler>, QuotaBounds) {
    let total = setup.total_slots() as u64;
    let all_pools: Vec<String> = (0..NUM_POOLS).map(|p| format!("pool-{p}")).collect();
    match policy {
        ReplayPolicy::Fifo => {
            let leaf = all_pools.iter().map(|p| (p.clone(), total)).collect();
            (Box::new(FifoScheduler), QuotaBounds { leaf, parents: Vec::new() })
        }
        ReplayPolicy::Fair => {
            // Varied weights; one guaranteed slot per pool so min-share
            // preemption has a share to enforce. Fair sharing is not a
            // hard cap, so the quota bound is the whole cluster.
            let mut s = FairScheduler::new(setup.fair_timeout);
            for (i, p) in all_pools.iter().enumerate() {
                s = s.pool(p.clone(), (i as u64 % 3) + 1, 1);
            }
            let leaf = all_pools.iter().map(|p| (p.clone(), total)).collect();
            (Box::new(s), QuotaBounds { leaf, parents: Vec::new() })
        }
        ReplayPolicy::Capacity => {
            // batch (even pools): guaranteed half, elastic to 80%;
            // adhoc (odd pools): guaranteed half, elastic to all of it.
            let mut s = CapacityScheduler::new()
                .queue(
                    "batch",
                    QueueSpec {
                        capacity_pct: 50,
                        max_capacity_pct: 80,
                        user_limit_pct: 100,
                        parent: None,
                    },
                )
                .queue(
                    "adhoc",
                    QueueSpec {
                        capacity_pct: 50,
                        max_capacity_pct: 100,
                        user_limit_pct: 100,
                        parent: None,
                    },
                );
            let mut leaf = BTreeMap::new();
            let mut batch_members = Vec::new();
            let mut adhoc_members = Vec::new();
            for (i, p) in all_pools.iter().enumerate() {
                let parent = if i % 2 == 0 { "batch" } else { "adhoc" };
                s = s.queue(
                    p.clone(),
                    QueueSpec {
                        capacity_pct: 25,
                        max_capacity_pct: 100,
                        user_limit_pct: 50,
                        parent: Some(parent.to_string()),
                    },
                );
                // Leaf ceiling = its own 100% of the parent's elastic max.
                let max_pct = if i % 2 == 0 { 80 } else { 100 };
                leaf.insert(p.clone(), (total * max_pct / 100).max(1));
                if i % 2 == 0 {
                    batch_members.push(p.clone());
                } else {
                    adhoc_members.push(p.clone());
                }
            }
            let parents = vec![
                ("batch".to_string(), batch_members, (total * 80 / 100).max(1)),
                ("adhoc".to_string(), adhoc_members, total),
            ];
            (Box::new(s), QuotaBounds { leaf, parents })
        }
    }
}

/// Everything a replay run produces: fairness/wait statistics, the
/// assignment log and its hash, the metrics snapshot hash, per-job
/// resubmission counts, and any oracle violations.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Policy that ran.
    pub policy: &'static str,
    /// Jobs replayed.
    pub jobs: usize,
    /// Distinct users seen.
    pub users: usize,
    /// Virtual makespan (last completion).
    pub makespan: SimDuration,
    /// Mean job wait (arrival → first assignment).
    pub mean_wait: SimDuration,
    /// 99th-percentile job wait.
    pub p99_wait: SimDuration,
    /// Scheduler decisions taken.
    pub decisions: u64,
    /// Policy (min-share) preemptions.
    pub policy_preemptions: u64,
    /// Trace-driven re-queues per job (EVICT/FAIL/KILL/LOST terminals) —
    /// equals the generator's `TraceTruth::resubmissions` exactly.
    pub trace_requeues_by_job: BTreeMap<u64, u64>,
    /// The EVICT-only subset (the trace's preemption flavor).
    pub evict_requeues_by_job: BTreeMap<u64, u64>,
    /// Busy µs charged per pool (fairness accounting).
    pub pool_busy_us: BTreeMap<String, u64>,
    /// One line per scheduling action, FNV-1a-hashable.
    pub assignment_log: String,
    /// FNV-1a of the assignment log.
    pub assignment_hash: u64,
    /// FNV-1a of the serialized end-of-run metrics snapshot.
    pub metrics_hash: u64,
    /// Oracle violations (empty on a clean run).
    pub violations: Vec<String>,
}

impl ReplayOutcome {
    /// `(job, requeues)` with the most trace-driven re-queues, tie-broken
    /// exactly like `TraceTruth::worst_job`.
    pub fn worst_replayed_job(&self) -> Option<(u64, u64)> {
        self.trace_requeues_by_job
            .iter()
            .map(|(&j, &n)| (j, n))
            .max_by_key(|&(j, n)| (n, std::cmp::Reverse(j)))
    }
}

struct Running {
    slot: usize,
    started: SimTime,
    finish: SimTime,
}

struct JobState {
    pending: Vec<u32>,
    running: Vec<u32>,
    next_attempt: BTreeMap<u32, usize>,
    first_assigned: Option<SimTime>,
    done: usize,
}

/// Replay `jobs` under `policy` on `setup`'s slot farm. Deterministic:
/// same inputs, byte-identical [`ReplayOutcome::assignment_log`].
pub fn replay(jobs: &[ReplayJob], policy: ReplayPolicy, setup: &ReplaySetup) -> ReplayOutcome {
    let (mut scheduler, bounds) = build_policy(policy, setup);
    let total_slots = setup.total_slots();
    let mut metrics = MetricsRegistry::new();
    let mut violations: Vec<String> = Vec::new();
    let mut log = String::new();

    // Arrival order: (scaled arrival, job index).
    let arrival_of = |j: &ReplayJob| SimTime(j.arrival.0 / setup.arrival_div.max(1));
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (arrival_of(&jobs[i]), i));
    let mut next_arrival = 0usize;

    let mut states: Vec<JobState> = jobs
        .iter()
        .map(|j| JobState {
            pending: (0..j.tasks.len() as u32).collect(),
            running: Vec::new(),
            next_attempt: BTreeMap::new(),
            first_assigned: None,
            done: 0,
        })
        .collect();
    let mut active: Vec<usize> = Vec::new(); // arrived, incomplete; admission order
    let mut slot_free: Vec<SimTime> = vec![SimTime::ZERO; total_slots];
    let mut running: BTreeMap<(usize, u32), Running> = BTreeMap::new();
    // Policy-preempted (job, task) pairs owed a re-run.
    let mut owed_rerun: BTreeSet<(usize, u32)> = BTreeSet::new();
    let mut trace_requeues: BTreeMap<u64, u64> = BTreeMap::new();
    let mut evict_requeues: BTreeMap<u64, u64> = BTreeMap::new();
    let mut pool_busy: BTreeMap<String, u64> = BTreeMap::new();
    let mut waits: Vec<SimDuration> = Vec::new();
    let mut decisions = 0u64;
    let mut preempted = 0u64;
    let mut requeued = 0u64;
    let mut rerun = 0u64;
    let mut now = SimTime::ZERO;
    let mut makespan = SimTime::ZERO;
    let mut completed = 0usize;
    let mut rounds = 0u64;
    // Generous backstop: a correct run takes ~2 rounds per attempt.
    let max_rounds: u64 = 20_000
        + 8 * jobs
            .iter()
            .map(|j| j.tasks.iter().map(|t| t.attempts.len() as u64).sum::<u64>())
            .sum::<u64>();

    while completed < jobs.len() {
        rounds += 1;
        if rounds > max_rounds {
            violations.push(format!(
                "starvation: {} of {} jobs incomplete after {rounds} rounds (policy {})",
                jobs.len() - completed,
                jobs.len(),
                policy.name()
            ));
            break;
        }

        // 1. Admit arrivals.
        while next_arrival < order.len() && arrival_of(&jobs[order[next_arrival]]) <= now {
            active.push(order[next_arrival]);
            next_arrival += 1;
        }

        // 2. Retire finished attempts.
        let due: Vec<(usize, u32)> =
            running.iter().filter(|(_, r)| r.finish <= now).map(|(&k, _)| k).collect();
        for (j, task) in due {
            let Some(r) = running.remove(&(j, task)) else { continue };
            slot_free[r.slot] = now;
            let st = &mut states[j];
            st.running.retain(|&t| t != task);
            *pool_busy.entry(jobs[j].pool.clone()).or_default() += r.finish.since(r.started).0;
            let ai = st.next_attempt.get(&task).copied().unwrap_or(0);
            let outcome = jobs[j].tasks[task as usize].attempts.get(ai).map(|a| a.outcome);
            if outcome == Some(event::FINISH) || outcome.is_none() {
                st.done += 1;
                if st.done == jobs[j].tasks.len() {
                    completed += 1;
                    makespan = makespan.max(now);
                    active.retain(|&a| a != j);
                    log.push_str(&format!("t={} job={} done\n", now.0, jobs[j].job_id));
                }
            } else {
                // Trace terminal: EVICT/FAIL/KILL/LOST → resubmission.
                st.next_attempt.insert(task, ai + 1);
                st.pending.push(task);
                *trace_requeues.entry(jobs[j].job_id).or_default() += 1;
                metrics.incr("scheduler", "trace.requeued", 1);
                if outcome == Some(event::EVICT) {
                    *evict_requeues.entry(jobs[j].job_id).or_default() += 1;
                    metrics.incr("scheduler", "trace.evicted", 1);
                }
                log.push_str(&format!(
                    "t={} job={} task={task} requeue ev={}\n",
                    now.0,
                    jobs[j].job_id,
                    outcome.unwrap_or(0)
                ));
            }
        }

        // Views: every arrived, incomplete job, in admission order.
        // (Closure-free so the borrows stay simple.)
        macro_rules! views {
            () => {{
                active
                    .iter()
                    .map(|&j| JobView {
                        user: &jobs[j].user,
                        pool: &jobs[j].pool,
                        priority: jobs[j].priority,
                        submitted_at: arrival_of(&jobs[j]),
                        pending: &states[j].pending,
                        running: &states[j].running,
                    })
                    .collect::<Vec<JobView>>()
            }};
        }

        // 3. Policy preemptions (Fair min-share enforcement).
        let planned = {
            let the_views = views!();
            scheduler.preemptions(now, total_slots, &the_views)
        };
        for Preemption { job, task } in planned {
            let Some(&j) = active.get(job) else {
                violations.push(format!("preemption names unknown job index {job}"));
                continue;
            };
            let Some(r) = running.remove(&(j, task)) else {
                violations.push(format!(
                    "preemption names non-running task {task} of job {}",
                    jobs[j].job_id
                ));
                continue;
            };
            slot_free[r.slot] = now;
            let st = &mut states[j];
            st.running.retain(|&t| t != task);
            st.pending.push(task);
            *pool_busy.entry(jobs[j].pool.clone()).or_default() += now.since(r.started).0;
            owed_rerun.insert((j, task));
            preempted += 1;
            requeued += 1;
            metrics.incr("scheduler", "preempted", 1);
            metrics.incr("scheduler", "requeued", 1);
            log.push_str(&format!("t={} job={} task={task} preempted\n", now.0, jobs[j].job_id));
        }

        // 4. Assign free slots until the policy declines.
        loop {
            let free: Vec<usize> = (0..total_slots).filter(|&s| slot_free[s] <= now).collect();
            if free.is_empty() {
                break;
            }
            let free_states: Vec<SlotState> = free
                .iter()
                .map(|&s| SlotState {
                    node: NodeId(s as u32 / setup.slots_per_node.max(1)),
                    free_at: now,
                })
                .collect();
            let the_views = views!();
            let Some(a) = scheduler.next_assignment(now, &free_states, &the_views, &UniformEnv)
            else {
                break;
            };
            drop(the_views);
            let (Some(&slot), Some(&j)) = (free.get(a.slot), active.get(a.job)) else {
                violations.push(format!("invalid assignment {a:?}"));
                metrics.incr("scheduler", "invalid", 1);
                break;
            };
            let st = &mut states[j];
            let Some(pi) = st.pending.iter().position(|&t| t == a.task) else {
                violations.push(format!(
                    "assignment names non-pending task {} of job {}",
                    a.task, jobs[j].job_id
                ));
                metrics.incr("scheduler", "invalid", 1);
                break;
            };
            st.pending.swap_remove(pi);
            st.running.push(a.task);
            st.running.sort_unstable();
            let ai = st.next_attempt.get(&a.task).copied().unwrap_or(0);
            let dur = jobs[j].tasks[a.task as usize]
                .attempts
                .get(ai)
                .map(|at| SimDuration(at.duration.0 * setup.duration_scale.max(1)))
                .unwrap_or(SimDuration(1));
            slot_free[slot] = now + dur;
            running.insert((j, a.task), Running { slot, started: now, finish: now + dur });
            if st.first_assigned.is_none() {
                st.first_assigned = Some(now);
                let wait = now.since(arrival_of(&jobs[j]));
                waits.push(wait);
                metrics.observe("scheduler", "job.wait_ms", wait.0 / 1000);
                metrics.observe(
                    "scheduler",
                    &format!("pool.{}.wait_ms", jobs[j].pool),
                    wait.0 / 1000,
                );
            }
            if owed_rerun.remove(&(j, a.task)) {
                rerun += 1;
                metrics.incr("scheduler", "rerun", 1);
            }
            decisions += 1;
            metrics.incr("scheduler", "decisions", 1);
            metrics.incr("scheduler", &format!("user.{}.tasks", jobs[j].user), 1);
            log.push_str(&format!(
                "t={} job={} task={} slot={slot}\n",
                now.0, jobs[j].job_id, a.task
            ));
        }

        // 5. Quota conservation oracle.
        let mut per_pool: BTreeMap<&str, u64> = BTreeMap::new();
        for &j in &active {
            *per_pool.entry(jobs[j].pool.as_str()).or_default() += states[j].running.len() as u64;
        }
        for (pool, &used) in &per_pool {
            if let Some(&cap) = bounds.leaf.get(*pool) {
                if used > cap {
                    violations.push(format!(
                        "quota: pool {pool} runs {used} > bound {cap} at t={}",
                        now.0
                    ));
                }
            }
        }
        for (parent, members, cap) in &bounds.parents {
            let used: u64 =
                members.iter().map(|m| per_pool.get(m.as_str()).copied().unwrap_or(0)).sum();
            if used > *cap {
                violations.push(format!(
                    "quota: queue {parent} runs {used} > bound {cap} at t={}",
                    now.0
                ));
            }
        }

        // 6. Advance the clock to the next event.
        let next_finish = running.values().map(|r| r.finish).min();
        let next_arr = order.get(next_arrival).map(|&i| arrival_of(&jobs[i]));
        match (next_finish, next_arr) {
            (Some(f), Some(ar)) => now = f.min(ar),
            (Some(f), None) => now = f,
            (None, Some(ar)) => {
                // Nothing running: if pending work exists the policy
                // refused every free slot — that's starvation, unless a
                // future arrival will change the job set.
                if active.iter().any(|&j| !states[j].pending.is_empty()) && ar <= now {
                    violations
                        .push(format!("starvation: pending work but no assignment at t={}", now.0));
                    break;
                }
                now = now.max(ar);
            }
            (None, None) => {
                if completed < jobs.len() {
                    violations.push(format!(
                        "starvation: {} job(s) stuck with no runnable work at t={}",
                        jobs.len() - completed,
                        now.0
                    ));
                }
                break;
            }
        }
    }

    // Preemption accounting oracle: the three counts must agree with
    // each other and with the registry.
    if !(preempted == requeued && requeued == rerun) {
        violations.push(format!(
            "preemption accounting: preempted={preempted} requeued={requeued} rerun={rerun}"
        ));
    }
    for (name, local) in [
        ("preempted", preempted),
        ("requeued", requeued),
        ("rerun", rerun),
        ("decisions", decisions),
    ] {
        let metered = metrics.counter("scheduler", name);
        if metered != local {
            violations.push(format!("metrics drift: {name} metered {metered} != {local}"));
        }
    }

    let mut sorted_waits = waits.clone();
    sorted_waits.sort_unstable();
    let mean_wait = if waits.is_empty() {
        SimDuration::ZERO
    } else {
        SimDuration(waits.iter().map(|w| w.0).sum::<u64>() / waits.len() as u64)
    };
    let p99_wait = sorted_waits
        .get(sorted_waits.len().saturating_sub(1) * 99 / 100)
        .copied()
        .unwrap_or(SimDuration::ZERO);

    for (pool, busy) in &pool_busy {
        metrics.incr("scheduler", &format!("pool.{pool}.busy_us"), *busy);
    }
    let users: BTreeSet<&str> = jobs.iter().map(|j| j.user.as_str()).collect();
    use hl_common::writable::Writable;
    let metrics_hash = fnv1a(&metrics.snapshot(now).to_bytes());

    ReplayOutcome {
        policy: policy.name(),
        jobs: jobs.len(),
        users: users.len(),
        makespan: makespan.since(SimTime::ZERO),
        mean_wait,
        p99_wait,
        decisions,
        policy_preemptions: preempted,
        trace_requeues_by_job: trace_requeues,
        evict_requeues_by_job: evict_requeues,
        pool_busy_us: pool_busy,
        assignment_hash: fnv1a(log.as_bytes()),
        assignment_log: log,
        metrics_hash,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_datagen::google_trace::GoogleTraceGen;

    #[test]
    fn load_trace_reconstructs_jobs_users_and_attempts() {
        let (log, truth) = GoogleTraceGen::new(7).with_jobs(150, 6).generate();
        let jobs = load_trace(&log);
        assert_eq!(jobs.len(), 150);
        let users: BTreeSet<&str> = jobs.iter().map(|j| j.user.as_str()).collect();
        assert_eq!(users.len(), 131, "all 131 user residues appear");
        // Per-job resubmissions in the attempt scripts equal the truth.
        for j in &jobs {
            let resubs: u64 = j.tasks.iter().map(|t| t.attempts.len() as u64 - 1).sum();
            assert_eq!(resubs, truth.resubmissions[&j.job_id], "job {}", j.job_id);
            for t in &j.tasks {
                assert_eq!(t.attempts.last().map(|a| a.outcome), Some(event::FINISH));
            }
        }
        // Arrivals are normalized and ordered by trace position.
        assert_eq!(jobs.iter().map(|j| j.arrival).min(), Some(SimTime::ZERO));
    }

    #[test]
    fn replay_is_clean_and_exact_under_every_policy() {
        let (log, truth) = GoogleTraceGen::new(11).with_jobs(60, 4).generate();
        let jobs = load_trace(&log);
        for policy in [ReplayPolicy::Fifo, ReplayPolicy::Fair, ReplayPolicy::Capacity] {
            let out = replay(&jobs, policy, &ReplaySetup::default());
            assert!(out.violations.is_empty(), "{policy:?}: {:?}", out.violations);
            // Trace-driven requeues are policy-independent and exact.
            for (job, &n) in &truth.resubmissions {
                assert_eq!(
                    out.trace_requeues_by_job.get(job).copied().unwrap_or(0),
                    n,
                    "{policy:?} job {job}"
                );
            }
            assert!(out.decisions > 0);
            assert_eq!(out.jobs, 60);
        }
    }
}
