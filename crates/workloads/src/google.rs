//! The Fall-2012 big-data question: which job resubmitted the most tasks?
//!
//! "The second assignment asked the students to analyze the 171GB of a
//! Google Data Center's system log and find the computing job with largest
//! number of task resubmissions." A resubmission is a SUBMIT event for a
//! task that already had one, so the reducer must count submits *per task
//! within each job* before summing — a grouping-inside-the-group pattern
//! one step beyond WordCount.

use std::collections::BTreeMap;

use hl_datagen::google_trace::{event, parse_event};
use hl_mapreduce::api::{MapContext, Mapper, ReduceContext, Reducer};
use hl_mapreduce::job::{Job, JobConf};

/// Per-record map CPU for these jobs: splitting a CSV/`::` row, boxing
/// fields, and hash lookups cost a 2013 JVM ~10 µs per record.
pub const JAVA_PARSE_CPU: hl_common::SimDuration = hl_common::SimDuration::from_micros(10);

/// Emits `(job_id, task_index)` for every SUBMIT event.
pub struct SubmitEventMapper;

impl Mapper for SubmitEventMapper {
    type KOut = u64;
    type VOut = u32;
    fn map(&mut self, _offset: u64, line: &str, ctx: &mut MapContext<u64, u32>) {
        match parse_event(line) {
            Some((job, task, ev)) if ev == event::SUBMIT => ctx.emit(job, task),
            Some(_) => {}
            None => ctx.incr_counter("Trace", "malformed rows", 1),
        }
    }
}

/// Per-job reducer: counts submits per task, sums the excess, tracks the
/// global worst job; emits `job \t resubmissions` in `cleanup`. Run with
/// `reduces(1)`.
#[derive(Default)]
pub struct WorstJobReducer {
    worst: Option<(u64, u64)>,
}

impl Reducer for WorstJobReducer {
    type KIn = u64;
    type VIn = u32;

    fn reduce(&mut self, job: u64, tasks: Vec<u32>, _ctx: &mut ReduceContext) {
        let mut submits_per_task: BTreeMap<u32, u64> = BTreeMap::new();
        for t in tasks {
            *submits_per_task.entry(t).or_default() += 1;
        }
        let resubmissions: u64 = submits_per_task.values().map(|&n| n - 1).sum();
        let better = match self.worst {
            None => true,
            Some((j, n)) => resubmissions > n || (resubmissions == n && job < j),
        };
        if better {
            self.worst = Some((job, resubmissions));
        }
    }

    fn cleanup(&mut self, ctx: &mut ReduceContext) {
        if let Some((job, n)) = self.worst.take() {
            ctx.emit(job, n);
        }
    }
}

/// Emits every job's resubmission count (`job \t resubmissions`).
pub struct ResubmissionsReducer;

impl Reducer for ResubmissionsReducer {
    type KIn = u64;
    type VIn = u32;
    fn reduce(&mut self, job: u64, tasks: Vec<u32>, ctx: &mut ReduceContext) {
        let mut submits_per_task: BTreeMap<u32, u64> = BTreeMap::new();
        for t in tasks {
            *submits_per_task.entry(t).or_default() += 1;
        }
        let resubmissions: u64 = submits_per_task.values().map(|&n| n - 1).sum();
        ctx.emit(job, resubmissions);
    }
}

/// The assignment job: single worst offender.
pub fn worst_job(
    input: &str,
    output: &str,
) -> Job<SubmitEventMapper, WorstJobReducer, hl_mapreduce::api::NoCombiner<u64, u32>> {
    Job::new(
        JobConf::new("google-trace-worst-job")
            .map_cpu_per_record(JAVA_PARSE_CPU)
            .input(input)
            .output(output)
            .reduces(1),
        || SubmitEventMapper,
        WorstJobReducer::default,
    )
}

/// All jobs' resubmission counts.
pub fn all_resubmissions(
    input: &str,
    output: &str,
    reduces: usize,
) -> Job<SubmitEventMapper, ResubmissionsReducer, hl_mapreduce::api::NoCombiner<u64, u32>> {
    Job::new(
        JobConf::new("google-trace-resubmissions")
            .map_cpu_per_record(JAVA_PARSE_CPU)
            .input(input)
            .output(output)
            .reduces(reduces),
        || SubmitEventMapper,
        || ResubmissionsReducer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_datagen::google_trace::GoogleTraceGen;
    use hl_mapreduce::api::SideFiles;
    use hl_mapreduce::local::LocalRunner;

    #[test]
    fn worst_job_matches_truth() {
        let (log, truth) = GoogleTraceGen::new(23).with_jobs(300, 25).generate();
        let report = LocalRunner::serial()
            .run(
                &worst_job("/i", "/o"),
                &[("events.csv".to_string(), log.into_bytes())],
                &SideFiles::new(),
            )
            .unwrap();
        assert_eq!(report.output.len(), 1);
        let (job, n) = report.output[0].split_once('\t').unwrap();
        let (tj, tn) = truth.worst_job().unwrap();
        assert_eq!(job.parse::<u64>().unwrap(), tj);
        assert_eq!(n.parse::<u64>().unwrap(), tn);
    }

    #[test]
    fn per_job_counts_match_truth() {
        let (log, truth) = GoogleTraceGen::new(3).with_jobs(100, 15).generate();
        let report = LocalRunner::serial()
            .run(
                &all_resubmissions("/i", "/o", 4),
                &[("events.csv".to_string(), log.into_bytes())],
                &SideFiles::new(),
            )
            .unwrap();
        let mut got: BTreeMap<u64, u64> = BTreeMap::new();
        for line in &report.output {
            let (j, n) = line.split_once('\t').unwrap();
            got.insert(j.parse().unwrap(), n.parse().unwrap());
        }
        assert_eq!(got, truth.resubmissions);
    }

    #[test]
    fn malformed_rows_are_counted() {
        let report = LocalRunner::serial()
            .run(
                &worst_job("/i", "/o"),
                &[("bad.csv".to_string(), b"this,is,not,an,event\ngarbage\n".to_vec())],
                &SideFiles::new(),
            )
            .unwrap();
        assert!(report.output.is_empty());
        assert_eq!(report.counters.get("Trace", "malformed rows"), 2);
    }
}
