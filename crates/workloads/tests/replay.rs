//! Integration suite for the Google-trace scheduler replay driver.
//!
//! * **Determinism** — same trace, same policy ⇒ byte-identical
//!   assignment log and metrics snapshot (compared by FNV-1a hash), run
//!   to run.
//! * **Policy divergence** — on a contended slot farm the three policies
//!   make genuinely different decisions: pairwise-distinct assignment
//!   hashes.
//! * **EVICT fidelity** — the trace's eviction/resubmission events drive
//!   real scheduler-level requeues, exactly as many per job as the
//!   generator's ground truth records, and the most-evicted job of the
//!   replay is the trace truth's `worst_job`.
//! * **Preemption** — the Fair policy's min-share preemption actually
//!   fires on the contended setup, and its accounting balances.
//! * **Scale** — a ≥500-job / ≥100-user replay stays oracle-clean under
//!   Fair and Capacity.

use std::collections::BTreeSet;

use hl_datagen::google_trace::GoogleTraceGen;
use hl_workloads::replay::{load_trace, replay, ReplayJob, ReplayPolicy, ReplaySetup};

const ALL: [ReplayPolicy; 3] = [ReplayPolicy::Fifo, ReplayPolicy::Fair, ReplayPolicy::Capacity];

fn trace(
    seed: u64,
    jobs: u64,
    tasks: u32,
) -> (Vec<ReplayJob>, hl_datagen::google_trace::TraceTruth) {
    let (log, truth) = GoogleTraceGen::new(seed).with_jobs(jobs, tasks).generate();
    (load_trace(&log), truth)
}

#[test]
fn same_seed_and_policy_replays_byte_identically() {
    let (jobs, _) = trace(42, 120, 6);
    for policy in ALL {
        let a = replay(&jobs, policy, &ReplaySetup::contended());
        let b = replay(&jobs, policy, &ReplaySetup::contended());
        assert!(a.violations.is_empty(), "{policy:?}: {:?}", a.violations);
        assert_eq!(a.assignment_hash, b.assignment_hash, "{policy:?} assignment log diverged");
        assert_eq!(a.metrics_hash, b.metrics_hash, "{policy:?} metrics snapshot diverged");
    }
}

#[test]
fn policies_diverge_on_a_contended_farm() {
    let (jobs, _) = trace(42, 200, 8);
    let hashes: Vec<(&'static str, u64)> = ALL
        .iter()
        .map(|&p| {
            let out = replay(&jobs, p, &ReplaySetup::contended());
            assert!(out.violations.is_empty(), "{}: {:?}", out.policy, out.violations);
            (out.policy, out.assignment_hash)
        })
        .collect();
    let distinct: BTreeSet<u64> = hashes.iter().map(|&(_, h)| h).collect();
    assert_eq!(distinct.len(), 3, "policies did not diverge: {hashes:?}");
}

#[test]
fn evictions_replay_exactly_and_the_worst_job_matches_trace_truth() {
    let (jobs, truth) = trace(9, 250, 8);
    for policy in ALL {
        let out = replay(&jobs, policy, &ReplaySetup::default());
        assert!(out.violations.is_empty(), "{policy:?}: {:?}", out.violations);
        // Every trace-scripted eviction/failure produced exactly one
        // scheduler-level requeue, job by job, regardless of policy.
        for (job, &n) in &truth.resubmissions {
            assert_eq!(
                out.trace_requeues_by_job.get(job).copied().unwrap_or(0),
                n,
                "{policy:?} job {job} trace requeues"
            );
        }
        // The assignment-1 question's answer survives the replay: the
        // most-resubmitted job of the live run is the truth's worst job.
        assert_eq!(
            out.worst_replayed_job().map(|(j, _)| j),
            truth.worst_job().map(|(j, _)| j),
            "{policy:?} worst job"
        );
    }
}

#[test]
fn fair_preemption_fires_and_balances_under_contention() {
    let (jobs, _) = trace(42, 600, 8);
    let out = replay(&jobs, ReplayPolicy::Fair, &ReplaySetup::contended());
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    assert!(
        out.policy_preemptions >= 1,
        "contended fair replay never preempted (timeout too long or pools never starve)"
    );
    // FIFO and Capacity never preempt — the counter stays at zero.
    for policy in [ReplayPolicy::Fifo, ReplayPolicy::Capacity] {
        let out = replay(&jobs, policy, &ReplaySetup::contended());
        assert_eq!(out.policy_preemptions, 0, "{policy:?} preempted");
    }
}

#[test]
fn replay_scales_to_hundreds_of_jobs_and_users() {
    let (jobs, _) = trace(42, 500, 6);
    let users: BTreeSet<&str> = jobs.iter().map(|j| j.user.as_str()).collect();
    assert!(jobs.len() >= 500, "only {} jobs", jobs.len());
    assert!(users.len() >= 100, "only {} users", users.len());
    for policy in [ReplayPolicy::Fair, ReplayPolicy::Capacity] {
        let out = replay(&jobs, policy, &ReplaySetup::default());
        assert!(out.violations.is_empty(), "{policy:?}: {:?}", out.violations);
        assert_eq!(out.jobs, jobs.len());
        assert!(out.users >= 100);
        assert!(out.decisions > 0 && out.makespan.0 > 0);
    }
}
