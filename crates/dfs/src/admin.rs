//! Cluster administration: `dfsadmin -report`, the balancer, and
//! decommissioning drills.
//!
//! The myHadoop submission script ran `dfsadmin`-style health checks
//! ("check HDFS' health status") before launching the example job; the
//! balancer and decommissioning are the admin tools staff reach for after
//! the kind of node churn the Version-1 semester produced.

use std::fmt;

use hl_cluster::network::ClusterNet;
use hl_common::prelude::*;
use hl_common::units::ByteSize;

use crate::client::Dfs;

/// One DataNode row of the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataNodeReportRow {
    /// Node.
    pub node: NodeId,
    /// Daemon up?
    pub alive: bool,
    /// Draining?
    pub decommissioning: bool,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Used bytes.
    pub used: u64,
    /// Blocks held.
    pub blocks: usize,
}

impl DataNodeReportRow {
    /// Disk utilization in [0,1].
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.used as f64 / self.capacity as f64
        }
    }
}

/// The `dfsadmin -report` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct DfsAdminReport {
    /// Per-node rows.
    pub nodes: Vec<DataNodeReportRow>,
    /// Under-replicated block count.
    pub under_replicated: usize,
    /// Missing block count.
    pub missing: usize,
    /// Safe mode on?
    pub safemode: bool,
}

/// Build the report.
pub fn report(dfs: &Dfs) -> DfsAdminReport {
    let live = dfs.namenode.live_datanodes();
    let decom = dfs.namenode.decommissioning_nodes();
    let nodes = dfs
        .datanode_ids()
        .into_iter()
        .filter_map(|n| {
            let dn = dfs.datanode(n)?;
            Some(DataNodeReportRow {
                node: n,
                alive: dn.alive && live.contains(&n),
                decommissioning: decom.contains(&n),
                capacity: dn.capacity,
                used: dn.used_bytes(),
                blocks: dn.num_blocks(),
            })
        })
        .collect();
    DfsAdminReport {
        nodes,
        under_replicated: dfs.namenode.under_replicated().len(),
        missing: dfs.namenode.missing_blocks().len(),
        safemode: dfs.namenode.safemode.is_on(),
    }
}

impl DfsAdminReport {
    /// Max-minus-min node utilization — what the balancer minimizes.
    pub fn utilization_spread(&self) -> f64 {
        let utils: Vec<f64> =
            self.nodes.iter().filter(|n| n.alive).map(|n| n.utilization()).collect();
        match (utils.iter().cloned().reduce(f64::max), utils.iter().cloned().reduce(f64::min)) {
            (Some(max), Some(min)) => max - min,
            _ => 0.0,
        }
    }
}

impl fmt::Display for DfsAdminReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_cap: u64 = self.nodes.iter().map(|n| n.capacity).sum();
        let total_used: u64 = self.nodes.iter().map(|n| n.used).sum();
        writeln!(f, "Configured Capacity: {}", ByteSize::display(total_cap))?;
        writeln!(f, "DFS Used: {}", ByteSize::display(total_used))?;
        writeln!(f, "Under replicated blocks: {}", self.under_replicated)?;
        writeln!(f, "Missing blocks: {}", self.missing)?;
        writeln!(f, "Safe mode is {}", if self.safemode { "ON" } else { "OFF" })?;
        writeln!(
            f,
            "Datanodes available: {} ({} total, {} dead)",
            self.nodes.iter().filter(|n| n.alive).count(),
            self.nodes.len(),
            self.nodes.iter().filter(|n| !n.alive).count()
        )?;
        for n in &self.nodes {
            writeln!(
                f,
                "Name: {} ({})\n  DFS Used: {} ({:.2}%)  Blocks: {}",
                n.node,
                match (n.alive, n.decommissioning) {
                    (false, _) => "Dead",
                    (true, true) => "Decommission in progress",
                    (true, false) => "In Service",
                },
                ByteSize::display(n.used),
                n.utilization() * 100.0,
                n.blocks
            )?;
        }
        Ok(())
    }
}

/// Result of one balancer run.
#[derive(Debug, Clone, PartialEq)]
pub struct BalancerReport {
    /// Replica moves performed.
    pub moves: usize,
    /// Bytes moved.
    pub bytes_moved: u64,
    /// Utilization spread before.
    pub spread_before: f64,
    /// Utilization spread after.
    pub spread_after: f64,
    /// When the balancer finished.
    pub completed_at: SimTime,
}

/// Run the balancer: move replicas from over- to under-utilized nodes
/// until every live node sits within `threshold` of the mean utilization
/// (or no legal move remains). Charged like any other transfer.
pub fn balance(
    dfs: &mut Dfs,
    net: &mut ClusterNet,
    now: SimTime,
    threshold: f64,
    max_moves: usize,
) -> BalancerReport {
    let spread_before = report(dfs).utilization_spread();
    let mut t = now;
    let mut moves = 0;
    let mut bytes_moved = 0;

    for _ in 0..max_moves {
        let rows: Vec<_> =
            report(dfs).nodes.into_iter().filter(|n| n.alive && !n.decommissioning).collect();
        if rows.len() < 2 {
            break;
        }
        let mean: f64 =
            rows.iter().map(DataNodeReportRow::utilization).sum::<f64>() / rows.len() as f64;
        let over = rows
            .iter()
            .filter(|n| n.utilization() > mean + threshold)
            .max_by(|a, b| a.utilization().total_cmp(&b.utilization()));
        // HDFS pairs over-utilized sources with under-utilized targets,
        // falling back to merely below-average targets (with low overall
        // utilization the strict under band is empty).
        let under = rows
            .iter()
            .filter(|n| n.utilization() < mean - threshold)
            .min_by(|a, b| a.utilization().total_cmp(&b.utilization()))
            .or_else(|| {
                rows.iter()
                    .filter(|n| n.utilization() < mean)
                    .min_by(|a, b| a.utilization().total_cmp(&b.utilization()))
            });
        let (Some(src), Some(dst)) = (over, under) else { break };

        // Pick a block on src that dst doesn't hold. Either daemon
        // vanishing mid-run just ends the balancing pass.
        let Some(src_dn) = dfs.datanode(src.node) else { break };
        let candidate = src_dn
            .block_report()
            .into_iter()
            .find(|r| dfs.datanode(dst.node).is_some_and(|dn| !dn.has_block(r.id)));
        let Some(meta) = candidate else { break };
        let (block, len) = (meta.id, meta.len);

        // Copy src -> dst, then drop the src replica.
        let Some(payload) = dfs.datanode(src.node).and_then(|dn| dn.payload(block)).cloned() else {
            break;
        };
        let read = net.read_local_disk(t, src.node, len);
        let xfer = net.transfer(read.end, src.node, dst.node, len);
        let write = net.write_local_disk(xfer.end, dst.node, len);
        let Some(dst_dn) = dfs.datanode_mut(dst.node) else { break };
        if dst_dn.store_block(block, payload).is_err() {
            break;
        }
        // Tell the NameNode: new replica first, then invalidate the old.
        let cmds = dfs.namenode.block_received(write.end, dst.node, block);
        dfs.apply_commands(net, write.end, &cmds);
        let mut src_report = match dfs.datanode(src.node) {
            Some(dn) => dn.block_report(),
            None => break,
        };
        src_report.retain(|r| r.id != block);
        dfs.namenode.process_block_report(write.end, src.node, &src_report);
        if let Some(dn) = dfs.datanode_mut(src.node) {
            dn.delete_block(block);
        }
        t = write.end;
        moves += 1;
        bytes_moved += len;
    }

    BalancerReport {
        moves,
        bytes_moved,
        spread_before,
        spread_after: report(dfs).utilization_spread(),
        completed_at: t,
    }
}

/// Drain a node completely: start decommission, drive the protocol until
/// every replica has a home elsewhere, then retire the node. Returns the
/// finish time.
pub fn decommission_node(
    dfs: &mut Dfs,
    net: &mut ClusterNet,
    now: SimTime,
    node: NodeId,
) -> Result<Timed> {
    dfs.namenode.start_decommission(node);
    let step = dfs.namenode.heartbeat_interval();
    // Give the drain a generous virtual-time budget: the worst case is
    // re-replicating the node's whole disk over the cluster fabric, so a
    // day of simulated protocol is orders of magnitude more than enough.
    let deadline = now + SimDuration::from_mins(24 * 60);
    let mut t = now;
    while !dfs.namenode.decommission_complete(node) {
        t += step;
        dfs.heartbeat_round(net, t);
        if t > deadline {
            // Name the blocks that are stuck, not just the fact: the
            // operator needs to know *what* cannot find a new home.
            let stuck = dfs.namenode.decommission_stuck_blocks(node);
            let mut listed: Vec<String> = stuck.iter().take(8).map(|b| b.to_string()).collect();
            if stuck.len() > listed.len() {
                listed.push(format!("... {} more", stuck.len() - listed.len()));
            }
            return Err(HlError::Internal(format!(
                "decommission of {node} stalled past {}: {} block(s) still pinned [{}]",
                deadline,
                stuck.len(),
                listed.join(", ")
            )));
        }
    }
    // Retire: the daemon stops and the operator removes the node from the
    // include file; the NameNode forgets it completely.
    dfs.crash_datanode(node);
    dfs.namenode.unregister_datanode(node);
    Ok(Timed { completed_at: t })
}

/// Completion time marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timed {
    /// When the drain finished.
    pub completed_at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hl_cluster::node::ClusterSpec;
    use hl_common::config::keys;

    fn setup(nodes: usize) -> (Dfs, ClusterNet) {
        let mut spec = ClusterSpec::course_hadoop(nodes);
        spec.node.disk_bytes = 1 << 20; // 1 MiB disks: utilization visible
        let mut config = Configuration::with_defaults();
        config.set(keys::DFS_BLOCK_SIZE, 4096u64);
        config.set(keys::DFS_REPLICATION, 2);
        (Dfs::format(&config, &spec).unwrap(), ClusterNet::new(&spec))
    }

    #[test]
    fn report_reflects_cluster_state() {
        let (mut dfs, mut net) = setup(4);
        dfs.namenode.mkdirs("/d").unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/d/f", &[7u8; 50_000], None).unwrap();
        let r = report(&dfs);
        assert_eq!(r.nodes.len(), 4);
        assert_eq!(r.under_replicated, 0);
        assert!(!r.safemode);
        assert_eq!(r.nodes.iter().map(|n| n.blocks).sum::<usize>(), 13 * 2);
        let text = r.to_string();
        assert!(text.contains("In Service"));
        assert!(text.contains("Under replicated blocks: 0"));
        // Kill a node: the report shows it dead. The survivors keep
        // heartbeating, so only node001 times out.
        dfs.crash_datanode(NodeId(1));
        let later = SimTime::ZERO + SimDuration::from_mins(20);
        for n in [0u32, 2, 3] {
            dfs.namenode.heartbeat(later, NodeId(n), u64::MAX / 2);
        }
        dfs.namenode.check_heartbeats(later);
        let r2 = report(&dfs);
        assert!(r2.to_string().contains("Dead"));
        assert!(r2.under_replicated > 0);
    }

    #[test]
    fn balancer_reduces_spread() {
        let (mut dfs, mut net) = setup(4);
        dfs.namenode.mkdirs("/d").unwrap();
        // Write with replication 1 so placement rotation leaves imbalance,
        // then make it worse by writing from one node.
        for i in 0..12 {
            dfs.put_with_replication(
                &mut net,
                SimTime::ZERO,
                &format!("/d/f{i}"),
                &[1u8; 20_000],
                Some(NodeId(0)),
                1,
            )
            .unwrap();
        }
        let before = report(&dfs).utilization_spread();
        assert!(before > 0.1, "need imbalance to balance: {before}");
        let result = balance(&mut dfs, &mut net, SimTime::ZERO, 0.05, 200);
        assert!(result.moves > 0);
        assert!(result.spread_after < result.spread_before, "{result:?}");
        assert!(result.bytes_moved > 0);
        // Data still reads back.
        let got = dfs.read(&mut net, result.completed_at, "/d/f0", None).unwrap();
        assert_eq!(got.value.len(), 20_000);
    }

    #[test]
    fn decommission_drains_without_data_loss() {
        let (mut dfs, mut net) = setup(5);
        dfs.namenode.mkdirs("/d").unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/d/f", &[9u8; 40_000], None).unwrap();
        let victim = dfs.file_blocks("/d/f").unwrap()[0].2[0];
        let done = decommission_node(&mut dfs, &mut net, SimTime::ZERO, victim).unwrap();
        // All blocks fully replicated on the survivors.
        for (_, _, holders) in dfs.file_blocks("/d/f").unwrap() {
            let holders: Vec<_> = holders.into_iter().filter(|h| *h != victim).collect();
            assert!(holders.len() >= 2, "{holders:?}");
        }
        let got = dfs.read(&mut net, done.completed_at, "/d/f", None).unwrap();
        assert_eq!(got.value, vec![9u8; 40_000]);
        // The report shows the node dead (retired).
        assert!(report(&dfs).to_string().contains("Dead"));
    }

    #[test]
    fn decommission_is_cancellable() {
        let (mut dfs, mut net) = setup(3);
        dfs.namenode.mkdirs("/d").unwrap();
        dfs.put(&mut net, SimTime::ZERO, "/d/f", &[1u8; 10_000], None).unwrap();
        dfs.namenode.start_decommission(NodeId(0));
        assert_eq!(dfs.namenode.decommissioning_nodes(), vec![NodeId(0)]);
        dfs.namenode.cancel_decommission(NodeId(0));
        assert!(dfs.namenode.decommissioning_nodes().is_empty());
    }
}
