//! NameNode safe mode.
//!
//! On startup the NameNode knows *which* blocks should exist (from the
//! fsimage/edit log) but not *where* they are; it stays in safe mode —
//! rejecting writes and job submissions — until a configured fraction of
//! blocks has been reported by DataNodes, plus a settling extension. This
//! is the mechanism behind the paper's fifteen-minute restarts, and behind
//! the Version-1 meltdown: students resubmitting into a cluster that was
//! still counting blocks.

use hl_common::prelude::*;

/// Safe-mode state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SafeMode {
    /// Fraction of expected blocks that must be reported (e.g. 0.999).
    pub threshold: f64,
    /// Extra settling time after the threshold is met.
    pub extension: SimDuration,
    state: State,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    /// Counting block reports.
    On { threshold_met_at: Option<SimTime> },
    /// Left safe mode.
    Off,
    /// Manually forced on (`dfsadmin -safemode enter`).
    Forced,
}

impl SafeMode {
    /// Enter safe mode with the given exit policy (NameNode startup).
    pub fn new(threshold: f64, extension: SimDuration) -> Self {
        SafeMode { threshold, extension, state: State::On { threshold_met_at: None } }
    }

    /// Is the NameNode currently refusing mutations?
    pub fn is_on(&self) -> bool {
        !matches!(self.state, State::Off)
    }

    /// Re-evaluate given the current block census. Returns `true` when this
    /// call *exits* safe mode.
    ///
    /// `reported` / `expected` are block counts; an empty namespace
    /// trivially satisfies any threshold.
    pub fn update(&mut self, now: SimTime, reported: usize, expected: usize) -> bool {
        let met = expected == 0 || (reported as f64) >= self.threshold * expected as f64;
        match &mut self.state {
            State::Off | State::Forced => false,
            State::On { threshold_met_at } => {
                if !met {
                    // Regression (e.g. a DataNode died mid-startup): restart
                    // the extension clock.
                    *threshold_met_at = None;
                    return false;
                }
                let since = *threshold_met_at.get_or_insert(now);
                if now.since(since) >= self.extension {
                    self.state = State::Off;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// `dfsadmin -safemode enter`.
    pub fn force_enter(&mut self) {
        self.state = State::Forced;
    }

    /// `dfsadmin -safemode leave`.
    pub fn force_leave(&mut self) {
        self.state = State::Off;
    }

    /// Status line for the web UI / `dfsadmin -safemode get`.
    pub fn status(&self, reported: usize, expected: usize) -> String {
        match self.state {
            State::Off => "Safe mode is OFF".to_string(),
            State::Forced => "Safe mode is ON (manually entered)".to_string(),
            State::On { .. } => format!(
                "Safe mode is ON. Reported blocks {reported} of expected {expected} \
                 (threshold {:.1}%).",
                self.threshold * 100.0
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sm() -> SafeMode {
        SafeMode::new(0.999, SimDuration::from_secs(30))
    }

    #[test]
    fn stays_on_below_threshold() {
        let mut s = sm();
        assert!(s.is_on());
        assert!(!s.update(SimTime(0), 500, 1000));
        assert!(s.is_on());
        assert!(s.status(500, 1000).contains("Safe mode is ON"));
    }

    #[test]
    fn exits_after_threshold_plus_extension() {
        let mut s = sm();
        // Threshold met at t=10s; extension 30s → exit at t=40s.
        assert!(!s.update(SimTime(10_000_000), 999, 1000));
        assert!(!s.update(SimTime(30_000_000), 1000, 1000));
        assert!(s.is_on());
        let exited = s.update(SimTime(40_000_000), 1000, 1000);
        assert!(exited);
        assert!(!s.is_on());
        // Further updates are no-ops.
        assert!(!s.update(SimTime(50_000_000), 0, 1000));
        assert!(!s.is_on());
    }

    #[test]
    fn regression_resets_extension_clock() {
        let mut s = sm();
        s.update(SimTime(0), 1000, 1000);
        // A DataNode dies: reported drops below threshold.
        s.update(SimTime(10_000_000), 400, 1000);
        // Recovers at t=35s; extension restarts, so not out at t=40s...
        assert!(!s.update(SimTime(35_000_000), 1000, 1000));
        assert!(!s.update(SimTime(40_000_000), 1000, 1000));
        // ...but out at t=65s.
        assert!(s.update(SimTime(65_000_000), 1000, 1000));
    }

    #[test]
    fn empty_namespace_exits_after_extension_only() {
        let mut s = sm();
        assert!(!s.update(SimTime(0), 0, 0));
        assert!(s.update(SimTime(30_000_000), 0, 0));
    }

    #[test]
    fn forced_modes() {
        let mut s = sm();
        s.force_leave();
        assert!(!s.is_on());
        s.force_enter();
        assert!(s.is_on());
        // update() never exits a forced safe mode.
        assert!(!s.update(SimTime(100_000_000), 10, 10));
        assert!(s.is_on());
        assert!(s.status(10, 10).contains("manually"));
        s.force_leave();
        assert!(!s.is_on());
    }
}
