//! Blocks: the unit HDFS splits every file into.
//!
//! The course's HDFS lecture (Figure 2) shows files decomposed into
//! `blk_xxx` files on the DataNodes' Linux file systems. Here a block is an
//! id plus a payload; payloads are either **real bytes** (checksummed,
//! readable, what tests and workloads use) or **synthetic lengths** (time
//! modeling only, what the 171 GB staging experiment uses).

use bytes::Bytes;

use hl_common::checksum::ChunkedChecksum;
use hl_common::prelude::*;
use hl_common::writable::{read_vu64, write_vu64};

/// Globally unique block id, allocated by the NameNode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk_{}", self.0)
    }
}

/// Bytes-per-checksum, Hadoop's `io.bytes.per.checksum` default.
pub const BYTES_PER_CHECKSUM: usize = 512;

/// First generation stamp the NameNode hands out, mirroring HDFS's
/// `GenerationStamp.FIRST_VALID_STAMP`. Pipeline recovery bumps allocate
/// strictly increasing stamps above this, so a replica stamped below the
/// NameNode's recorded stamp is provably stale.
pub const FIRST_GEN_STAMP: u64 = 1000;

/// What a DataNode tells the NameNode about one replica in a block report.
///
/// HDFS 1.x block reports carry `(blockId, numBytes, generationStamp)`
/// triples; the generation stamp is how the NameNode spots replicas left
/// behind by a pipeline that recovered without this DataNode (the stamp on
/// disk is older than the stamp the recovered pipeline agreed on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaMeta {
    /// Block identity.
    pub id: BlockId,
    /// Replica length in bytes.
    pub len: u64,
    /// Generation stamp the replica was written under.
    pub gen_stamp: u64,
}

impl Writable for ReplicaMeta {
    fn write(&self, buf: &mut Vec<u8>) {
        write_vu64(self.id.0, buf);
        write_vu64(self.len, buf);
        write_vu64(self.gen_stamp, buf);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(ReplicaMeta {
            id: BlockId(read_vu64(buf)?),
            len: read_vu64(buf)?,
            gen_stamp: read_vu64(buf)?,
        })
    }
}

/// A delta block report: what changed on a DataNode since its last report.
///
/// HDFS 1.x sends `blockReceived` RPCs plus periodic full reports; at
/// thousands of DataNodes the full reports dominate NameNode CPU, so the
/// scalable protocol ships deltas (received/deleted since last report) and
/// keeps the full report as a periodic anti-entropy sweep. `received`
/// carries full replica metadata (the NameNode needs lengths and stamps);
/// `deleted` needs only ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncrementalBlockReport {
    /// Replicas added (or re-stamped) since the last report, id order.
    pub received: Vec<ReplicaMeta>,
    /// Replicas dropped since the last report, id order.
    pub deleted: Vec<BlockId>,
}

impl IncrementalBlockReport {
    /// True when the delta carries nothing.
    pub fn is_empty(&self) -> bool {
        self.received.is_empty() && self.deleted.is_empty()
    }
}

impl Writable for IncrementalBlockReport {
    fn write(&self, buf: &mut Vec<u8>) {
        self.received.write(buf);
        write_vu64(self.deleted.len() as u64, buf);
        for id in &self.deleted {
            write_vu64(id.0, buf);
        }
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        let received = Vec::<ReplicaMeta>::read(buf)?;
        let n = read_vu64(buf)?;
        let mut deleted = Vec::with_capacity(usize::try_from(n.min(1024)).unwrap_or(0));
        for _ in 0..n {
            deleted.push(BlockId(read_vu64(buf)?));
        }
        Ok(IncrementalBlockReport { received, deleted })
    }
}

/// The contents of a block replica.
#[derive(Debug, Clone)]
pub enum BlockPayload {
    /// Actual data with per-512-byte CRC32s.
    Real {
        /// The block's bytes (cheaply clonable for replication).
        data: Bytes,
        /// Per-chunk CRC32s over `data`.
        checksums: ChunkedChecksum,
    },
    /// A length with no bytes behind it — participates in every time and
    /// replication computation but cannot be read for content.
    Synthetic {
        /// Modeled length in bytes.
        len: u64,
    },
}

impl BlockPayload {
    /// Build a real payload, computing checksums.
    pub fn real(data: impl Into<Bytes>) -> Self {
        let data = data.into();
        let checksums = ChunkedChecksum::compute(&data, BYTES_PER_CHECKSUM);
        BlockPayload::Real { data, checksums }
    }

    /// Build a synthetic payload of `len` bytes.
    pub fn synthetic(len: u64) -> Self {
        BlockPayload::Synthetic { len }
    }

    /// Length in bytes (real or modeled).
    pub fn len(&self) -> u64 {
        match self {
            BlockPayload::Real { data, .. } => data.len() as u64,
            BlockPayload::Synthetic { len } => *len,
        }
    }

    /// True for zero-length payloads.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when actual bytes are available.
    pub fn is_real(&self) -> bool {
        matches!(self, BlockPayload::Real { .. })
    }

    /// Verify stored checksums; synthetic payloads are vacuously clean.
    /// Returns the first corrupt chunk index if any.
    pub fn verify(&self) -> Option<usize> {
        match self {
            BlockPayload::Real { data, checksums } => checksums.verify(data),
            BlockPayload::Synthetic { .. } => None,
        }
    }
}

/// A replica as stored on one DataNode.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    /// Block identity.
    pub id: BlockId,
    /// Contents.
    pub payload: BlockPayload,
    /// Generation stamp this replica was written (or re-stamped) under.
    pub gen_stamp: u64,
}

impl StoredBlock {
    /// Convenience constructor; stamps the replica with [`FIRST_GEN_STAMP`].
    pub fn new(id: BlockId, payload: BlockPayload) -> Self {
        StoredBlock { id, payload, gen_stamp: FIRST_GEN_STAMP }
    }

    /// Constructor carrying an explicit generation stamp (the write path).
    pub fn with_gen_stamp(id: BlockId, payload: BlockPayload, gen_stamp: u64) -> Self {
        StoredBlock { id, payload, gen_stamp }
    }

    /// Read the real bytes, verifying checksums first.
    pub fn read_verified(&self) -> Result<Bytes> {
        match &self.payload {
            BlockPayload::Real { data, checksums } => match checksums.verify(data) {
                None => Ok(data.clone()),
                Some(chunk) => Err(HlError::ChecksumMismatch {
                    block_id: self.id.0,
                    expected: checksums.crcs[chunk],
                    actual: hl_common::checksum::Crc32::checksum(
                        &data[chunk * BYTES_PER_CHECKSUM
                            ..((chunk + 1) * BYTES_PER_CHECKSUM).min(data.len())],
                    ),
                }),
            },
            BlockPayload::Synthetic { .. } => Err(HlError::Internal(format!(
                "attempted content read of synthetic block {}",
                self.id
            ))),
        }
    }
}

/// Split file contents into block-sized payloads (the DFSClient write path).
pub fn split_into_blocks(data: &[u8], block_size: u64) -> Vec<BlockPayload> {
    assert!(block_size > 0, "block size must be positive");
    if data.is_empty() {
        return Vec::new();
    }
    data.chunks(block_size as usize)
        .map(|c| BlockPayload::real(Bytes::copy_from_slice(c)))
        .collect()
}

/// Split a synthetic file length into synthetic block payloads.
pub fn split_synthetic(len: u64, block_size: u64) -> Vec<BlockPayload> {
    assert!(block_size > 0, "block size must be positive");
    let mut blocks = Vec::new();
    let mut remaining = len;
    while remaining > 0 {
        let this = remaining.min(block_size);
        blocks.push(BlockPayload::synthetic(this));
        remaining -= this;
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_real_respects_block_size() {
        let data = vec![42u8; 300];
        let blocks = split_into_blocks(&data, 128);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].len(), 128);
        assert_eq!(blocks[1].len(), 128);
        assert_eq!(blocks[2].len(), 44);
        assert!(blocks.iter().all(|b| b.is_real()));
        assert!(split_into_blocks(&[], 128).is_empty());
    }

    #[test]
    fn split_synthetic_matches_lengths() {
        let blocks = split_synthetic(171 * 1024, 64 * 1024);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks.iter().map(BlockPayload::len).sum::<u64>(), 171 * 1024);
        assert_eq!(blocks[2].len(), 43 * 1024);
        assert!(split_synthetic(0, 64).is_empty());
    }

    #[test]
    fn read_verified_catches_corruption() {
        let block = StoredBlock::new(BlockId(7), BlockPayload::real(vec![1u8; 2048]));
        assert_eq!(block.read_verified().unwrap().len(), 2048);

        // Corrupt one byte behind the checksums' back.
        let mut corrupted = block.clone();
        if let BlockPayload::Real { data, .. } = &mut corrupted.payload {
            let mut raw = data.to_vec();
            raw[700] ^= 0xFF;
            *data = Bytes::from(raw);
        }
        match corrupted.read_verified() {
            Err(HlError::ChecksumMismatch { block_id: 7, .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn synthetic_blocks_refuse_content_reads() {
        let block = StoredBlock::new(BlockId(1), BlockPayload::synthetic(1 << 30));
        assert!(matches!(block.read_verified(), Err(HlError::Internal(_))));
        assert_eq!(block.payload.len(), 1 << 30);
        assert!(block.payload.verify().is_none());
    }

    #[test]
    fn display_matches_hdfs_naming() {
        assert_eq!(BlockId(1073741825).to_string(), "blk_1073741825");
    }

    #[test]
    fn replica_meta_round_trips() {
        for meta in [
            ReplicaMeta { id: BlockId(0), len: 0, gen_stamp: FIRST_GEN_STAMP },
            ReplicaMeta { id: BlockId(1073741825), len: 64 * 1024 * 1024, gen_stamp: 1007 },
            ReplicaMeta { id: BlockId(u64::MAX), len: u64::MAX, gen_stamp: u64::MAX },
        ] {
            let bytes = meta.to_bytes();
            assert_eq!(ReplicaMeta::from_bytes(&bytes).unwrap(), meta);
        }
        assert!(ReplicaMeta::from_bytes(&[0x80]).is_err(), "truncated input must error");
    }

    #[test]
    fn incremental_report_round_trips() {
        for ibr in [
            IncrementalBlockReport::default(),
            IncrementalBlockReport {
                received: vec![
                    ReplicaMeta { id: BlockId(3), len: 64, gen_stamp: FIRST_GEN_STAMP },
                    ReplicaMeta { id: BlockId(9), len: 10, gen_stamp: 1007 },
                ],
                deleted: vec![BlockId(1), BlockId(u64::MAX)],
            },
            IncrementalBlockReport { received: Vec::new(), deleted: vec![BlockId(5)] },
        ] {
            let bytes = ibr.to_bytes();
            assert_eq!(IncrementalBlockReport::from_bytes(&bytes).unwrap(), ibr);
        }
        assert!(IncrementalBlockReport::from_bytes(&[0x80]).is_err());
    }
}
