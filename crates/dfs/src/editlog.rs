//! The NameNode edit log: a replayable journal of namespace mutations.
//!
//! Real HDFS persists every namespace change to the edit log and merges it
//! into the fsimage at checkpoints; the combination is what lets a
//! restarted NameNode rebuild its in-RAM metadata. The course's restart
//! story depends on this existing, so we implement the journal + replay
//! (fsimage is simply a cloned `Namespace`).

use hl_codec::CodecId;
use hl_common::prelude::*;
use hl_common::writable::{read_vu64, write_vu64, Writable};

use crate::block::BlockId;
use crate::namespace::Namespace;

/// One journaled namespace mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings follow the variant docs directly
pub enum EditOp {
    /// `mkdir -p`.
    Mkdirs { path: String },
    /// File creation (timestamp journaled so replay reproduces metadata;
    /// the lease holder journaled so a restarted NameNode can rebuild the
    /// lease table for files still open at the checkpoint tail).
    Create { path: String, replication: u32, block_size: u64, at: SimTime, holder: String },
    /// Block appended to a file, stamped with its initial generation stamp.
    AddBlock { path: String, block: BlockId, len: u64, gen_stamp: u64 },
    /// Writer closed the file.
    Close { path: String },
    /// Deletion (recursive flag recorded for fidelity).
    Delete { path: String, recursive: bool },
    /// Rename.
    Rename { src: String, dst: String },
    /// `hadoop fs -setrep`.
    SetReplication { path: String, replication: u32 },
    /// Pipeline recovery bumped a block's generation stamp; journaled so a
    /// restarted NameNode still knows which replicas are stale.
    BumpGenStamp { block: BlockId, gen_stamp: u64 },
    /// Lease recovery dropped a trailing block no DataNode ever confirmed
    /// (`len` journaled so replay can shrink the file without guessing).
    AbandonBlock { path: String, block: BlockId, len: u64 },
    /// The file's stored bytes are codec-framed; journaled so a restarted
    /// NameNode still knows which files need transparent decode.
    SetCodec { path: String, codec: CodecId },
}

impl EditOp {
    fn tag(&self) -> u8 {
        match self {
            EditOp::Mkdirs { .. } => 0,
            EditOp::Create { .. } => 1,
            EditOp::AddBlock { .. } => 2,
            EditOp::Close { .. } => 3,
            EditOp::Delete { .. } => 4,
            EditOp::Rename { .. } => 5,
            EditOp::SetReplication { .. } => 6,
            EditOp::BumpGenStamp { .. } => 7,
            EditOp::AbandonBlock { .. } => 8,
            EditOp::SetCodec { .. } => 9,
        }
    }
}

impl Writable for EditOp {
    fn write(&self, buf: &mut Vec<u8>) {
        buf.push(self.tag());
        match self {
            EditOp::Mkdirs { path } | EditOp::Close { path } => path.write(buf),
            EditOp::Create { path, replication, block_size, at, holder } => {
                path.write(buf);
                replication.write(buf);
                block_size.write(buf);
                write_vu64(at.0, buf);
                holder.write(buf);
            }
            EditOp::AddBlock { path, block, len, gen_stamp } => {
                path.write(buf);
                write_vu64(block.0, buf);
                write_vu64(*len, buf);
                write_vu64(*gen_stamp, buf);
            }
            EditOp::Delete { path, recursive } => {
                path.write(buf);
                recursive.write(buf);
            }
            EditOp::Rename { src, dst } => {
                src.write(buf);
                dst.write(buf);
            }
            EditOp::SetReplication { path, replication } => {
                path.write(buf);
                replication.write(buf);
            }
            EditOp::BumpGenStamp { block, gen_stamp } => {
                write_vu64(block.0, buf);
                write_vu64(*gen_stamp, buf);
            }
            EditOp::AbandonBlock { path, block, len } => {
                path.write(buf);
                write_vu64(block.0, buf);
                write_vu64(*len, buf);
            }
            EditOp::SetCodec { path, codec } => {
                path.write(buf);
                codec.write(buf);
            }
        }
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        let tag = u8::read(buf)?;
        Ok(match tag {
            0 => EditOp::Mkdirs { path: String::read(buf)? },
            1 => EditOp::Create {
                path: String::read(buf)?,
                replication: u32::read(buf)?,
                block_size: u64::read(buf)?,
                at: SimTime(read_vu64(buf)?),
                holder: String::read(buf)?,
            },
            2 => EditOp::AddBlock {
                path: String::read(buf)?,
                block: BlockId(read_vu64(buf)?),
                len: read_vu64(buf)?,
                gen_stamp: read_vu64(buf)?,
            },
            3 => EditOp::Close { path: String::read(buf)? },
            4 => EditOp::Delete { path: String::read(buf)?, recursive: bool::read(buf)? },
            5 => EditOp::Rename { src: String::read(buf)?, dst: String::read(buf)? },
            6 => EditOp::SetReplication { path: String::read(buf)?, replication: u32::read(buf)? },
            7 => {
                EditOp::BumpGenStamp { block: BlockId(read_vu64(buf)?), gen_stamp: read_vu64(buf)? }
            }
            8 => EditOp::AbandonBlock {
                path: String::read(buf)?,
                block: BlockId(read_vu64(buf)?),
                len: read_vu64(buf)?,
            },
            9 => EditOp::SetCodec { path: String::read(buf)?, codec: CodecId::read(buf)? },
            t => return Err(HlError::Codec(format!("unknown edit op tag {t}"))),
        })
    }
}

/// The journal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EditLog {
    ops: Vec<EditOp>,
}

impl EditLog {
    /// Empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one op.
    pub fn append(&mut self, op: EditOp) {
        self.ops.push(op);
    }

    /// Number of journaled ops since the last checkpoint.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no ops are pending.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The journaled ops since the last checkpoint, oldest first. The
    /// NameNode replays these itself for state (generation stamps) that
    /// lives outside the namespace tree.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Serialize the journal (what a secondary NameNode would fetch).
    pub fn serialize(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        write_vu64(self.ops.len() as u64, buf.as_mut());
        for op in &self.ops {
            op.write(&mut buf);
        }
        buf
    }

    /// Deserialize a journal.
    pub fn deserialize(mut bytes: &[u8]) -> Result<Self> {
        let buf = &mut bytes;
        let n = read_vu64(buf)? as usize;
        let mut ops = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            ops.push(EditOp::read(buf)?);
        }
        if !buf.is_empty() {
            return Err(HlError::Codec("trailing bytes after edit log".into()));
        }
        Ok(EditLog { ops })
    }

    /// Replay every op onto `ns`, rebuilding the namespace a crashed
    /// NameNode lost. Errors indicate a corrupt journal.
    pub fn replay(&self, ns: &mut Namespace) -> Result<()> {
        for op in &self.ops {
            match op {
                EditOp::Mkdirs { path } => ns.mkdirs(path)?,
                EditOp::Create { path, replication, block_size, at, .. } => {
                    ns.create_file(path, *replication, *block_size, *at)?
                }
                EditOp::AddBlock { path, block, len, .. } => ns.append_block(path, *block, *len)?,
                EditOp::Close { path } => ns.complete_file(path)?,
                EditOp::Delete { path, recursive } => {
                    ns.delete(path, *recursive)?;
                }
                EditOp::Rename { src, dst } => ns.rename(src, dst)?,
                EditOp::SetReplication { path, replication } => {
                    ns.file_mut(path)?.replication = *replication;
                }
                // Generation stamps live in the NameNode's block map, not
                // the namespace tree; `NameNode::restart` applies them.
                EditOp::BumpGenStamp { .. } => {}
                EditOp::AbandonBlock { path, block, len } => {
                    ns.abandon_block(path, *block, *len)?
                }
                EditOp::SetCodec { path, codec } => {
                    ns.file_mut(path)?.codec = *codec;
                }
            }
        }
        Ok(())
    }

    /// Checkpoint: the caller snapshots the namespace (fsimage) and the
    /// journal empties.
    pub fn checkpoint(&mut self) {
        self.ops.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<EditOp> {
        vec![
            EditOp::Mkdirs { path: "/user/alice".into() },
            EditOp::Create {
                path: "/user/alice/data.txt".into(),
                replication: 3,
                block_size: 64,
                at: SimTime(123),
                holder: "DFSClient@login".into(),
            },
            EditOp::AddBlock {
                path: "/user/alice/data.txt".into(),
                block: BlockId(1),
                len: 64,
                gen_stamp: 1000,
            },
            EditOp::AddBlock {
                path: "/user/alice/data.txt".into(),
                block: BlockId(2),
                len: 10,
                gen_stamp: 1001,
            },
            EditOp::BumpGenStamp { block: BlockId(1), gen_stamp: 1002 },
            EditOp::Close { path: "/user/alice/data.txt".into() },
            EditOp::Rename {
                src: "/user/alice/data.txt".into(),
                dst: "/user/alice/final.txt".into(),
            },
        ]
    }

    #[test]
    fn serialize_round_trips() {
        let mut log = EditLog::new();
        for op in sample_ops() {
            log.append(op);
        }
        log.append(EditOp::AbandonBlock {
            path: "/user/alice/data.txt".into(),
            block: BlockId(9),
            len: 10,
        });
        log.append(EditOp::SetCodec { path: "/user/alice/final.txt".into(), codec: CodecId::Hlz });
        let bytes = log.serialize();
        let restored = EditLog::deserialize(&bytes).unwrap();
        assert_eq!(restored, log);
    }

    #[test]
    fn replay_of_set_codec_flags_the_file() {
        let mut log = EditLog::new();
        for op in sample_ops() {
            log.append(op);
        }
        log.append(EditOp::SetCodec { path: "/user/alice/final.txt".into(), codec: CodecId::Hlz });
        let mut ns = Namespace::new();
        log.replay(&mut ns).unwrap();
        assert_eq!(ns.file("/user/alice/final.txt").unwrap().codec, CodecId::Hlz);
    }

    #[test]
    fn replay_of_abandon_block_truncates_the_file() {
        let mut log = EditLog::new();
        for op in sample_ops() {
            // Drop the Close/Rename tail: abandon only applies to open files.
            if matches!(op, EditOp::Close { .. } | EditOp::Rename { .. }) {
                continue;
            }
            log.append(op);
        }
        log.append(EditOp::AbandonBlock {
            path: "/user/alice/data.txt".into(),
            block: BlockId(2),
            len: 10,
        });
        log.append(EditOp::Close { path: "/user/alice/data.txt".into() });
        let mut ns = Namespace::new();
        log.replay(&mut ns).unwrap();
        let f = ns.file("/user/alice/data.txt").unwrap();
        assert_eq!(f.blocks, vec![BlockId(1)]);
        assert_eq!(f.len, 64);
        assert!(f.complete);
    }

    #[test]
    fn replay_rebuilds_namespace() {
        let mut log = EditLog::new();
        let mut live = Namespace::new();
        // Apply ops to the live namespace while journaling them.
        for op in sample_ops() {
            log.append(op);
        }
        log.replay(&mut live).unwrap();
        let f = live.file("/user/alice/final.txt").unwrap();
        assert_eq!(f.len, 74);
        assert_eq!(f.blocks.len(), 2);
        assert!(f.complete);

        // Replaying the serialized journal onto a fresh namespace matches.
        let mut rebuilt = Namespace::new();
        EditLog::deserialize(&log.serialize()).unwrap().replay(&mut rebuilt).unwrap();
        assert_eq!(rebuilt, live);
    }

    #[test]
    fn replay_of_delete() {
        let mut log = EditLog::new();
        log.append(EditOp::Mkdirs { path: "/tmp/x".into() });
        log.append(EditOp::Delete { path: "/tmp/x".into(), recursive: true });
        let mut ns = Namespace::new();
        log.replay(&mut ns).unwrap();
        assert!(!ns.exists("/tmp/x"));
        assert!(ns.exists("/tmp"));
    }

    #[test]
    fn corrupt_journal_is_detected() {
        let mut log = EditLog::new();
        log.append(EditOp::Mkdirs { path: "/a".into() });
        let mut bytes = log.serialize();
        bytes[1] = 99; // bogus tag
        assert!(EditLog::deserialize(&bytes).is_err());
        // Truncation is also caught.
        let good = log.serialize();
        assert!(EditLog::deserialize(&good[..good.len() - 1]).is_err());
    }

    #[test]
    fn checkpoint_clears_journal() {
        let mut log = EditLog::new();
        log.append(EditOp::Mkdirs { path: "/a".into() });
        assert_eq!(log.len(), 1);
        log.checkpoint();
        assert!(log.is_empty());
    }
}
