//! Write leases: single-writer semantics plus crash recovery.
//!
//! HDFS grants the creating client a *lease* on every file open for
//! write. The lease is renewed implicitly while the writer makes progress
//! and released at close. When a writer crashes mid-write — the paper's
//! Section V war stories are full of student jobs dying mid-ingest — the
//! NameNode notices the lease going stale and runs **lease recovery**:
//! trailing blocks no DataNode ever confirmed are abandoned and the file
//! is finalized at its last consistent length, so readers never see a
//! half-written tail and the path stops being wedged forever.
//!
//! Expiry is two-staged like the real thing: after the **soft limit**
//! another client may claim the file (here: `recoverLease` is allowed);
//! after the **hard limit** the NameNode recovers it on its own. All
//! timing is [`SimTime`] — no wall clock ever leaks in.

use std::collections::BTreeMap;

use hl_common::prelude::*;
use hl_common::writable::{read_vu64, write_vu64};

/// Where a lease is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// Writer is (as far as the NameNode knows) alive and writing.
    Active,
    /// Soft limit passed without a renewal: another client may recover.
    SoftExpired,
    /// Hard limit passed (or recovery was requested): the next lease
    /// check finalizes the file. Observable in `fsck` as `RECOVERING`.
    Recovering,
}

impl LeaseState {
    fn tag(self) -> u64 {
        match self {
            LeaseState::Active => 0,
            LeaseState::SoftExpired => 1,
            LeaseState::Recovering => 2,
        }
    }

    fn from_tag(tag: u64) -> Result<Self> {
        match tag {
            0 => Ok(LeaseState::Active),
            1 => Ok(LeaseState::SoftExpired),
            2 => Ok(LeaseState::Recovering),
            t => Err(HlError::Codec(format!("unknown lease state tag {t}"))),
        }
    }
}

impl std::fmt::Display for LeaseState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LeaseState::Active => "ACTIVE",
            LeaseState::SoftExpired => "SOFT_EXPIRED",
            LeaseState::Recovering => "RECOVERING",
        })
    }
}

/// One file's write lease.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Path of the file open for write.
    pub path: String,
    /// Who holds the lease (`DFSClient@node` style).
    pub holder: String,
    /// Last renewal (create, add-block, or explicit renew).
    pub renewed_at: SimTime,
    /// Lifecycle state.
    pub state: LeaseState,
}

impl Writable for Lease {
    fn write(&self, buf: &mut Vec<u8>) {
        self.path.write(buf);
        self.holder.write(buf);
        write_vu64(self.renewed_at.0, buf);
        write_vu64(self.state.tag(), buf);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        Ok(Lease {
            path: String::read(buf)?,
            holder: String::read(buf)?,
            renewed_at: SimTime(read_vu64(buf)?),
            state: LeaseState::from_tag(read_vu64(buf)?)?,
        })
    }
}

/// The NameNode's lease table.
#[derive(Debug, Clone, Default)]
pub struct LeaseManager {
    leases: BTreeMap<String, Lease>,
    soft_limit: SimDuration,
    hard_limit: SimDuration,
}

impl LeaseManager {
    /// Build a manager with the given expiry limits.
    pub fn new(soft_limit: SimDuration, hard_limit: SimDuration) -> Self {
        LeaseManager { leases: BTreeMap::new(), soft_limit, hard_limit }
    }

    /// Grant `holder` the lease on `path` (file creation).
    pub fn acquire(&mut self, now: SimTime, path: &str, holder: &str) {
        self.leases.insert(
            path.to_string(),
            Lease {
                path: path.to_string(),
                holder: holder.to_string(),
                renewed_at: now,
                state: LeaseState::Active,
            },
        );
    }

    /// Renew the lease on `path` (writer made progress).
    pub fn renew(&mut self, now: SimTime, path: &str) {
        if let Some(lease) = self.leases.get_mut(path) {
            lease.renewed_at = now;
            lease.state = LeaseState::Active;
        }
    }

    /// Drop the lease (file closed or deleted).
    pub fn release(&mut self, path: &str) -> Option<Lease> {
        self.leases.remove(path)
    }

    /// Drop the lease on `path` and on everything under it (recursive
    /// delete of a directory with files open for write).
    pub fn release_under(&mut self, path: &str) {
        let prefix = format!("{}/", path.trim_end_matches('/'));
        self.leases.retain(|p, _| p != path && !p.starts_with(&prefix));
    }

    /// Drop every lease (NameNode restart: the table is rebuilt from the
    /// fsimage + edit-log tail, not carried across the crash).
    pub fn clear(&mut self) {
        self.leases.clear();
    }

    /// Rename bookkeeping: a lease follows its file.
    pub fn rename(&mut self, src: &str, dst: &str) {
        if let Some(mut lease) = self.leases.remove(src) {
            lease.path = dst.to_string();
            self.leases.insert(dst.to_string(), lease);
        }
    }

    /// The lease on `path`, if the file is open for write.
    pub fn lease(&self, path: &str) -> Option<&Lease> {
        self.leases.get(path)
    }

    /// Every outstanding lease, path-ordered.
    pub fn leases(&self) -> impl Iterator<Item = &Lease> {
        self.leases.values()
    }

    /// Number of files open for write.
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// True when no file is open for write.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }

    /// Mark `path` for recovery (explicit `recoverLease` or hard expiry).
    /// Returns false if no lease exists.
    pub fn start_recovery(&mut self, path: &str) -> bool {
        match self.leases.get_mut(path) {
            Some(lease) => {
                lease.state = LeaseState::Recovering;
                true
            }
            None => false,
        }
    }

    /// Advance every lease's state machine one tick and return the paths
    /// whose recovery should be finalized *now*.
    ///
    /// Active → SoftExpired at the soft limit, → Recovering at the hard
    /// limit, and Recovering leases (set by the previous tick or by
    /// `recoverLease`) are handed back for finalization — one tick later,
    /// so the `RECOVERING` state is observable.
    pub fn check(&mut self, now: SimTime) -> Vec<String> {
        let mut to_finalize = Vec::new();
        for lease in self.leases.values_mut() {
            match lease.state {
                LeaseState::Recovering => to_finalize.push(lease.path.clone()),
                LeaseState::Active | LeaseState::SoftExpired => {
                    let idle = now.since(lease.renewed_at);
                    if idle >= self.hard_limit {
                        lease.state = LeaseState::Recovering;
                    } else if idle >= self.soft_limit {
                        lease.state = LeaseState::SoftExpired;
                    }
                }
            }
        }
        to_finalize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> LeaseManager {
        LeaseManager::new(SimDuration::from_secs(60), SimDuration::from_secs(300))
    }

    #[test]
    fn lease_round_trips() {
        for lease in [
            Lease {
                path: "/user/alice/out.txt".into(),
                holder: "DFSClient@node3".into(),
                renewed_at: SimTime(123_456),
                state: LeaseState::Active,
            },
            Lease {
                path: "/a".into(),
                holder: String::new(),
                renewed_at: SimTime::ZERO,
                state: LeaseState::SoftExpired,
            },
            Lease {
                path: String::new(),
                holder: "x".into(),
                renewed_at: SimTime(u64::MAX),
                state: LeaseState::Recovering,
            },
        ] {
            let bytes = lease.to_bytes();
            assert_eq!(Lease::from_bytes(&bytes).unwrap(), lease);
        }
        // Unknown state tags must be codec errors, not silent defaults.
        let mut bytes = Lease {
            path: "/a".into(),
            holder: "h".into(),
            renewed_at: SimTime(1),
            state: LeaseState::Active,
        }
        .to_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 9;
        assert!(Lease::from_bytes(&bytes).is_err());
    }

    #[test]
    fn state_machine_walks_soft_then_hard_then_finalizes() {
        let mut lm = manager();
        let t0 = SimTime::ZERO;
        lm.acquire(t0, "/f", "writer");
        assert_eq!(lm.lease("/f").map(|l| l.state), Some(LeaseState::Active));

        // Before soft limit: still active.
        assert!(lm.check(t0 + SimDuration::from_secs(59)).is_empty());
        assert_eq!(lm.lease("/f").map(|l| l.state), Some(LeaseState::Active));

        // Past soft, before hard: soft-expired but not recovered.
        assert!(lm.check(t0 + SimDuration::from_secs(61)).is_empty());
        assert_eq!(lm.lease("/f").map(|l| l.state), Some(LeaseState::SoftExpired));

        // Renewal rescues it.
        lm.renew(t0 + SimDuration::from_secs(90), "/f");
        assert_eq!(lm.lease("/f").map(|l| l.state), Some(LeaseState::Active));

        // Past hard: flips to Recovering on one tick, finalizes on the next.
        let late = t0 + SimDuration::from_secs(90 + 301);
        assert!(lm.check(late).is_empty());
        assert_eq!(lm.lease("/f").map(|l| l.state), Some(LeaseState::Recovering));
        assert_eq!(lm.check(late + SimDuration::from_secs(3)), vec!["/f".to_string()]);
    }

    #[test]
    fn explicit_recovery_skips_the_wait() {
        let mut lm = manager();
        lm.acquire(SimTime::ZERO, "/f", "writer");
        assert!(lm.start_recovery("/f"));
        assert!(!lm.start_recovery("/missing"));
        assert_eq!(lm.check(SimTime(1)), vec!["/f".to_string()]);
    }

    #[test]
    fn rename_carries_the_lease() {
        let mut lm = manager();
        lm.acquire(SimTime::ZERO, "/old", "w");
        lm.rename("/old", "/new");
        assert!(lm.lease("/old").is_none());
        assert_eq!(lm.lease("/new").map(|l| l.path.as_str()), Some("/new"));
        assert_eq!(lm.len(), 1);
        assert!(lm.release("/new").is_some());
        assert!(lm.is_empty());
    }
}
