//! The NameNode's in-memory namespace: a tree of directories and files.
//!
//! Figure 2's left column — "HDFS Abstractions: Directories/Files" mapping
//! down to block lists — lives here. Everything is RAM-resident, exactly
//! the property the lecture emphasizes ("Block metadata lives in memory").

use std::collections::BTreeMap;

use hl_codec::CodecId;
use hl_common::prelude::*;
use hl_common::writable::{read_vu64, write_vu64, Writable};

use crate::block::BlockId;

/// Normalize and validate an absolute DFS path into components.
///
/// Accepts `/`, `/a`, `/a/b/`, collapses duplicate slashes, rejects
/// relative paths, empty components beyond slashes, and `.`/`..`.
pub fn parse_path(path: &str) -> Result<Vec<String>> {
    if !path.starts_with('/') {
        return Err(HlError::Config(format!("DFS paths must be absolute: {path:?}")));
    }
    let mut parts = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" => {}
            "." | ".." => {
                return Err(HlError::Config(format!("'.'/'..' not supported in {path:?}")))
            }
            c => parts.push(c.to_string()),
        }
    }
    Ok(parts)
}

/// Join components back into a canonical path string.
pub fn join_path(parts: &[String]) -> String {
    if parts.is_empty() {
        "/".to_string()
    } else {
        format!("/{}", parts.join("/"))
    }
}

/// Metadata of a file inode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileNode {
    /// Ordered block list.
    pub blocks: Vec<BlockId>,
    /// Total length in bytes.
    pub len: u64,
    /// Target replication factor.
    pub replication: u32,
    /// Block size the file was written with.
    pub block_size: u64,
    /// False while a writer still holds the lease.
    pub complete: bool,
    /// Creation time.
    pub created_at: SimTime,
    /// How the file's stored bytes are encoded. [`CodecId::Null`] (the
    /// default) means plain bytes; anything else means every block holds
    /// whole `hl-codec` frames and `len` counts *stored* (compressed)
    /// bytes — readers consult this flag to decode transparently.
    pub codec: CodecId,
}

/// A namespace node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum INode {
    /// A directory with named children.
    Directory(BTreeMap<String, INode>),
    /// A file.
    File(FileNode),
}

/// One row of a directory listing (`hadoop fs -ls`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStatus {
    /// Full path.
    pub path: String,
    /// True for directories.
    pub is_dir: bool,
    /// File length (0 for directories).
    pub len: u64,
    /// Replication (0 for directories).
    pub replication: u32,
    /// Block count (0 for directories).
    pub blocks: usize,
}

/// The namespace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Namespace {
    root: INode,
}

impl Default for Namespace {
    fn default() -> Self {
        Self::new()
    }
}

impl Namespace {
    /// An empty namespace containing only `/`.
    pub fn new() -> Self {
        Namespace { root: INode::Directory(BTreeMap::new()) }
    }

    fn walk(&self, parts: &[String]) -> Option<&INode> {
        let mut node = &self.root;
        for part in parts {
            match node {
                INode::Directory(children) => node = children.get(part)?,
                INode::File(_) => return None,
            }
        }
        Some(node)
    }

    fn walk_mut(&mut self, parts: &[String]) -> Option<&mut INode> {
        let mut node = &mut self.root;
        for part in parts {
            match node {
                INode::Directory(children) => node = children.get_mut(part)?,
                INode::File(_) => return None,
            }
        }
        Some(node)
    }

    /// `mkdir -p`: create all missing directories along `path`.
    pub fn mkdirs(&mut self, path: &str) -> Result<()> {
        let parts = parse_path(path)?;
        let mut node = &mut self.root;
        for part in &parts {
            let children = match node {
                INode::Directory(children) => children,
                INode::File(_) => return Err(HlError::NotADirectory(path.to_string())),
            };
            node =
                children.entry(part.clone()).or_insert_with(|| INode::Directory(BTreeMap::new()));
            if let INode::File(_) = node {
                return Err(HlError::NotADirectory(path.to_string()));
            }
        }
        Ok(())
    }

    /// Create a file inode (parents must exist). The file starts incomplete.
    pub fn create_file(
        &mut self,
        path: &str,
        replication: u32,
        block_size: u64,
        now: SimTime,
    ) -> Result<()> {
        let parts = parse_path(path)?;
        let (name, parent) =
            parts.split_last().ok_or_else(|| HlError::AlreadyExists("/".to_string()))?;
        let node = self.walk_mut(parent).ok_or_else(|| HlError::FileNotFound(join_path(parent)))?;
        let children = match node {
            INode::Directory(children) => children,
            INode::File(_) => return Err(HlError::NotADirectory(join_path(parent))),
        };
        if children.contains_key(name) {
            return Err(HlError::AlreadyExists(path.to_string()));
        }
        children.insert(
            name.clone(),
            INode::File(FileNode {
                blocks: Vec::new(),
                len: 0,
                replication,
                block_size,
                complete: false,
                created_at: now,
                codec: CodecId::Null,
            }),
        );
        Ok(())
    }

    /// Append an allocated block to an incomplete file.
    pub fn append_block(&mut self, path: &str, block: BlockId, len: u64) -> Result<()> {
        let file = self.file_mut(path)?;
        if file.complete {
            return Err(HlError::Internal(format!("append to completed file {path}")));
        }
        file.blocks.push(block);
        file.len += len;
        Ok(())
    }

    /// Mark a file complete (writer closed it).
    pub fn complete_file(&mut self, path: &str) -> Result<()> {
        self.file_mut(path)?.complete = true;
        Ok(())
    }

    /// Drop the trailing block of an incomplete file (lease recovery: the
    /// writer crashed before any DataNode confirmed it). `len` is the
    /// length the block contributed to the file when it was appended.
    pub fn abandon_block(&mut self, path: &str, block: BlockId, len: u64) -> Result<()> {
        let file = self.file_mut(path)?;
        if file.complete {
            return Err(HlError::Internal(format!("abandon on completed file {path}")));
        }
        match file.blocks.last() {
            Some(last) if *last == block => {
                file.blocks.pop();
                file.len = file.len.saturating_sub(len);
                Ok(())
            }
            _ => Err(HlError::Internal(format!(
                "abandon of {block} which is not the last block of {path}"
            ))),
        }
    }

    /// Immutable file lookup.
    pub fn file(&self, path: &str) -> Result<&FileNode> {
        let parts = parse_path(path)?;
        match self.walk(&parts) {
            Some(INode::File(f)) => Ok(f),
            Some(INode::Directory(_)) => Err(HlError::NotADirectory(path.to_string())),
            None => Err(HlError::FileNotFound(path.to_string())),
        }
    }

    /// Mutable file lookup.
    pub fn file_mut(&mut self, path: &str) -> Result<&mut FileNode> {
        let parts = parse_path(path)?;
        match self.walk_mut(&parts) {
            Some(INode::File(f)) => Ok(f),
            Some(INode::Directory(_)) => Err(HlError::NotADirectory(path.to_string())),
            None => Err(HlError::FileNotFound(path.to_string())),
        }
    }

    /// Does the path exist (file or directory)?
    pub fn exists(&self, path: &str) -> bool {
        parse_path(path).map(|p| self.walk(&p).is_some()).unwrap_or(false)
    }

    /// Is the path a directory?
    pub fn is_dir(&self, path: &str) -> bool {
        matches!(parse_path(path).ok().and_then(|p| self.walk(&p)), Some(INode::Directory(_)))
    }

    /// List a directory (one row per child) or a file (one row).
    pub fn list(&self, path: &str) -> Result<Vec<FileStatus>> {
        let parts = parse_path(path)?;
        let node = self.walk(&parts).ok_or_else(|| HlError::FileNotFound(path.to_string()))?;
        let status = |path: String, node: &INode| match node {
            INode::Directory(_) => {
                FileStatus { path, is_dir: true, len: 0, replication: 0, blocks: 0 }
            }
            INode::File(f) => FileStatus {
                path,
                is_dir: false,
                len: f.len,
                replication: f.replication,
                blocks: f.blocks.len(),
            },
        };
        match node {
            INode::File(_) => Ok(vec![status(join_path(&parts), node)]),
            INode::Directory(children) => Ok(children
                .iter()
                .map(|(name, child)| {
                    let mut p = parts.clone();
                    p.push(name.clone());
                    status(join_path(&p), child)
                })
                .collect()),
        }
    }

    /// Delete a path. Directories require `recursive` (like `-rmr`).
    /// Returns the block ids freed so the BlockManager can invalidate them.
    pub fn delete(&mut self, path: &str, recursive: bool) -> Result<Vec<BlockId>> {
        let parts = parse_path(path)?;
        let (name, parent) =
            parts.split_last().ok_or_else(|| HlError::Config("cannot delete /".to_string()))?;
        let node = self.walk_mut(parent).ok_or_else(|| HlError::FileNotFound(path.to_string()))?;
        let children = match node {
            INode::Directory(children) => children,
            INode::File(_) => return Err(HlError::NotADirectory(join_path(parent))),
        };
        match children.get(name) {
            None => return Err(HlError::FileNotFound(path.to_string())),
            Some(INode::Directory(c)) if !c.is_empty() && !recursive => {
                return Err(HlError::Config(format!("{path} is a non-empty directory")))
            }
            _ => {}
        }
        let removed = children
            .remove(name)
            .ok_or_else(|| HlError::Internal(format!("{path} vanished during delete")))?;
        let mut freed = Vec::new();
        collect_blocks(&removed, &mut freed);
        Ok(freed)
    }

    /// Rename `src` to `dst` (dst must not exist; parents of dst must).
    pub fn rename(&mut self, src: &str, dst: &str) -> Result<()> {
        let dst_parts = parse_path(dst)?;
        if self.exists(dst) {
            return Err(HlError::AlreadyExists(dst.to_string()));
        }
        let (dst_name, dst_parent) =
            dst_parts.split_last().ok_or_else(|| HlError::AlreadyExists("/".to_string()))?;
        if !matches!(self.walk(dst_parent), Some(INode::Directory(_))) {
            return Err(HlError::FileNotFound(join_path(dst_parent)));
        }

        let src_parts = parse_path(src)?;
        let (src_name, src_parent) =
            src_parts.split_last().ok_or_else(|| HlError::Config("cannot rename /".to_string()))?;
        let node =
            self.walk_mut(src_parent).ok_or_else(|| HlError::FileNotFound(src.to_string()))?;
        let moved = match node {
            INode::Directory(children) => {
                children.remove(src_name).ok_or_else(|| HlError::FileNotFound(src.to_string()))?
            }
            INode::File(_) => return Err(HlError::NotADirectory(join_path(src_parent))),
        };
        if let Some(INode::Directory(children)) = self.walk_mut(dst_parent) {
            children.insert(dst_name.clone(), moved);
            return Ok(());
        }
        // Verified a directory above; if the tree mutated out from under us
        // this is a NameNode bug — surface it, don't crash the daemon. Put
        // the detached node back so the namespace stays intact.
        if let Some(INode::Directory(children)) = self.walk_mut(src_parent) {
            children.insert(src_name.clone(), moved);
        }
        Err(HlError::Internal(format!(
            "rename {src} -> {dst}: destination parent vanished mid-rename"
        )))
    }

    /// All files under `path` (depth-first), as `(path, &FileNode)`.
    pub fn files_under(&self, path: &str) -> Result<Vec<(String, &FileNode)>> {
        let parts = parse_path(path)?;
        let node = self.walk(&parts).ok_or_else(|| HlError::FileNotFound(path.to_string()))?;
        let mut out = Vec::new();
        walk_files(node, &mut parts.clone(), &mut out);
        Ok(out)
    }

    /// Total bytes under a path (`hadoop fs -du -s`).
    pub fn du(&self, path: &str) -> Result<u64> {
        Ok(self.files_under(path)?.iter().map(|(_, f)| f.len).sum())
    }

    /// Count of (directories, files, blocks) in the whole namespace.
    pub fn stats(&self) -> (usize, usize, usize) {
        let mut dirs = 0;
        let mut files = 0;
        let mut blocks = 0;
        count(&self.root, &mut dirs, &mut files, &mut blocks);
        (dirs, files, blocks)
    }
}

// ------------------------------------------------------------- fsimage codec
//
// The namespace serializes recursively so a checkpoint can persist the
// whole tree (the fsimage). Directory entries are written in name order
// (BTreeMap iteration), so equal trees produce identical bytes.

impl Writable for FileNode {
    fn write(&self, buf: &mut Vec<u8>) {
        write_vu64(self.blocks.len() as u64, buf);
        for b in &self.blocks {
            write_vu64(b.0, buf);
        }
        write_vu64(self.len, buf);
        write_vu64(u64::from(self.replication), buf);
        write_vu64(self.block_size, buf);
        self.complete.write(buf);
        write_vu64(self.created_at.0, buf);
        self.codec.write(buf);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        let n = read_vu64(buf)?;
        let mut blocks = Vec::with_capacity(n.min(1024) as usize);
        for _ in 0..n {
            blocks.push(BlockId(read_vu64(buf)?));
        }
        let len = read_vu64(buf)?;
        let replication = u32::try_from(read_vu64(buf)?)
            .map_err(|_| HlError::Codec("file replication overflows u32".into()))?;
        let block_size = read_vu64(buf)?;
        let complete = bool::read(buf)?;
        let created_at = SimTime(read_vu64(buf)?);
        let codec = CodecId::read(buf)?;
        Ok(FileNode { blocks, len, replication, block_size, complete, created_at, codec })
    }
}

impl Writable for INode {
    fn write(&self, buf: &mut Vec<u8>) {
        match self {
            INode::Directory(children) => {
                buf.push(0);
                write_vu64(children.len() as u64, buf);
                for (name, child) in children {
                    name.write(buf);
                    child.write(buf);
                }
            }
            INode::File(f) => {
                buf.push(1);
                f.write(buf);
            }
        }
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        match u8::read(buf)? {
            0 => {
                let n = read_vu64(buf)?;
                let mut children = BTreeMap::new();
                for _ in 0..n {
                    let name = String::read(buf)?;
                    children.insert(name, INode::read(buf)?);
                }
                Ok(INode::Directory(children))
            }
            1 => Ok(INode::File(FileNode::read(buf)?)),
            t => Err(HlError::Codec(format!("unknown inode tag {t}"))),
        }
    }
}

impl Writable for Namespace {
    fn write(&self, buf: &mut Vec<u8>) {
        self.root.write(buf);
    }

    fn read(buf: &mut &[u8]) -> Result<Self> {
        match INode::read(buf)? {
            root @ INode::Directory(_) => Ok(Namespace { root }),
            INode::File(_) => Err(HlError::Codec("namespace root must be a directory".into())),
        }
    }
}

fn collect_blocks(node: &INode, out: &mut Vec<BlockId>) {
    match node {
        INode::File(f) => out.extend(&f.blocks),
        INode::Directory(children) => children.values().for_each(|c| collect_blocks(c, out)),
    }
}

fn walk_files<'a>(node: &'a INode, parts: &mut Vec<String>, out: &mut Vec<(String, &'a FileNode)>) {
    match node {
        INode::File(f) => out.push((join_path(parts), f)),
        INode::Directory(children) => {
            for (name, child) in children {
                parts.push(name.clone());
                walk_files(child, parts, out);
                parts.pop();
            }
        }
    }
}

fn count(node: &INode, dirs: &mut usize, files: &mut usize, blocks: &mut usize) {
    match node {
        INode::File(f) => {
            *files += 1;
            *blocks += f.blocks.len();
        }
        INode::Directory(children) => {
            *dirs += 1;
            children.values().for_each(|c| count(c, dirs, files, blocks));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns_with_file(path: &str) -> Namespace {
        let mut ns = Namespace::new();
        let parts = parse_path(path).unwrap();
        ns.mkdirs(&join_path(&parts[..parts.len() - 1])).unwrap();
        ns.create_file(path, 3, 64, SimTime::ZERO).unwrap();
        ns
    }

    #[test]
    fn path_parsing() {
        assert_eq!(parse_path("/").unwrap(), Vec::<String>::new());
        assert_eq!(parse_path("/a//b/").unwrap(), vec!["a", "b"]);
        assert!(parse_path("relative").is_err());
        assert!(parse_path("/a/../b").is_err());
        assert_eq!(join_path(&[]), "/");
        assert_eq!(join_path(&["a".into(), "b".into()]), "/a/b");
    }

    #[test]
    fn mkdirs_is_idempotent_and_deep() {
        let mut ns = Namespace::new();
        ns.mkdirs("/user/alice/data").unwrap();
        ns.mkdirs("/user/alice/data").unwrap();
        assert!(ns.is_dir("/user/alice"));
        assert!(ns.exists("/user/alice/data"));
        let (dirs, files, _) = ns.stats();
        assert_eq!((dirs, files), (4, 0)); // root + 3
    }

    #[test]
    fn mkdirs_through_file_fails() {
        let mut ns = ns_with_file("/data/f");
        assert!(matches!(ns.mkdirs("/data/f/sub"), Err(HlError::NotADirectory(_))));
    }

    #[test]
    fn create_append_complete_lifecycle() {
        let mut ns = ns_with_file("/data/f");
        assert!(!ns.file("/data/f").unwrap().complete);
        ns.append_block("/data/f", BlockId(1), 64).unwrap();
        ns.append_block("/data/f", BlockId(2), 30).unwrap();
        ns.complete_file("/data/f").unwrap();
        let f = ns.file("/data/f").unwrap();
        assert_eq!(f.len, 94);
        assert_eq!(f.blocks, vec![BlockId(1), BlockId(2)]);
        assert!(ns.append_block("/data/f", BlockId(3), 1).is_err());
    }

    #[test]
    fn duplicate_create_fails() {
        let mut ns = ns_with_file("/data/f");
        assert!(matches!(
            ns.create_file("/data/f", 3, 64, SimTime::ZERO),
            Err(HlError::AlreadyExists(_))
        ));
    }

    #[test]
    fn create_without_parent_fails() {
        let mut ns = Namespace::new();
        assert!(matches!(
            ns.create_file("/no/such/dir/f", 3, 64, SimTime::ZERO),
            Err(HlError::FileNotFound(_))
        ));
    }

    #[test]
    fn list_directory_and_file() {
        let mut ns = ns_with_file("/data/f");
        ns.mkdirs("/data/sub").unwrap();
        let rows = ns.list("/data").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].path, "/data/f");
        assert!(!rows[0].is_dir);
        assert_eq!(rows[1].path, "/data/sub");
        assert!(rows[1].is_dir);
        let one = ns.list("/data/f").unwrap();
        assert_eq!(one.len(), 1);
        assert!(ns.list("/missing").is_err());
    }

    #[test]
    fn delete_returns_freed_blocks() {
        let mut ns = ns_with_file("/data/f");
        ns.append_block("/data/f", BlockId(10), 64).unwrap();
        ns.append_block("/data/f", BlockId(11), 64).unwrap();
        ns.create_file("/data/g", 3, 64, SimTime::ZERO).unwrap();
        ns.append_block("/data/g", BlockId(12), 64).unwrap();
        // Non-recursive delete of non-empty dir refuses.
        assert!(ns.delete("/data", false).is_err());
        let freed = ns.delete("/data", true).unwrap();
        let mut freed_sorted = freed.clone();
        freed_sorted.sort();
        assert_eq!(freed_sorted, vec![BlockId(10), BlockId(11), BlockId(12)]);
        assert!(!ns.exists("/data"));
    }

    #[test]
    fn delete_missing_and_root_fail() {
        let mut ns = Namespace::new();
        assert!(ns.delete("/nope", true).is_err());
        assert!(ns.delete("/", true).is_err());
    }

    #[test]
    fn rename_moves_subtrees() {
        let mut ns = ns_with_file("/data/f");
        ns.mkdirs("/archive").unwrap();
        ns.rename("/data", "/archive/data2013").unwrap();
        assert!(ns.exists("/archive/data2013/f"));
        assert!(!ns.exists("/data"));
        // dst exists -> error
        ns.mkdirs("/x").unwrap();
        assert!(ns.rename("/x", "/archive").is_err());
        // missing src -> error
        assert!(ns.rename("/ghost", "/y").is_err());
    }

    #[test]
    fn namespace_writable_round_trips() {
        // Empty tree.
        let empty = Namespace::new();
        assert_eq!(Namespace::from_bytes(&empty.to_bytes()).unwrap(), empty);
        // Mixed tree: nested dirs, complete and open files, empty dir.
        let mut ns = ns_with_file("/data/f");
        ns.append_block("/data/f", BlockId(7), 64).unwrap();
        ns.append_block("/data/f", BlockId(9), 30).unwrap();
        ns.complete_file("/data/f").unwrap();
        ns.mkdirs("/data/empty").unwrap();
        ns.create_file("/data/open", 2, 128, SimTime(55)).unwrap();
        // A compressed file: the per-file codec flag must survive the trip.
        ns.create_file("/data/packed", 3, 64, SimTime(60)).unwrap();
        ns.file_mut("/data/packed").unwrap().codec = CodecId::Hlz;
        let bytes = ns.to_bytes();
        assert_eq!(Namespace::from_bytes(&bytes).unwrap(), ns);
        // INode and FileNode round-trip through the same encoding.
        let inode = INode::File(ns.file("/data/f").unwrap().clone());
        assert_eq!(INode::from_bytes(&inode.to_bytes()).unwrap(), inode);
        let file = ns.file("/data/open").unwrap().clone();
        assert_eq!(FileNode::from_bytes(&file.to_bytes()).unwrap(), file);
        // A file at the root tag position is rejected.
        assert!(Namespace::from_bytes(&inode.to_bytes()).is_err());
        // Corrupt tag is a codec error.
        assert!(Namespace::from_bytes(&[7]).is_err());
    }

    #[test]
    fn files_under_and_du() {
        let mut ns = Namespace::new();
        ns.mkdirs("/d/a").unwrap();
        ns.create_file("/d/a/x", 3, 64, SimTime::ZERO).unwrap();
        ns.append_block("/d/a/x", BlockId(1), 100).unwrap();
        ns.create_file("/d/y", 3, 64, SimTime::ZERO).unwrap();
        ns.append_block("/d/y", BlockId(2), 50).unwrap();
        let files = ns.files_under("/d").unwrap();
        let paths: Vec<_> = files.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["/d/a/x", "/d/y"]);
        assert_eq!(ns.du("/d").unwrap(), 150);
        assert_eq!(ns.du("/d/y").unwrap(), 50);
    }
}
