//! Rack-aware block placement — HDFS's default policy.
//!
//! Table V's Information-Management outcome ("explain the techniques used
//! for data fragmentation, replication, and allocation") is this policy:
//!
//! 1. first replica on the writer's node (when the writer is a DataNode);
//! 2. second replica on a node in a *different* rack (survive rack loss);
//! 3. third replica on a different node in the *same* rack as the second
//!    (cheap third copy);
//! 4. extras spread over whatever remains.
//!
//! Selection among equally-good candidates rotates deterministically by
//! block id, so experiments replay identically while load still spreads.

use hl_common::prelude::*;

/// A candidate DataNode as the NameNode sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The node.
    pub node: NodeId,
    /// Free disk bytes (nodes without room for the block are skipped).
    pub free_bytes: u64,
}

/// Choose up to `replication` distinct targets for a new block.
///
/// `writer` is the client's node when the client runs on a cluster node
/// (the MapReduce output path), `None` for off-cluster uploads
/// (`copyFromLocal` from a login node).
pub fn choose_targets(
    topology: &Topology,
    candidates: &[Candidate],
    writer: Option<NodeId>,
    replication: u32,
    block_size: u64,
    rotation: u64,
) -> Vec<NodeId> {
    let mut usable: Vec<Candidate> =
        candidates.iter().copied().filter(|c| c.free_bytes >= block_size).collect();
    usable.sort_by_key(|c| c.node);
    if usable.is_empty() || replication == 0 {
        return Vec::new();
    }
    let mut chosen: Vec<NodeId> = Vec::with_capacity(replication as usize);

    // Replica 1: the writer if eligible, else rotate.
    let first = writer
        .filter(|w| usable.iter().any(|c| c.node == *w))
        .unwrap_or_else(|| usable[(rotation as usize) % usable.len()].node);
    chosen.push(first);

    // Replica 2: prefer a different rack than the first.
    if replication >= 2 {
        let first_rack = topology.rack(first);
        let pick = pick_rotating(&usable, rotation, |c| {
            !chosen.contains(&c.node) && topology.rack(c.node) != first_rack
        })
        .or_else(|| pick_rotating(&usable, rotation, |c| !chosen.contains(&c.node)));
        if let Some(n) = pick {
            chosen.push(n);
        }
    }

    // Replica 3: same rack as the second, different node.
    if replication >= 3 && chosen.len() == 2 {
        let second_rack = topology.rack(chosen[1]);
        let pick = pick_rotating(&usable, rotation.wrapping_add(1), |c| {
            !chosen.contains(&c.node) && topology.rack(c.node) == second_rack
        })
        .or_else(|| {
            pick_rotating(&usable, rotation.wrapping_add(1), |c| !chosen.contains(&c.node))
        });
        if let Some(n) = pick {
            chosen.push(n);
        }
    }

    // Extras: anything left, rotating.
    let mut extra_rot = rotation.wrapping_add(2);
    while chosen.len() < replication as usize {
        match pick_rotating(&usable, extra_rot, |c| !chosen.contains(&c.node)) {
            Some(n) => chosen.push(n),
            None => break,
        }
        extra_rot = extra_rot.wrapping_add(1);
    }

    chosen
}

fn pick_rotating(
    usable: &[Candidate],
    rotation: u64,
    mut ok: impl FnMut(&Candidate) -> bool,
) -> Option<NodeId> {
    let n = usable.len();
    (0..n).map(|i| &usable[(rotation as usize + i) % n]).find(|c| ok(c)).map(|c| c.node)
}

/// Order replica holders by read preference for a reader at `reader`:
/// node-local first, then rack-local, then off-rack (ties by node id).
pub fn order_for_read(
    topology: &Topology,
    reader: Option<NodeId>,
    holders: &[NodeId],
) -> Vec<NodeId> {
    let mut ordered: Vec<NodeId> = holders.to_vec();
    ordered.sort_by_key(|&h| match reader {
        Some(r) => (topology.locality(r, h).distance(), h.0),
        None => (u32::MAX, h.0),
    });
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(n: u32, free: u64) -> Vec<Candidate> {
        (0..n).map(|i| Candidate { node: NodeId(i), free_bytes: free }).collect()
    }

    #[test]
    fn writer_gets_first_replica() {
        let topo = Topology::striped(6, 2);
        let targets = choose_targets(&topo, &candidates(6, 1000), Some(NodeId(3)), 3, 100, 0);
        assert_eq!(targets[0], NodeId(3));
        assert_eq!(targets.len(), 3);
    }

    #[test]
    fn second_replica_is_off_rack_third_on_its_rack() {
        let topo = Topology::striped(8, 2);
        for rotation in 0..16 {
            let targets =
                choose_targets(&topo, &candidates(8, 1000), Some(NodeId(0)), 3, 100, rotation);
            assert_eq!(targets.len(), 3);
            let racks: Vec<_> = targets.iter().map(|&n| topo.rack(n)).collect();
            assert_ne!(racks[0], racks[1], "replica 2 must be off-rack (rot {rotation})");
            assert_eq!(racks[1], racks[2], "replica 3 shares rack with replica 2");
            // All distinct nodes.
            let mut uniq = targets.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3);
        }
    }

    #[test]
    fn single_rack_degrades_gracefully() {
        let topo = Topology::flat(4);
        let targets = choose_targets(&topo, &candidates(4, 1000), Some(NodeId(1)), 3, 100, 5);
        assert_eq!(targets.len(), 3);
        let mut uniq = targets.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn full_nodes_are_skipped() {
        let topo = Topology::flat(4);
        let mut cands = candidates(4, 1000);
        cands[0].free_bytes = 10; // too small for a 100-byte block
        let targets = choose_targets(&topo, &cands, Some(NodeId(0)), 3, 100, 0);
        assert!(!targets.contains(&NodeId(0)), "writer without space is skipped");
        assert_eq!(targets.len(), 3);
    }

    #[test]
    fn fewer_nodes_than_replication_returns_what_exists() {
        let topo = Topology::flat(2);
        let targets = choose_targets(&topo, &candidates(2, 1000), None, 3, 100, 7);
        assert_eq!(targets.len(), 2);
        assert!(choose_targets(&topo, &[], None, 3, 100, 0).is_empty());
    }

    #[test]
    fn rotation_spreads_first_replica_for_remote_writers() {
        let topo = Topology::flat(4);
        let firsts: Vec<NodeId> = (0..4)
            .map(|rot| choose_targets(&topo, &candidates(4, 1000), None, 1, 100, rot)[0])
            .collect();
        let mut uniq = firsts.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "rotation must spread placement: {firsts:?}");
    }

    #[test]
    fn read_ordering_prefers_locality() {
        let topo = Topology::striped(6, 2);
        // reader node0 (rack0); holders: node1 (rack1), node2 (rack0), node0
        let ordered = order_for_read(&topo, Some(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(0)]);
        assert_eq!(ordered, vec![NodeId(0), NodeId(2), NodeId(1)]);
        // Off-cluster reader: stable id order.
        let ordered = order_for_read(&topo, None, &[NodeId(4), NodeId(1)]);
        assert_eq!(ordered, vec![NodeId(1), NodeId(4)]);
    }
}
